"""Dataset and loader tests."""

import numpy as np
import pytest

from repro.nn import DataLoader, TensorDataset


@pytest.fixture()
def dataset():
    inputs = np.arange(20).reshape(10, 2)
    targets = np.arange(10)
    return TensorDataset(inputs, targets)


class TestTensorDataset:
    def test_length_and_indexing(self, dataset):
        assert len(dataset) == 10
        x, y = dataset[3]
        np.testing.assert_array_equal(x, [6, 7])
        assert y == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            TensorDataset(np.ones((3, 2)), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TensorDataset(np.ones((0, 2)), np.ones(0))

    def test_split_sizes(self, dataset):
        train, val = dataset.split(8)
        assert len(train) == 8
        assert len(val) == 2

    def test_split_preserves_order(self, dataset):
        train, val = dataset.split(8)
        np.testing.assert_array_equal(val.targets, [8, 9])

    def test_split_bounds_checked(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(0)
        with pytest.raises(ValueError):
            dataset.split(10)


class TestDataLoader:
    def test_batch_count_includes_partial(self, dataset):
        loader = DataLoader(dataset, batch_size=4)
        assert len(loader) == 3
        batches = list(loader)
        assert [len(batch[0]) for batch in batches] == [4, 4, 2]

    def test_unshuffled_order(self, dataset):
        loader = DataLoader(dataset, batch_size=5, shuffle=False)
        first_batch = next(iter(loader))
        np.testing.assert_array_equal(first_batch[1], [0, 1, 2, 3, 4])

    def test_shuffle_changes_order_deterministically(self, dataset):
        loader_a = DataLoader(
            dataset, batch_size=10, shuffle=True, rng=np.random.default_rng(3)
        )
        loader_b = DataLoader(
            dataset, batch_size=10, shuffle=True, rng=np.random.default_rng(3)
        )
        batch_a = next(iter(loader_a))[1]
        batch_b = next(iter(loader_b))[1]
        np.testing.assert_array_equal(batch_a, batch_b)
        assert not np.array_equal(batch_a, np.arange(10))

    def test_epochs_reshuffle(self, dataset):
        loader = DataLoader(
            dataset, batch_size=10, shuffle=True, rng=np.random.default_rng(3)
        )
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_batches_partition_dataset(self, dataset):
        loader = DataLoader(
            dataset, batch_size=3, shuffle=True, rng=np.random.default_rng(0)
        )
        seen = np.concatenate([batch[1] for batch in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_invalid_batch_size_rejected(self, dataset):
        with pytest.raises(ValueError, match="batch_size"):
            DataLoader(dataset, batch_size=0)
