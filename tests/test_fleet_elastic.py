"""Elastic-fleet tests: chaos recovery, autoscaling, retired counters.

The acceptance bar has three legs:

* the kill-at-every-event-index sweep over ``board-failure`` — no
  resident is ever lost, recovery is deterministic (same seed + trace
  + failure on two freshly built fleets produces identical timelines
  up to host-measured latency), and an empty
  :class:`~repro.workloads.ChaosPlan` replays byte-identical to a
  plain ``run_trace``;
* the autoscaler properties — scale-out is monotone in queue depth,
  scale-in never retires a board whose residents would land below
  their :class:`~repro.core.SLOTarget` floor, and the fleet returns
  to its baseline size once a flash crowd drains;
* the stats-conservation regression — retiring a board mid-trace must
  keep its counters flowing into ``FleetStats.combined``.
"""

import dataclasses

import pytest

from repro import SchedulingService, SystemBuilder
from repro.core import MCTSConfig, SLOTarget
from repro.fleet import (
    Autoscaler,
    Cluster,
    ElasticPolicy,
    FleetService,
)
from repro.evaluation import TimelineReport
from repro.online import OnlineConfig
from repro.slo import AttainmentTracker, SLOPolicy
from repro.workloads import (
    ArrivalEvent,
    ArrivalTrace,
    ChaosPlan,
    FailureEvent,
    fleet_scenario,
)

_ESTIMATOR = {"num_training_samples": 40, "epochs": 3}
_MCTS = MCTSConfig(budget=20, seed=13)
_ONLINE = OnlineConfig(warm_patience=20)


def _two_board_service(seed: int = 3, slo=None) -> FleetService:
    cluster = Cluster.from_presets(
        {"edge0": "hikey970", "edge1": "hikey970"},
        seed=seed,
        estimator=_ESTIMATOR,
        mcts_config=_MCTS,
    )
    return FleetService(cluster, slo=slo)


def _strip_timing(report: TimelineReport) -> TimelineReport:
    """The report with host-measured re-planning latency zeroed.

    Everything else — boards, modes, scores, evaluation counts, fleet
    annotations, serialization — must reproduce exactly.
    """
    return dataclasses.replace(
        report,
        records=tuple(
            dataclasses.replace(record, reschedule_time_s=0.0)
            for record in report.records
        ),
    )


@pytest.fixture(scope="module")
def failure_trace():
    return fleet_scenario("board-failure").build_trace(0)


# ----------------------------------------------------------------------
# Chaos plan types
# ----------------------------------------------------------------------
class TestChaosPlanTypes:
    def test_kill_and_round_trip(self, tmp_path):
        plan = ChaosPlan.kill("edge1", 10.0)
        assert len(plan) == 1
        assert plan.boards == ("edge1",)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        assert ChaosPlan.from_json(str(path)) == plan

    def test_failures_must_be_time_ordered(self):
        with pytest.raises(ValueError, match="time-ordered"):
            ChaosPlan(
                (
                    FailureEvent(time_s=5.0, board="a"),
                    FailureEvent(time_s=1.0, board="b"),
                )
            )

    def test_board_dies_at_most_once(self):
        with pytest.raises(ValueError, match="at most once"):
            ChaosPlan(
                (
                    FailureEvent(time_s=1.0, board="a"),
                    FailureEvent(time_s=5.0, board="a"),
                )
            )

    def test_failure_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(time_s=-1.0, board="a")
        with pytest.raises(ValueError):
            FailureEvent(time_s=0.0, board="")
        with pytest.raises(ValueError):
            FailureEvent(time_s=0.0, board="a", kind="meteor")


# ----------------------------------------------------------------------
# The kill sweep
# ----------------------------------------------------------------------
class TestChaosKillSweep:
    def test_kill_at_every_event_index_loses_no_resident(
        self, failure_trace
    ):
        """Kill edge1 at every event timestamp of ``board-failure``.

        The trace is sized so one HiKey970 can host the whole tenancy
        alone, so every sweep point must recover: the replay completes
        (a lost resident's departure would raise), every tenant's
        arrival and departure are both recorded, and the fleet ends
        empty.
        """
        tenants = {event.tenant_id for event in failure_trace.events}
        for index, event in enumerate(failure_trace.events):
            service = _two_board_service()
            chaos = ChaosPlan.kill("edge1", event.time_s)
            report = service.run_trace(
                failure_trace, online=_ONLINE, chaos=chaos
            )
            assert report.failure_events == 1, f"sweep index {index}"
            seen = {
                (record.tenant_id, record.kind)
                for record in report.records
                if record.tenant_id
            }
            for tenant in tenants:
                assert (tenant, "arrival") in seen, f"sweep index {index}"
                assert (tenant, "departure") in seen, f"sweep index {index}"
            assert report.records[-1].active_models == ()
            assert service.cluster.board_names == ("edge0",)

    def test_recovery_is_deterministic(self, failure_trace):
        """Two freshly built identical fleets under the same chaos plan
        replay to identical timelines (host latency aside)."""
        kill_at = failure_trace.events[len(failure_trace.events) // 2].time_s
        chaos = ChaosPlan.kill("edge1", kill_at)
        reports = [
            _strip_timing(
                _two_board_service().run_trace(
                    failure_trace, online=_ONLINE, chaos=chaos
                )
            )
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_empty_chaos_plan_is_a_byte_identical_noop(self, failure_trace):
        plain = _strip_timing(
            _two_board_service().run_trace(failure_trace, online=_ONLINE)
        )
        noop = _strip_timing(
            _two_board_service().run_trace(
                failure_trace, online=_ONLINE, chaos=ChaosPlan(())
            )
        )
        assert noop == plain
        assert noop.to_dict() == plain.to_dict()

    def test_killing_unknown_board_raises(self, failure_trace):
        service = _two_board_service()
        with pytest.raises(KeyError, match="unknown board"):
            service.run_trace(
                failure_trace,
                online=_ONLINE,
                chaos=ChaosPlan.kill("edge9", 0.0),
            )

    def test_killing_the_last_board_raises(self):
        cluster = Cluster.from_presets(
            {"solo": "hikey970"},
            seed=3,
            estimator=_ESTIMATOR,
            mcts_config=_MCTS,
        )
        service = FleetService(cluster)
        trace = ArrivalTrace([ArrivalEvent(0.0, "arrival", "t0", "alexnet")])
        with pytest.raises(ValueError, match="last live board"):
            service.run_trace(trace, chaos=ChaosPlan.kill("solo", 0.0))


# ----------------------------------------------------------------------
# Fleet-of-one acceptance: the elastic machinery must cost nothing
# ----------------------------------------------------------------------
class TestFleetOfOneReplay:
    def test_no_chaos_matches_plain_service_replay(self, failure_trace):
        """A one-board fleet with no chaos plan replays exactly like
        the plain single-board service (board attribution aside)."""
        cluster = Cluster.from_presets(
            {"solo": "hikey970"},
            seed=29,
            estimator=_ESTIMATOR,
            mcts_config=_MCTS,
        )
        fleet_report = FleetService(cluster).run_trace(
            failure_trace, online=_ONLINE, chaos=ChaosPlan(())
        )
        builder = (
            SystemBuilder(seed=29)
            .with_estimator(**_ESTIMATOR)
            .with_mcts_config(_MCTS)
        )
        plain_report = SchedulingService(builder).run_trace(
            failure_trace, online=_ONLINE
        )
        assert len(fleet_report.records) == len(plain_report.records)
        for ours, theirs in zip(
            fleet_report.records, plain_report.records
        ):
            assert dataclasses.replace(
                ours, board=theirs.board, reschedule_time_s=0.0
            ) == dataclasses.replace(theirs, reschedule_time_s=0.0)


# ----------------------------------------------------------------------
# Autoscaler properties
# ----------------------------------------------------------------------
class TestElasticPolicy:
    def test_scale_out_monotone_in_queue_depth(self):
        """More queued load never un-triggers a scale-out."""
        for threshold in (1, 2, 5):
            policy = ElasticPolicy(scale_out_queue_depth=threshold)
            verdicts = [
                policy.wants_scale_out(depth) for depth in range(10)
            ]
            for lighter, heavier in zip(verdicts, verdicts[1:]):
                assert heavier >= lighter
            assert verdicts[threshold] is True

    def test_attainment_floor_triggers_scale_out(self):
        policy = ElasticPolicy(p95_floor=1.0)
        assert not policy.wants_scale_out(0, p95=None)
        assert not policy.wants_scale_out(0, p95=1.2)
        assert policy.wants_scale_out(0, p95=0.8)

    def test_validation(self):
        with pytest.raises(KeyError, match="unknown board preset"):
            ElasticPolicy(preset="mainframe")
        with pytest.raises(ValueError):
            ElasticPolicy(max_boards=0)
        with pytest.raises(ValueError):
            ElasticPolicy(scale_out_queue_depth=0)
        with pytest.raises(ValueError):
            ElasticPolicy(p95_floor=0.0)
        with pytest.raises(ValueError):
            ElasticPolicy(min_attainment_samples=0)

    def test_attainment_tracker_percentile(self):
        tracker = AttainmentTracker(window=4)
        assert tracker.percentile(95) is None
        for ratio in (1.0, 0.5, 2.0, 0.25, 4.0):
            tracker.observe(ratio)
        assert len(tracker) == 4  # the 1.0 fell out of the window
        assert tracker.observed == 5
        assert tracker.percentile(95) == 0.25


class TestScaleInSafety:
    @pytest.fixture()
    def occupied_pair(self):
        """A baseline board plus a provisioned board, one resident
        each (greedy-load placement spreads the two arrivals)."""

        def build(slo):
            cluster = Cluster.from_presets(
                {"edge0": "hikey970"},
                seed=11,
                estimator=_ESTIMATOR,
                mcts_config=_MCTS,
            )
            service = FleetService(
                cluster, placement="greedy-load", slo=slo
            )
            service.provision_board("hikey970", seed_base=11)
            trace = ArrivalTrace(
                [
                    ArrivalEvent(0.0, "arrival", "t0", "alexnet"),
                    ArrivalEvent(1.0, "arrival", "t1", "mobilenet"),
                ]
            )
            service.run_trace(trace, online=_ONLINE)
            return service

        return build

    def test_scale_in_never_violates_the_slo_floor(self, occupied_pair):
        """An unreachable floor vetoes every resident-carrying victim."""
        service = occupied_pair(
            SLOPolicy(
                target=SLOTarget(min_throughput=1e9),
                admission=False,
                preemption=False,
            )
        )
        scaler = Autoscaler(service, ElasticPolicy(min_boards=1))
        assert scaler.step(2.0, queue_depth=0) == []
        assert scaler.scale_ins == 0
        assert len(service.cluster) == 2

    def test_scale_in_proceeds_when_the_floor_clears(self, occupied_pair):
        service = occupied_pair(
            SLOPolicy(
                target=SLOTarget(min_throughput=1e-9),
                admission=False,
                preemption=False,
            )
        )
        scaler = Autoscaler(service, ElasticPolicy(min_boards=1))
        moves = scaler.step(2.0, queue_depth=0)
        assert scaler.scale_ins == 1
        assert len(service.cluster) == 1
        # Scale-in retires the provisioned board, never the baseline
        # edge board: the resident flows back to the edge.
        assert service.cluster.board_names == ("edge0",)
        assert moves[-1].action == "scale-in"
        assert moves[-1].fleet_size == 1
        assert any(record.action == "drained" for record in moves)

    def test_scale_in_never_goes_below_the_floor_size(self, occupied_pair):
        service = occupied_pair(None)
        scaler = Autoscaler(service, ElasticPolicy())  # floor = baseline 2
        assert scaler.step(2.0, queue_depth=0) == []
        assert len(service.cluster) == 2


class TestBaselineReturn:
    def test_flash_crowd_scales_out_then_returns_to_baseline(self):
        """The flash crowd queues past the threshold, the fleet scales
        out into the cloud tier, and the steady drain that follows
        scales it back in: final fleet size == baseline."""
        cluster = Cluster.from_presets(
            {"edge0": "hikey970"},
            seed=3,
            estimator=_ESTIMATOR,
            mcts_config=_MCTS,
        )
        service = FleetService(
            cluster,
            slo=SLOPolicy(target=SLOTarget(min_throughput=0.01)),
        )
        trace = fleet_scenario("flash-crowd").build_trace(0)
        report = service.run_trace(
            trace, online=_ONLINE, elastic=ElasticPolicy()
        )
        assert report.scale_out_events >= 1
        assert report.scale_in_events == report.scale_out_events
        assert report.fleet_size_extent[1] > 1
        assert report.final_fleet_size == 1
        assert len(service.cluster) == 1
        assert service.cluster.board_names == ("edge0",)


# ----------------------------------------------------------------------
# Stats conservation across retirement
# ----------------------------------------------------------------------
class TestRetiredCounters:
    def test_retiring_a_board_conserves_request_and_wait_totals(
        self, failure_trace
    ):
        """Regression: ``FleetStats.combined`` must keep counters from
        boards retired mid-run — draining a board cannot un-count the
        requests and waits it already served."""
        service = _two_board_service(seed=9)
        service.run_trace(failure_trace, online=_ONLINE)
        before = service.stats().combined
        assert before.trace_events > 0
        service.drain_board("edge1")
        after_stats = service.stats()
        after = after_stats.combined
        assert "edge1" in after_stats.retired_boards
        assert "edge1" not in after_stats.per_board
        assert after.trace_events == before.trace_events
        assert after.requests_by_priority == before.requests_by_priority
        for priority, total in before.wait_s_by_priority.items():
            assert after.wait_s_by_priority[priority] == pytest.approx(
                total
            )
        assert after.estimator_queries == before.estimator_queries
        assert "+1 retired" in after_stats.summary()

    def test_drain_moves_residents_before_retiring(self):
        """Draining a board that still hosts tenants warm-migrates
        them (counted as migrations) instead of dropping them."""
        service = _two_board_service(seed=15)
        trace = ArrivalTrace(
            [
                ArrivalEvent(0.0, "arrival", "t0", "alexnet"),
                ArrivalEvent(1.0, "arrival", "t1", "mobilenet"),
                ArrivalEvent(2.0, "arrival", "t2", "vgg13"),
            ]
        )
        service.run_trace(trace, online=_ONLINE)
        hosted = {
            board: len(service._tenants[board])
            for board in service.cluster.board_names
        }
        victim = max(hosted, key=hosted.get)
        migrations_before = service.stats().migrations
        records = service.drain_board(victim, time_s=3.0)
        assert len(service.cluster) == 1
        survivor = service.cluster.board_names[0]
        assert len(service._tenants[survivor]) == 3
        assert (
            service.stats().migrations - migrations_before
            == hosted[victim]
        )
        assert records[-1].action == "retired"
        assert records[-1].fleet_size == 1

    def test_draining_the_last_board_raises(self):
        cluster = Cluster.from_presets(
            {"solo": "hikey970"},
            seed=3,
            estimator=_ESTIMATOR,
            mcts_config=_MCTS,
        )
        service = FleetService(cluster)
        with pytest.raises(ValueError, match="at least one board"):
            service.drain_board("solo")
