"""Optimizer tests: validation plus convergence on convex problems."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, Tensor


def quadratic_loss(parameter, target):
    diff = parameter - Tensor(target)
    return (diff * diff).sum()


class TestValidation:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError, match="no parameters"):
            SGD([])

    def test_bad_learning_rates_rejected(self):
        param = [Tensor(np.ones(1), requires_grad=True)]
        with pytest.raises(ValueError, match="learning rate"):
            SGD(param, lr=0.0)
        with pytest.raises(ValueError, match="learning rate"):
            Adam(param, lr=-1.0)

    def test_bad_momentum_rejected(self):
        param = [Tensor(np.ones(1), requires_grad=True)]
        with pytest.raises(ValueError, match="momentum"):
            SGD(param, momentum=1.5)

    def test_bad_betas_rejected(self):
        param = [Tensor(np.ones(1), requires_grad=True)]
        with pytest.raises(ValueError, match="betas"):
            Adam(param, betas=(1.0, 0.9))


class TestConvergence:
    target = np.array([3.0, -2.0, 0.5])

    def _minimize(self, optimizer_factory, steps=300):
        param = Tensor(np.zeros(3), requires_grad=True)
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            loss = quadratic_loss(param, self.target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return param.data

    def test_sgd_converges(self):
        result = self._minimize(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(result, self.target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        result = self._minimize(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(result, self.target, atol=1e-4)

    def test_adam_converges(self):
        result = self._minimize(lambda p: Adam(p, lr=0.1), steps=500)
        np.testing.assert_allclose(result, self.target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        plain = self._minimize(lambda p: SGD(p, lr=0.1))
        decayed = self._minimize(lambda p: SGD(p, lr=0.1, weight_decay=1.0))
        assert np.linalg.norm(decayed) < np.linalg.norm(plain)

    def test_step_skips_parameters_without_grad(self):
        used = Tensor(np.zeros(1), requires_grad=True)
        unused = Tensor(np.ones(1), requires_grad=True)
        optimizer = Adam([used, unused], lr=0.1)
        loss = quadratic_loss(used, np.array([1.0]))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        np.testing.assert_array_equal(unused.data, [1.0])

    def test_zero_grad_resets(self):
        param = Tensor(np.zeros(1), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        quadratic_loss(param, np.array([1.0])).backward()
        optimizer.zero_grad()
        assert param.grad is None
