"""Front-door tests: bounded cache, persistence, async ingress identity.

The acceptance bar for PR 10's ingestion layer:

* :class:`ShardedDecisionCache` is bounded (LRU per shard, counted
  evictions), deterministic in its shard routing (crc32, never the
  salted builtin ``hash``), and survives restarts through checksummed
  snapshots keyed on the estimator's weight state — a retrained or
  re-loaded estimator invalidates every persisted entry, and a corrupt
  snapshot is quarantined, never served;
* :class:`AsyncFrontDoor` at ``window_size=1`` (and with the fast path
  off) is byte-identical to calling ``schedule_many`` directly — the
  identity contract — while larger windows pool concurrent arrivals
  into exactly ``ceil(n / window_size)`` full flushes;
* a service restarted against the same ``cache_dir`` replays
  previously-decided mixes with **zero** estimator queries.
"""

import json

import numpy as np
import pytest

from repro.builder import SystemBuilder
from repro.core import MCTSConfig, ScheduleRequest
from repro.core.base import ScheduleDecision
from repro.frontdoor import (
    AsyncFrontDoor,
    ShardedDecisionCache,
    clear_cache_dir,
    estimator_cache_token,
    inspect_cache_dir,
)
from repro.nn.layers import Linear
from repro.service import SchedulingService
from repro.sim import Mapping
from repro.workloads import Workload

MIX_NAMES = [
    ["alexnet", "mobilenet", "squeezenet"],
    ["vgg19", "resnet50", "alexnet"],
    ["mobilenet", "vgg16", "inception_v3"],
    ["alexnet", "mobilenet", "squeezenet"],
    ["squeezenet", "resnet34", "vgg13"],
    ["mobilenet", "alexnet", "squeezenet"],
]


def _make_service(**kwargs) -> SchedulingService:
    builder = (
        SystemBuilder(seed=29)
        .with_estimator(num_training_samples=40, epochs=3)
        .with_mcts_config(MCTSConfig(budget=50, seed=13))
    )
    return SchedulingService(builder, **kwargs)


def _requests(names=MIX_NAMES):
    return [
        ScheduleRequest(workload=Workload.from_names(mix), request_id=str(i))
        for i, mix in enumerate(names)
    ]


def _key(index, budget=None):
    return ("omniboost", (f"model{index}", f"other{index}"), budget)


def _decision(score=1.0):
    return ScheduleDecision(
        mapping=Mapping([[0, 0, 1], [1, 1, 2]]),
        expected_score=score,
        wall_time_s=0.0,
        cost={"estimator_queries": 50.0},
    )


def _names(index):
    return (f"model{index}", f"other{index}")


# ----------------------------------------------------------------------
# ShardedDecisionCache: bounds and routing
# ----------------------------------------------------------------------
class TestCacheBounds:
    def test_lru_eviction_past_capacity(self):
        cache = ShardedDecisionCache(num_shards=1, shard_capacity=2)
        cache.bind("token")
        for index in range(3):
            cache.put(_key(index), _names(index), _decision(float(index)))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(_key(0)) is None  # the least-recently-used entry
        assert cache.get(_key(2)) is not None

    def test_get_refreshes_recency(self):
        cache = ShardedDecisionCache(num_shards=1, shard_capacity=2)
        cache.bind("token")
        cache.put(_key(0), _names(0), _decision())
        cache.put(_key(1), _names(1), _decision())
        cache.get(_key(0))  # refresh: key 1 becomes the LRU entry
        cache.put(_key(2), _names(2), _decision())
        assert cache.get(_key(0)) is not None
        assert cache.get(_key(1)) is None

    def test_shard_routing_is_stable_across_instances(self):
        first = ShardedDecisionCache(num_shards=8, shard_capacity=4)
        second = ShardedDecisionCache(num_shards=8, shard_capacity=4)
        keys = [_key(index) for index in range(32)]
        assert [first.shard_index(k) for k in keys] == [
            second.shard_index(k) for k in keys
        ]
        # crc32 routing spreads keys across shards rather than piling
        # them into one (the property hash() salting would break).
        assert len({first.shard_index(k) for k in keys}) > 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ShardedDecisionCache(num_shards=0)
        with pytest.raises(ValueError):
            ShardedDecisionCache(shard_capacity=0)


# ----------------------------------------------------------------------
# ShardedDecisionCache: persistence
# ----------------------------------------------------------------------
class TestCachePersistence:
    def test_snapshot_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        writer = ShardedDecisionCache(cache_dir=cache_dir)
        writer.bind("token-a")
        for index in range(3):
            writer.put(_key(index), _names(index), _decision(float(index)))
        reader = ShardedDecisionCache(cache_dir=cache_dir)
        assert reader.bind("token-a") == 0
        assert reader.loaded == 3
        names, decision = reader.get(_key(1))
        assert names == _names(1)
        assert decision.expected_score == 1.0
        assert decision.mapping == _decision().mapping

    def test_token_mismatch_invalidates_snapshot(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        writer = ShardedDecisionCache(cache_dir=cache_dir)
        writer.bind("token-a")
        writer.put(_key(0), _names(0), _decision())
        reader = ShardedDecisionCache(cache_dir=cache_dir)
        assert reader.bind("token-b") == 0
        assert len(reader) == 0
        assert reader.stale_files == 1

    def test_corrupt_snapshot_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        writer = ShardedDecisionCache(cache_dir=cache_dir)
        writer.bind("token-a")
        writer.put(_key(0), _names(0), _decision())
        snapshot = tmp_path / "cc" / "decisions.json"
        snapshot.write_text(snapshot.read_text()[:-20] + "garbled")
        reader = ShardedDecisionCache(cache_dir=cache_dir)
        assert reader.bind("token-a") == 1
        assert reader.corrupt_files == 1
        assert len(reader) == 0
        assert not snapshot.exists()
        assert (tmp_path / "cc" / "decisions.json.corrupt").exists()

    def test_discard_also_drops_from_snapshot(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        writer = ShardedDecisionCache(cache_dir=cache_dir)
        writer.bind("token-a")
        writer.put(_key(0), _names(0), _decision())
        writer.put(_key(1), _names(1), _decision())
        assert writer.discard(_key(0))
        reader = ShardedDecisionCache(cache_dir=cache_dir)
        reader.bind("token-a")
        assert reader.get(_key(0)) is None
        assert reader.get(_key(1)) is not None

    def test_rebinding_new_token_drops_entries(self):
        cache = ShardedDecisionCache()
        cache.bind("token-a")
        cache.put(_key(0), _names(0), _decision())
        cache.bind("token-b")  # retrained estimator mid-process
        assert len(cache) == 0

    def test_inspect_and_clear_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "cc")
        writer = ShardedDecisionCache(cache_dir=cache_dir)
        writer.bind("token-a")
        writer.put(_key(0), _names(0), _decision())
        report = inspect_cache_dir(cache_dir)
        assert len(report["snapshots"]) == 1
        assert report["snapshots"][0]["status"] == "ok"
        assert report["snapshots"][0]["entries"] == 1
        json.dumps(report)  # the CLI prints it; must be JSON-safe
        assert clear_cache_dir(cache_dir) == 1
        assert inspect_cache_dir(cache_dir)["snapshots"] == []


class TestEstimatorCacheToken:
    def test_token_tracks_weight_state(self):
        network = Linear(4, 2, rng=np.random.default_rng(0))
        token = estimator_cache_token(network)
        assert token == estimator_cache_token(network)  # deterministic
        state = network.state_dict()
        network.load_state_dict(state)  # version bump, same weights
        assert estimator_cache_token(network) != token

    def test_different_weights_different_digest(self):
        first = Linear(4, 2, rng=np.random.default_rng(0))
        second = Linear(4, 2, rng=np.random.default_rng(1))
        digest = lambda n: estimator_cache_token(n).split("-", 1)[1]
        assert digest(first) != digest(second)


# ----------------------------------------------------------------------
# AsyncFrontDoor
# ----------------------------------------------------------------------
class TestAsyncFrontDoor:
    def test_window_size_one_is_identity(self):
        """The identity contract: window_size=1, fast path off ==
        calling schedule_many directly on a twin service."""
        requests = _requests()
        direct = _make_service().schedule_many(requests)
        fronted_service = _make_service()
        front = AsyncFrontDoor(fronted_service, window_size=1)
        pooled = front.serve(requests)
        for via_front, via_direct in zip(pooled, direct):
            assert via_front.mapping == via_direct.mapping
            assert via_front.expected_score == via_direct.expected_score
        assert front.stats.windows == len(requests)
        assert front.stats.flushes["full"] == len(requests)

    def test_windows_pool_and_results_match_direct(self):
        requests = _requests()
        direct = _make_service().schedule_many(requests)
        fronted_service = _make_service()
        front = AsyncFrontDoor(fronted_service, window_size=3)
        pooled = front.serve(requests)
        for via_front, via_direct in zip(pooled, direct):
            assert via_front.mapping == via_direct.mapping
        assert front.stats.requests == len(requests)
        assert front.stats.windows == 2
        assert front.stats.window_sizes == [3, 3]

    def test_partial_window_flushes_by_tick_count(self):
        requests = _requests()[:2]
        fronted_service = _make_service()
        front = AsyncFrontDoor(fronted_service, window_size=8, coalesce_ticks=4)
        responses = front.serve(requests)
        assert len(responses) == 2
        assert front.stats.windows == 1
        assert front.stats.window_sizes == [2]
        # The partial window closed on counted loop turns (or the
        # final drain) -- never a wall-clock deadline.
        assert front.stats.flushes["tick"] + front.stats.flushes["drain"] == 1

    def test_duplicate_mixes_in_one_window_dedupe(self):
        fronted_service = _make_service()
        front = AsyncFrontDoor(fronted_service, window_size=6)
        front.serve(_requests())
        stats = fronted_service.stats()
        # MIX_NAMES holds one exact and two permuted repeats.
        assert stats.cache_hits == 2
        assert stats.cache_misses == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AsyncFrontDoor(object(), window_size=0)
        with pytest.raises(ValueError):
            AsyncFrontDoor(object(), coalesce_ticks=0)


# ----------------------------------------------------------------------
# Cross-restart persistence through the service
# ----------------------------------------------------------------------
class TestServicePersistence:
    def test_restart_replays_with_zero_estimator_queries(self, tmp_path):
        cache_dir = str(tmp_path / "decisions")
        requests = _requests()
        first = _make_service(cache_dir=cache_dir)
        cold = first.schedule_many(requests)
        assert first.stats().cache_persisted > 0

        # "Restart": a fresh, identically-seeded process image bound
        # to the same cache_dir.  Every previously-decided mix must be
        # served from the snapshot without a single estimator forward.
        second = _make_service(cache_dir=cache_dir)
        warm = second.schedule_many(requests)
        stats = second.stats()
        assert stats.cache_hits == len(requests)
        assert stats.cache_misses == 0
        assert stats.estimator_queries == 0
        for warm_response, cold_response in zip(warm, cold):
            assert warm_response.mapping == cold_response.mapping
            assert warm_response.expected_score == cold_response.expected_score
        assert warm_response.cache_status == "hit"
