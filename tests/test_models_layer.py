"""Unit tests for tensor shapes and layer specs."""

import pytest

from repro.models import DTYPE_BYTES, KernelSpec, LayerSpec, TensorShape


def conv_kernel(flops=100.0):
    return KernelSpec(kind="conv", flops=flops, bytes_read=10, bytes_written=10)


class TestTensorShape:
    def test_numel(self):
        assert TensorShape(3, 4, 5).numel == 60

    def test_nbytes_uses_fp32(self):
        assert TensorShape(2, 2, 2).nbytes == 8 * DTYPE_BYTES

    def test_fc_shape_defaults_spatial_to_one(self):
        shape = TensorShape(1000)
        assert shape.height == 1 and shape.width == 1
        assert shape.numel == 1000

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(ValueError):
            TensorShape(0, 2, 2)
        with pytest.raises(ValueError):
            TensorShape(3, -1, 2)

    def test_equality_is_structural(self):
        assert TensorShape(3, 2, 2) == TensorShape(3, 2, 2)
        assert TensorShape(3, 2, 2) != TensorShape(3, 2, 1)


class TestLayerSpec:
    def test_requires_kernels(self):
        with pytest.raises(ValueError, match="at least one kernel"):
            LayerSpec(
                name="empty",
                kernels=(),
                input_shape=TensorShape(3, 2, 2),
                output_shape=TensorShape(3, 2, 2),
            )

    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            LayerSpec(
                name="",
                kernels=(conv_kernel(),),
                input_shape=TensorShape(3, 2, 2),
                output_shape=TensorShape(3, 2, 2),
            )

    def test_negative_weight_bytes_rejected(self):
        with pytest.raises(ValueError, match="weight_bytes"):
            LayerSpec(
                name="l",
                kernels=(conv_kernel(),),
                input_shape=TensorShape(3, 2, 2),
                output_shape=TensorShape(3, 2, 2),
                weight_bytes=-1,
            )

    def test_flops_sums_kernels(self):
        layer = LayerSpec(
            name="l",
            kernels=(conv_kernel(100.0), conv_kernel(50.0)),
            input_shape=TensorShape(3, 2, 2),
            output_shape=TensorShape(3, 2, 2),
        )
        assert layer.flops == 150.0
        assert layer.num_kernels == 2

    def test_bytes_moved_sums_kernels(self):
        layer = LayerSpec(
            name="l",
            kernels=(conv_kernel(), conv_kernel()),
            input_shape=TensorShape(3, 2, 2),
            output_shape=TensorShape(3, 2, 2),
        )
        assert layer.bytes_moved == 40

    def test_output_bytes_tracks_output_shape(self):
        layer = LayerSpec(
            name="l",
            kernels=(conv_kernel(),),
            input_shape=TensorShape(3, 2, 2),
            output_shape=TensorShape(8, 4, 4),
        )
        assert layer.output_bytes == 8 * 4 * 4 * DTYPE_BYTES
