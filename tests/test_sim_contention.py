"""Tests for the processor-sharing rate allocator, incl. properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import processor_sharing_rates

BIG = 1e9  # effectively-unbounded rate cap


class TestValidation:
    def test_work_must_be_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            processor_sharing_rates(np.ones(3), np.ones(3))

    def test_cap_shape_checked(self):
        with pytest.raises(ValueError, match="does not match"):
            processor_sharing_rates(np.ones((2, 2)), np.ones(3))

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            processor_sharing_rates(np.array([[-1.0, 0.0]]), np.ones(1))

    def test_nonpositive_caps_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            processor_sharing_rates(np.ones((1, 2)), np.zeros(1))

    def test_zero_row_rejected(self):
        with pytest.raises(ValueError, match="positive work"):
            processor_sharing_rates(np.array([[0.0, 0.0]]), np.ones(1))

    def test_memory_work_shape_checked(self):
        with pytest.raises(ValueError, match="memory_work"):
            processor_sharing_rates(
                np.ones((2, 2)), np.ones(2), memory_work=np.ones(3)
            )


class TestClassicCases:
    def test_single_dnn_uses_full_device(self):
        rates = processor_sharing_rates(np.array([[0.5]]), np.array([BIG]))
        assert rates[0] == pytest.approx(2.0)

    def test_equal_time_shares_on_one_device(self):
        """Processor sharing: k DNNs on one device each get 1/k of it,
        so a light DNN completes proportionally more inferences."""
        work = np.array([[0.1], [0.2], [0.4]])
        rates = processor_sharing_rates(work, np.full(3, BIG))
        shares = rates * work[:, 0]
        assert np.allclose(shares, 1 / 3)

    def test_private_devices_full_throughput(self):
        work = np.array([[0.25, 0.0], [0.0, 0.5]])
        rates = processor_sharing_rates(work, np.full(2, BIG))
        assert rates == pytest.approx([4.0, 2.0])

    def test_cap_binds_and_slack_redistributes(self):
        work = np.array([[0.1], [0.1]])
        rates = processor_sharing_rates(work, np.array([2.0, BIG]))
        assert rates[0] == pytest.approx(2.0)
        # DNN 1 gets the remaining capacity: (1 - 2*0.1) / 0.1 = 8.
        assert rates[1] == pytest.approx(8.0)

    def test_memory_as_extra_resource(self):
        work = np.array([[0.0001], [0.0001]])
        memory = np.array([0.5, 0.5])
        rates = processor_sharing_rates(work, np.full(2, BIG), memory)
        # Memory saturates first: r1 + r2 = 2 inferences/s.
        assert rates.sum() * 0.5 == pytest.approx(1.0)

    def test_pipeline_cap_only(self):
        rates = processor_sharing_rates(np.array([[0.001]]), np.array([3.0]))
        assert rates[0] == pytest.approx(3.0)


@st.composite
def _allocation_problem(draw):
    num_dnns = draw(st.integers(1, 5))
    num_devices = draw(st.integers(1, 4))
    work = np.array(
        [
            [
                draw(st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False))
                for _ in range(num_devices)
            ]
            for _ in range(num_dnns)
        ]
    )
    # Ensure every DNN places work somewhere.
    for index in range(num_dnns):
        if work[index].sum() == 0:
            work[index, draw(st.integers(0, num_devices - 1))] = draw(
                st.floats(0.01, 2.0)
            )
    caps = np.array(
        [draw(st.floats(0.01, 100.0, allow_nan=False)) for _ in range(num_dnns)]
    )
    return work, caps


class TestProperties:
    @given(_allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_feasibility_and_caps(self, problem):
        work, caps = problem
        rates = processor_sharing_rates(work, caps)
        assert (rates >= -1e-9).all()
        assert (rates <= caps + 1e-6 * caps).all()
        usage = rates @ work
        assert (usage <= 1.0 + 1e-6).all()

    @given(_allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_non_wasteful(self, problem):
        """No DNN can be below its cap while all its resources have
        slack (max-min efficiency)."""
        work, caps = problem
        rates = processor_sharing_rates(work, caps)
        usage = rates @ work
        for index in range(len(caps)):
            if rates[index] < caps[index] - 1e-6 * caps[index]:
                touched = work[index] > 1e-12
                assert (usage[touched] >= 1.0 - 1e-6).any()

    @given(_allocation_problem())
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, problem):
        work, caps = problem
        first = processor_sharing_rates(work, caps)
        second = processor_sharing_rates(work, caps)
        assert np.array_equal(first, second)

    @given(st.integers(2, 6), st.floats(0.05, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_symmetric_dnns_get_equal_rates(self, count, per_inference):
        work = np.full((count, 1), per_inference)
        rates = processor_sharing_rates(work, np.full(count, BIG))
        assert np.allclose(rates, rates[0])
