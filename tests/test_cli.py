"""CLI tests (invoking main() in-process and checking stdout)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out
        assert "inception_v4" in out
        assert "GFLOPs" in out

    def test_profile(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "Mali-G72" in out
        assert "vgg19" in out

    def test_space(self, capsys):
        assert main(["space", "alexnet", "mobilenet"]) == 0
        out = capsys.readouterr().out
        assert "paper estimate" in out
        assert "contiguous mappings" in out

    def test_motivate_small(self, capsys):
        assert main(["motivate", "--setups", "10"]) == 0
        out = capsys.readouterr().out
        assert "random set-ups" in out

    def test_train_and_schedule_roundtrip(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "est.npz")
        assert (
            main(
                [
                    "train",
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checkpoint saved" in out

        assert (
            main(
                [
                    "schedule",
                    "alexnet",
                    "mobilenet",
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OmniBoost" in out
        assert "Baseline" in out


class TestNewCommands:
    def test_models_all_includes_extensions(self, capsys):
        assert main(["models", "--all"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" in out
        assert "extension" in out

    def test_models_default_excludes_extensions(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" not in out

    def test_power_smoke(self, capsys):
        assert (
            main(
                [
                    "power",
                    "alexnet",
                    "squeezenet",
                    "--samples",
                    "30",
                    "--epochs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "inf/J" in out
        assert "throughput (paper)" in out
