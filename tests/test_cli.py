"""CLI tests (invoking main() in-process and checking stdout)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out
        assert "inception_v4" in out
        assert "GFLOPs" in out

    def test_profile(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "Mali-G72" in out
        assert "vgg19" in out

    def test_space(self, capsys):
        assert main(["space", "alexnet", "mobilenet"]) == 0
        out = capsys.readouterr().out
        assert "paper estimate" in out
        assert "contiguous mappings" in out

    def test_motivate_small(self, capsys):
        assert main(["motivate", "--setups", "10"]) == 0
        out = capsys.readouterr().out
        assert "random set-ups" in out

    def test_train_and_schedule_roundtrip(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "est.npz")
        assert (
            main(
                [
                    "train",
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checkpoint saved" in out

        assert (
            main(
                [
                    "schedule",
                    "alexnet",
                    "mobilenet",
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OmniBoost" in out
        assert "Baseline" in out


class TestServiceCommands:
    def test_schedule_scheduler_selection(self, capsys):
        assert (
            main(
                [
                    "schedule",
                    "alexnet",
                    "mobilenet",
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                    "--scheduler",
                    "baseline",
                    "--scheduler",
                    "omniboost",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Baseline" in out
        assert "OmniBoost" in out
        assert "MOSAIC" not in out

    def test_serve_batch(self, tmp_path, capsys):
        import json

        mix_file = tmp_path / "mixes.json"
        mix_file.write_text(
            json.dumps(
                [
                    ["alexnet", "mobilenet"],
                    ["mobilenet", "alexnet"],
                    {"models": ["alexnet", "squeezenet"], "budget": 30, "id": "cam"},
                ]
            )
        )
        assert (
            main(
                [
                    "serve-batch",
                    str(mix_file),
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hit" in out
        assert "miss" in out
        assert "cam" in out
        assert "cache hit rate" in out
        assert "pooled estimator batches" in out

    def test_schedule_rejects_unknown_scheduler_before_training(self):
        with pytest.raises(SystemExit, match="unknown scheduler"):
            main(["schedule", "alexnet", "--scheduler", "bogus"])

    def test_serve_batch_rejects_unknown_scheduler(self, tmp_path):
        mix_file = tmp_path / "m.json"
        mix_file.write_text('[["alexnet"]]')
        with pytest.raises(SystemExit, match="unknown scheduler"):
            main(["serve-batch", str(mix_file), "--scheduler", "bogus"])

    def test_serve_batch_rejects_empty_file(self, tmp_path):
        mix_file = tmp_path / "empty.json"
        mix_file.write_text("[]")
        with pytest.raises(SystemExit):
            main(["serve-batch", str(mix_file)])


class TestNewCommands:
    def test_models_all_includes_extensions(self, capsys):
        assert main(["models", "--all"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" in out
        assert "extension" in out

    def test_models_default_excludes_extensions(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" not in out

    def test_power_smoke(self, capsys):
        assert (
            main(
                [
                    "power",
                    "alexnet",
                    "squeezenet",
                    "--samples",
                    "30",
                    "--epochs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "inf/J" in out
        assert "throughput (paper)" in out


class TestResilienceFlags:
    def test_malformed_fault_kind_is_usage_error(self):
        with pytest.raises(SystemExit, match="unknown fault kind"):
            main(["serve-trace", "estimator-brownout", "--faults", "bogus@2"])

    def test_malformed_fault_window_is_usage_error(self):
        with pytest.raises(SystemExit, match="KIND@CALL"):
            main(
                ["serve-trace", "estimator-brownout", "--faults",
                 "estimator-nan"]
            )

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--resume requires --journal"):
            main(["serve-trace", "estimator-brownout", "--resume"])

    def test_journal_rejects_enforcing_slo(self, tmp_path):
        with pytest.raises(SystemExit, match="enforcement queue"):
            main(
                ["serve-trace", "estimator-brownout",
                 "--journal", str(tmp_path / "x.journal"), "--slo", "1.0"]
            )

    def test_malformed_chaos_is_usage_error(self):
        with pytest.raises(SystemExit, match="BOARD@TIME"):
            main(
                ["fleet-serve", "--trace", "--scenario", "fleet-churn",
                 "--chaos", "edge0@abc"]
            )

    def test_negative_chaos_time_is_usage_error(self):
        with pytest.raises(SystemExit, match="time_s"):
            main(
                ["fleet-serve", "--trace", "--scenario", "fleet-churn",
                 "--chaos", "edge0@-5"]
            )

    def test_journal_rejects_elastic(self, tmp_path):
        with pytest.raises(SystemExit, match="elastic"):
            main(
                ["fleet-serve", "--trace", "--scenario", "fleet-churn",
                 "--journal", str(tmp_path / "x.journal"), "--elastic"]
            )

    def test_fleet_journal_requires_trace(self, tmp_path):
        with pytest.raises(SystemExit, match="--trace"):
            main(
                ["fleet-serve", "--scenario", "request-burst",
                 "--journal", str(tmp_path / "x.journal")]
            )
