"""CLI tests (invoking main() in-process and checking stdout)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out
        assert "inception_v4" in out
        assert "GFLOPs" in out

    def test_profile(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "Mali-G72" in out
        assert "vgg19" in out

    def test_space(self, capsys):
        assert main(["space", "alexnet", "mobilenet"]) == 0
        out = capsys.readouterr().out
        assert "paper estimate" in out
        assert "contiguous mappings" in out

    def test_motivate_small(self, capsys):
        assert main(["motivate", "--setups", "10"]) == 0
        out = capsys.readouterr().out
        assert "random set-ups" in out

    def test_train_and_schedule_roundtrip(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "est.npz")
        assert (
            main(
                [
                    "train",
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checkpoint saved" in out

        assert (
            main(
                [
                    "schedule",
                    "alexnet",
                    "mobilenet",
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OmniBoost" in out
        assert "Baseline" in out


class TestServiceCommands:
    def test_schedule_scheduler_selection(self, capsys):
        assert (
            main(
                [
                    "schedule",
                    "alexnet",
                    "mobilenet",
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                    "--scheduler",
                    "baseline",
                    "--scheduler",
                    "omniboost",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Baseline" in out
        assert "OmniBoost" in out
        assert "MOSAIC" not in out

    def test_serve_batch(self, tmp_path, capsys):
        import json

        mix_file = tmp_path / "mixes.json"
        mix_file.write_text(
            json.dumps(
                [
                    ["alexnet", "mobilenet"],
                    ["mobilenet", "alexnet"],
                    {"models": ["alexnet", "squeezenet"], "budget": 30, "id": "cam"},
                ]
            )
        )
        assert (
            main(
                [
                    "serve-batch",
                    str(mix_file),
                    "--samples",
                    "40",
                    "--epochs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hit" in out
        assert "miss" in out
        assert "cam" in out
        assert "cache hit rate" in out
        assert "pooled estimator batches" in out

    def test_schedule_rejects_unknown_scheduler_before_training(self):
        with pytest.raises(SystemExit, match="unknown scheduler"):
            main(["schedule", "alexnet", "--scheduler", "bogus"])

    def test_serve_batch_rejects_unknown_scheduler(self, tmp_path):
        mix_file = tmp_path / "m.json"
        mix_file.write_text('[["alexnet"]]')
        with pytest.raises(SystemExit, match="unknown scheduler"):
            main(["serve-batch", str(mix_file), "--scheduler", "bogus"])

    def test_serve_batch_rejects_empty_file(self, tmp_path):
        mix_file = tmp_path / "empty.json"
        mix_file.write_text("[]")
        with pytest.raises(SystemExit):
            main(["serve-batch", str(mix_file)])


class TestNewCommands:
    def test_models_all_includes_extensions(self, capsys):
        assert main(["models", "--all"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" in out
        assert "extension" in out

    def test_models_default_excludes_extensions(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" not in out

    def test_power_smoke(self, capsys):
        assert (
            main(
                [
                    "power",
                    "alexnet",
                    "squeezenet",
                    "--samples",
                    "30",
                    "--epochs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "inf/J" in out
        assert "throughput (paper)" in out
