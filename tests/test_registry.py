"""Scheduler-registry tests: round-trips, aliasing, system integration."""

import pytest

from repro.builder import SystemBuilder
from repro.core.base import ScheduleDecision, Scheduler
from repro.core.registry import (
    available_schedulers,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.sim import Mapping
from repro.workloads import Workload


class _StubScheduler(Scheduler):
    name = "stub"

    def _decide(self, workload):
        return ScheduleDecision(
            mapping=Mapping.single_device(workload.models, 0),
            expected_score=0.0,
            wall_time_s=0.0,
        )


@pytest.fixture()
def stub_registration():
    """Register a stub under a test-only name; always cleaned up."""
    register_scheduler("stub-test", lambda builder: _StubScheduler())
    yield "stub-test"
    try:
        unregister_scheduler("stub-test")
    except KeyError:
        pass


class TestBuiltins:
    def test_paper_comparison_order(self):
        names = available_schedulers()
        assert names[:4] == ("baseline", "mosaic", "ga", "omniboost")

    def test_get_builtin_factories(self):
        for name in ("baseline", "mosaic", "ga", "omniboost"):
            assert callable(get_scheduler(name))

    def test_lookup_is_case_insensitive(self):
        assert get_scheduler("OmniBoost") is get_scheduler("omniboost")
        assert get_scheduler(" Baseline ") is get_scheduler("baseline")


class TestRoundTrip:
    def test_register_get_unregister(self, stub_registration):
        factory = get_scheduler(stub_registration)
        assert factory(None).name == "stub"
        assert stub_registration in available_schedulers()
        unregister_scheduler(stub_registration)
        assert stub_registration not in available_schedulers()
        with pytest.raises(KeyError):
            get_scheduler(stub_registration)

    def test_decorator_form(self):
        @register_scheduler("stub-decorated")
        def _factory(builder):
            return _StubScheduler()

        try:
            assert get_scheduler("stub-decorated") is _factory
        finally:
            unregister_scheduler("stub-decorated")

    def test_duplicate_registration_rejected(self, stub_registration):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(stub_registration, lambda builder: _StubScheduler())

    def test_duplicate_with_replace_wins(self, stub_registration):
        replacement = lambda builder: _StubScheduler()  # noqa: E731
        register_scheduler(stub_registration, replacement, replace=True)
        assert get_scheduler(stub_registration) is replacement

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_scheduler("   ", lambda builder: _StubScheduler())

    def test_unknown_lookup_names_known(self):
        with pytest.raises(KeyError, match="omniboost"):
            get_scheduler("definitely-not-registered")


class TestSystemIntegration:
    def test_registered_scheduler_joins_built_system(self, stub_registration):
        """Satellite: a user registration shows up in system.schedulers
        automatically -- no pipeline edits."""
        builder = SystemBuilder(seed=3).with_estimator(
            num_training_samples=40, epochs=2
        )
        system = builder.build()
        names = [scheduler.name for scheduler in system.schedulers]
        assert names == ["Baseline", "MOSAIC", "GA", "OmniBoost", "stub"]
        assert system.scheduler(stub_registration) is system.schedulers[-1]

    def test_selection_narrows_comparison(self):
        builder = (
            SystemBuilder(seed=3)
            .with_scheduler("baseline")
            .with_scheduler("omniboost")
            .with_estimator(num_training_samples=40, epochs=2)
        )
        system = builder.build()
        assert [s.name for s in system.schedulers] == ["Baseline", "OmniBoost"]
        assert system.mosaic is None and system.ga is None

    def test_with_scheduler_rejects_unknown(self):
        with pytest.raises(KeyError):
            SystemBuilder().with_scheduler("nope")

    def test_scheduled_mapping_is_valid(self, stub_registration):
        builder = SystemBuilder(seed=3)
        scheduler = builder.build_scheduler(stub_registration)
        mix = Workload.from_names(["alexnet", "mobilenet"])
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
