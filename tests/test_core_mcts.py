"""MCTS tests: mechanics, determinism and search quality on oracles."""

import numpy as np
import pytest

from repro.core import (
    LOSS_REWARD,
    MCTSConfig,
    MonteCarloTreeSearch,
    SchedulingEnv,
)
from repro.workloads import Workload


@pytest.fixture()
def tiny_env():
    return SchedulingEnv(Workload.from_names(["alexnet"]), 3)


def constant_reward(_mapping):
    return 0.5


class TestConfig:
    def test_paper_defaults(self):
        config = MCTSConfig()
        assert config.budget == 500
        assert config.max_depth == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            MCTSConfig(budget=0)
        with pytest.raises(ValueError):
            MCTSConfig(max_depth=0)
        with pytest.raises(ValueError):
            MCTSConfig(exploration=-1.0)
        with pytest.raises(ValueError):
            MCTSConfig(rollout_stay_prob=1.0)


class TestMechanics:
    def test_budget_respected(self, tiny_env):
        search = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=37)
        )
        result = search.search()
        assert result.iterations == 37
        assert result.root_visits == 37
        assert result.evaluations + result.losing_rollouts == 37

    def test_masked_env_has_no_losing_rollouts(self, tiny_env):
        search = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=50)
        )
        assert search.search().losing_rollouts == 0

    def test_returns_valid_mapping(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=20)
        ).search()
        result.mapping.validate(tiny_env.workload.models, 3)
        assert result.mapping.max_stages <= 3

    def test_deterministic_under_seed(self, tiny_env):
        def run(seed):
            return MonteCarloTreeSearch(
                tiny_env,
                lambda m: float(hash(m) % 1000) / 1000.0,
                MCTSConfig(budget=60, seed=seed),
            ).search()

        assert run(5).mapping == run(5).mapping
        assert run(5).reward == run(5).reward

    def test_rewards_seen_tracked(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=25)
        ).search()
        assert len(result.rewards_seen) == result.evaluations
        assert all(reward == 0.5 for reward in result.rewards_seen)

    def test_unmasked_losing_rollouts_counted(self):
        env = SchedulingEnv(
            Workload.from_names(["vgg19"]), 3, stage_cap=1, mask_illegal=False
        )
        result = MonteCarloTreeSearch(
            env, constant_reward, MCTSConfig(budget=100, rollout_stay_prob=0.0)
        ).search()
        assert result.losing_rollouts > 0

    def test_complete_but_losing_states_never_win(self):
        """Regression: the last decision can complete the assignment
        AND open a cap-breaking stage; such states must receive the
        loss reward, never the estimator reward, so the returned elite
        always respects the cap."""
        env = SchedulingEnv(
            Workload.from_names(["alexnet", "squeezenet"]),
            3,
            mask_illegal=False,
        )
        for seed in range(6):
            result = MonteCarloTreeSearch(
                env,
                constant_reward,
                MCTSConfig(budget=200, rollout_stay_prob=0.6, seed=seed),
            ).search()
            if result.evaluations:
                assert result.mapping.max_stages <= 3

    def test_all_losing_falls_back_to_device_zero(self):
        """With an impossible stage cap and no masking, the search must
        still return a valid mapping."""
        env = SchedulingEnv(
            Workload.from_names(["alexnet"]),
            3,
            stage_cap=1,
            mask_illegal=False,
        )
        # stay_prob=0 makes staying on one device for 8 layers ~(1/3)^7.
        result = MonteCarloTreeSearch(
            env, constant_reward, MCTSConfig(budget=5, rollout_stay_prob=0.0, seed=1)
        ).search()
        result.mapping.validate(env.workload.models, 3)
        if result.evaluations == 0:
            assert result.reward == LOSS_REWARD


class TestTranspositionCache:
    def _tabled_reward(self, seed, counter=None):
        rng = np.random.default_rng(seed)
        table = {}

        def reward(mapping):
            if counter is not None:
                counter[mapping] = counter.get(mapping, 0) + 1
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        return reward

    def test_hit_miss_counters_partition_evaluations(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=200, seed=1)
        ).search()
        assert result.cache_hits + result.cache_misses == result.evaluations
        # The tiny single-DNN space guarantees repeated rollout leaves.
        assert result.cache_hits > 0

    def test_cache_never_requeries_a_mapping(self, tiny_env):
        counter = {}
        MonteCarloTreeSearch(
            tiny_env,
            self._tabled_reward(3, counter),
            MCTSConfig(budget=200, seed=1),
        ).search()
        assert counter, "search must evaluate at least one mapping"
        assert max(counter.values()) == 1

    def test_no_cache_parity(self, tiny_env):
        """With a deterministic evaluator the cache must be invisible:
        same elite, same reward, same improvement history."""
        cached = MonteCarloTreeSearch(
            tiny_env, self._tabled_reward(7), MCTSConfig(budget=150, seed=2)
        ).search()
        plain = MonteCarloTreeSearch(
            tiny_env,
            self._tabled_reward(7),
            MCTSConfig(budget=150, seed=2, use_eval_cache=False),
        ).search()
        assert cached.mapping == plain.mapping
        assert cached.reward == plain.reward
        assert cached.improvements == plain.improvements
        assert cached.rewards_seen == plain.rewards_seen
        assert plain.cache_hits == 0
        assert plain.cache_misses == plain.evaluations

    def test_disabled_cache_requeries(self, tiny_env):
        counter = {}
        MonteCarloTreeSearch(
            tiny_env,
            self._tabled_reward(3, counter),
            MCTSConfig(budget=200, seed=1, use_eval_cache=False),
        ).search()
        assert max(counter.values()) > 1


class TestBatchedEvaluation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MCTSConfig(eval_batch_size=0)

    def test_batch_size_one_is_sequential_semantics(self, tiny_env):
        """eval_batch_size=1 (the default) must reproduce the exact
        seeded trajectory of the paper's sequential loop -- including
        through the vectorized reward path."""

        def reward(mapping):
            return float(hash(mapping) % 1000) / 1000.0

        def reward_batch(mappings):
            return [reward(mapping) for mapping in mappings]

        scalar = MonteCarloTreeSearch(
            tiny_env, reward, MCTSConfig(budget=120, seed=5)
        ).search()
        vectorized = MonteCarloTreeSearch(
            tiny_env,
            reward,
            MCTSConfig(budget=120, seed=5),
            reward_batch_fn=reward_batch,
        ).search()
        assert scalar.mapping == vectorized.mapping
        assert scalar.improvements == vectorized.improvements
        assert vectorized.eval_batches == vectorized.cache_misses

    def test_batched_search_respects_budget(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env,
            constant_reward,
            MCTSConfig(budget=100, seed=3, eval_batch_size=16),
        ).search()
        assert result.iterations == 100
        assert result.root_visits == 100
        assert result.evaluations + result.losing_rollouts == 100
        assert len(result.rewards_seen) == result.evaluations
        result.mapping.validate(tiny_env.workload.models, 3)

    def test_batched_improvements_stay_ordered(self, tiny_env):
        rng = np.random.default_rng(17)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        result = MonteCarloTreeSearch(
            tiny_env, reward, MCTSConfig(budget=200, seed=8, eval_batch_size=8)
        ).search()
        iterations = [when for when, _, _ in result.improvements]
        rewards = [value for _, value, _ in result.improvements]
        assert iterations == sorted(iterations)
        assert all(b > a for a, b in zip(rewards, rewards[1:]))
        assert result.improvements[-1][1] == result.reward

    def test_batched_uses_fewer_eval_calls(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env,
            constant_reward,
            MCTSConfig(budget=200, seed=3, eval_batch_size=16),
        ).search()
        assert result.eval_batches < result.cache_misses
        assert result.eval_batches >= result.cache_misses / 16

    def test_batched_deterministic_under_seed(self, tiny_env):
        def run():
            return MonteCarloTreeSearch(
                tiny_env,
                lambda m: float(hash(m) % 1000) / 1000.0,
                MCTSConfig(budget=150, seed=4, eval_batch_size=8),
            ).search()

        first, second = run(), run()
        assert first.mapping == second.mapping
        assert first.reward == second.reward
        assert first.cache_hits == second.cache_hits


class TestSearchQuality:
    def test_finds_optimum_of_simple_objective(self):
        """Objective: put every layer on device 2.  MCTS must find it."""
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3)

        def reward(mapping):
            row = mapping.assignments[0]
            return sum(1.0 for device in row if device == 2) / len(row)

        result = MonteCarloTreeSearch(env, reward, MCTSConfig(budget=400, seed=3)).search()
        assert result.reward == 1.0
        assert set(result.mapping.assignments[0]) == {2}

    def test_beats_pure_random_on_split_objective(self):
        """Objective rewards a split at a specific layer; the tree
        should exploit it better than unguided sampling."""
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3)

        def reward(mapping):
            row = mapping.assignments[0]
            score = 0.0
            if row[0] == 0:
                score += 0.5
            if row[-1] == 1:
                score += 0.3
            if mapping.num_stages(0) == 2:
                score += 0.2
            return score

        result = MonteCarloTreeSearch(env, reward, MCTSConfig(budget=500, seed=3)).search()
        assert result.reward >= 0.8

    def test_more_budget_does_not_hurt(self):
        env = SchedulingEnv(Workload.from_names(["alexnet", "squeezenet"]), 3)
        rng = np.random.default_rng(0)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        small = MonteCarloTreeSearch(env, reward, MCTSConfig(budget=50, seed=2)).search()
        table_copy = dict(table)
        large = MonteCarloTreeSearch(env, reward, MCTSConfig(budget=400, seed=2)).search()
        assert large.reward >= small.reward - 1e-9


class TestIncumbentHistory:
    def test_improvements_strictly_increase(self, tiny_env):
        rng = np.random.default_rng(7)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        result = MonteCarloTreeSearch(
            tiny_env, reward, MCTSConfig(budget=120, seed=11)
        ).search()
        assert result.improvements, "a winning rollout must have happened"
        iterations = [when for when, _, _ in result.improvements]
        rewards = [value for _, value, _ in result.improvements]
        assert iterations == sorted(iterations)
        assert all(b > a for a, b in zip(rewards, rewards[1:]))
        # The last improvement is the returned elite.
        assert result.improvements[-1][1] == result.reward
        assert result.improvements[-1][2] == result.mapping

    def test_incumbent_at_matches_smaller_budget_run(self, tiny_env):
        """The prefix property: incumbent_at(B) of a long search equals
        the elite of a fresh budget-B search with the same seed."""
        rng = np.random.default_rng(3)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        long = MonteCarloTreeSearch(
            tiny_env, reward, MCTSConfig(budget=200, seed=9)
        ).search()
        short = MonteCarloTreeSearch(
            tiny_env, reward, MCTSConfig(budget=40, seed=9)
        ).search()
        mapping, incumbent_reward = long.incumbent_at(40)
        assert mapping == short.mapping
        assert incumbent_reward == short.reward

    def test_incumbent_before_first_win_is_empty(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=30)
        ).search()
        first_win = result.improvements[0][0]
        if first_win > 1:
            mapping, reward = result.incumbent_at(first_win - 1)
            assert mapping is None
            assert reward == float("-inf")

    def test_incumbent_at_validates_iteration(self, tiny_env):
        result = MonteCarloTreeSearch(
            tiny_env, constant_reward, MCTSConfig(budget=10)
        ).search()
        with pytest.raises(ValueError):
            result.incumbent_at(0)


class TestMeanDescentElite:
    def _tabled_reward(self, seed):
        rng = np.random.default_rng(seed)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        return reward

    def test_returns_valid_evaluated_mapping(self, tiny_env):
        search = MonteCarloTreeSearch(
            tiny_env,
            self._tabled_reward(3),
            MCTSConfig(budget=200, elite="mean-descent", seed=5),
        )
        result = search.search()
        result.mapping.validate(tiny_env.workload.models, 3)
        assert result.reward in result.rewards_seen

    def test_deterministic_under_seed(self, tiny_env):
        def run():
            return MonteCarloTreeSearch(
                tiny_env,
                self._tabled_reward(7),
                MCTSConfig(budget=150, elite="mean-descent", seed=2),
            ).search()

        assert run().mapping == run().mapping

    def test_small_budget_falls_back_to_global_best(self, tiny_env):
        """Below the visit-trust threshold no child is descendable, so
        the elite is the plain global maximum."""
        reward = self._tabled_reward(11)
        descent = MonteCarloTreeSearch(
            tiny_env,
            reward,
            MCTSConfig(budget=10, elite="mean-descent", seed=4),
        ).search()
        plain = MonteCarloTreeSearch(
            tiny_env,
            self._tabled_reward(11),
            MCTSConfig(budget=10, elite="max", seed=4),
        ).search()
        assert descent.mapping == plain.mapping
        assert descent.reward == plain.reward

    def test_never_exceeds_global_max(self, tiny_env):
        """The descent guards against the winner's curse; it can only
        return a reward at or below the global maximum seen."""
        search = MonteCarloTreeSearch(
            tiny_env,
            self._tabled_reward(13),
            MCTSConfig(budget=300, elite="mean-descent", seed=6),
        )
        result = search.search()
        assert result.reward <= max(result.rewards_seen) + 1e-12
