"""Distilled fast-path tests: policy, student, certification contract.

The equivalence bar for PR 10's pruning layer: proxy scores may steer
*which* candidates pay a full estimator forward, but the decision the
service returns is always certified by the full estimator — the served
mapping's ``expected_score`` is the teacher's own reward for that
mapping, and it is the maximum over every candidate the teacher
actually scored.  Requests that fall outside the student's contract
(an objective override, a stale teacher) silently drop back to the
exact path.
"""

import numpy as np
import pytest

from repro.builder import SystemBuilder
from repro.core import MCTSConfig, ScheduleRequest
from repro.core.objectives import ThroughputObjective
from repro.estimator import DistilledEstimator, FastPathPolicy
from repro.service import SchedulingService
from repro.workloads import Workload

#: Cheap distillation corpus: 4 mixes x 4 mappings = 16 teacher
#: forwards, a 20-epoch head.  The paper-scale defaults live in
#: ``FastPathPolicy()`` and the benchmarks.
TINY_POLICY = FastPathPolicy(
    mixes=4,
    mappings_per_mix=4,
    holdout_mixes=1,
    epochs=20,
    eval_batch_size=10,
    explore_factor=1,
)


def _make_service(**kwargs) -> SchedulingService:
    builder = (
        SystemBuilder(seed=29)
        .with_estimator(num_training_samples=40, epochs=3)
        .with_mcts_config(MCTSConfig(budget=50, seed=13))
    )
    return SchedulingService(builder, **kwargs)


def _mix(names=("alexnet", "mobilenet", "squeezenet")) -> Workload:
    return Workload.from_names(list(names))


# ----------------------------------------------------------------------
# FastPathPolicy
# ----------------------------------------------------------------------
class TestFastPathPolicy:
    def test_defaults_validate(self):
        policy = FastPathPolicy()
        assert policy.keep_fraction == 0.02
        assert policy.explore_factor == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keep_fraction": 0.0},
            {"keep_fraction": 1.5},
            {"min_keep": 0},
            {"eval_batch_size": 0},
            {"explore_factor": 0},
            {"recertify": -1},
            {"mixes": 1},
            {"mappings_per_mix": 1},
            {"holdout_mixes": 0},
            {"holdout_mixes": 40},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FastPathPolicy(**kwargs)

    def test_keep_count(self):
        policy = FastPathPolicy(keep_fraction=0.02, min_keep=1)
        assert policy.keep_count(50) == 1
        assert policy.keep_count(200) == 4
        assert policy.keep_count(3) == 1  # min_keep floors it
        assert policy.keep_count(0) == 0  # empty batch keeps nothing


# ----------------------------------------------------------------------
# The student
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fast_service():
    service = _make_service(fast_path=TINY_POLICY)
    # One scheduled mix forces estimator build + distillation.
    service.submit(_mix())
    return service


@pytest.fixture(scope="module")
def student(fast_service):
    estimator = fast_service._scheduler_instance().estimator
    return fast_service._student_instance(estimator)


class TestDistilledStudent:
    def test_student_is_distilled_and_tiny(self, student, fast_service):
        estimator = fast_service._scheduler_instance().estimator
        assert isinstance(student, DistilledEstimator)
        assert not student.is_stale(estimator)
        teacher_parameters = sum(
            value.size for value in estimator.network.state_dict().values()
        )
        # An order of magnitude smaller even against this test's
        # deliberately shrunken teacher (the real ResNet9 is ~100x).
        assert student.num_parameters < teacher_parameters / 10

    def test_scores_are_deterministic(self, student):
        from repro.workloads.generator import random_contiguous_mapping

        workload = _mix()
        rng = np.random.default_rng(5)
        mappings = [
            random_contiguous_mapping(workload.models, 3, rng)
            for _ in range(6)
        ]
        before = student.query_count
        first = student.score_candidates(workload, mappings)
        second = student.score_candidates(workload, mappings)
        np.testing.assert_array_equal(first, second)
        assert student.query_count == before + 12  # billed per candidate
        # Scores are batch-centered: relative rank only, mean ~ 0.
        assert abs(float(np.mean(first))) < 1e-9

    def test_alpha_selected_from_grid(self, student):
        from repro.estimator.distill import _ALPHA_GRID

        assert student.alpha in _ALPHA_GRID
        assert np.isfinite(student.holdout_rank_corr)

    def test_stale_after_teacher_weight_change(self, student, fast_service):
        estimator = fast_service._scheduler_instance().estimator
        state = estimator.network.state_dict()
        estimator.network.load_state_dict(state)  # version bump
        try:
            assert student.is_stale(estimator)
            rebuilt = fast_service._student_instance(estimator)
            assert rebuilt is not student
        finally:
            # The module-scoped service is shared; leave a fresh
            # student bound to the current teacher version.
            fast_service._student_instance(estimator)


# ----------------------------------------------------------------------
# Engine integration: pruning + certification
# ----------------------------------------------------------------------
class TestEngineFastPath:
    def test_pruning_skips_full_forwards(self):
        service = _make_service(fast_path=TINY_POLICY)
        response = service.submit(_mix())
        stats = service.stats()
        assert stats.distilled_queries > 0
        assert stats.distilled_pruned > 0
        # Candidates that paid a real forward << candidates considered
        # (estimator_queries is the budget *view*; _actual is paid).
        assert stats.estimator_queries_actual < stats.distilled_queries
        assert response.mapping is not None

    def test_certification_contract(self):
        """The served score is the *teacher's* reward for the served
        mapping — never a proxy number."""
        service = _make_service(fast_path=TINY_POLICY)
        workload = _mix()
        response = service.submit(workload)
        estimator = service._scheduler_instance().estimator
        predictions = estimator.predict_throughput_batch(
            [(workload, response.mapping)]
        )
        assert np.isclose(
            float(np.mean(predictions[0])), response.expected_score
        )

    def test_objective_requests_fall_back_to_exact(self):
        """The student ranks mean-throughput only; an objective
        override must bypass pruning *and* the widened budget."""
        service = _make_service(fast_path=TINY_POLICY)
        request = ScheduleRequest(
            workload=_mix(), objective=ThroughputObjective()
        )
        exact_service = _make_service()
        exact_request = ScheduleRequest(
            workload=_mix(), objective=ThroughputObjective()
        )
        response = service.submit(request)
        exact = exact_service.submit(exact_request)
        assert service.stats().distilled_pruned == 0
        assert service.stats().distilled_queries == 0
        assert response.mapping == exact.mapping
        assert response.expected_score == exact.expected_score

    def test_fast_path_off_is_identity(self):
        """``fast_path=None`` leaves the engine byte-identical to the
        pre-fast-path service."""
        requests = [
            ScheduleRequest(workload=_mix(names), request_id=str(i))
            for i, names in enumerate(
                [
                    ("alexnet", "mobilenet", "squeezenet"),
                    ("vgg19", "resnet50", "alexnet"),
                ]
            )
        ]
        default = _make_service().schedule_many(requests)
        explicit = _make_service(fast_path=None).schedule_many(requests)
        for left, right in zip(default, explicit):
            assert left.mapping == right.mapping
            assert left.expected_score == right.expected_score

    def test_student_reused_across_decisions(self):
        service = _make_service(fast_path=TINY_POLICY)
        service.submit(_mix())
        estimator = service._scheduler_instance().estimator
        first = service._student_instance(estimator)
        service.submit(_mix(("vgg19", "resnet50", "alexnet")))
        assert service._student_instance(estimator) is first
