"""Compiled inference engine: equivalence, invariance, invalidation.

The :class:`~repro.nn.inference.InferencePlan` must be a pure
wall-clock optimization: BN folding, conv+GELU fusion and arena reuse
may re-associate float sums, but compiled outputs have to match the
autograd interpreter within tight tolerance, keep the per-row
batch-composition invariance the scheduling service relies on, and
never serve stale weights after a training step or checkpoint load.
"""

import numpy as np
import pytest

from repro.estimator import ThroughputEstimator
from repro.nn import (
    Adam,
    ResNet9,
    Tensor,
    compile_resnet9,
    l1_loss,
    no_grad,
)
from repro.nn.inference import PlanCompileError
from repro.nn.layers import BatchNorm2d, Linear, Module, ReLU, Sequential
from repro.nn.tensor import set_default_dtype
from repro.workloads import Workload
from repro.workloads.generator import random_contiguous_mapping

#: Tolerances per dtype: folding/fusion re-associates float sums, so
#: agreement is tight but not bitwise (atol covers outputs near zero).
TOLERANCES = {
    np.float32: dict(rtol=1e-5, atol=1e-6),
    np.float64: dict(rtol=1e-9, atol=1e-12),
}


def _perturb_running_stats(module, rng):
    """Move BN running stats off their init so folding is non-trivial."""
    if isinstance(module, BatchNorm2d):
        module.running_mean[...] = rng.normal(0.0, 0.2, module.num_features)
        module.running_var[...] = np.exp(rng.normal(0.0, 0.4, module.num_features))
    for child in module.children():
        _perturb_running_stats(child, rng)


def _make_network(seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    network = ResNet9(rng=rng, **kwargs)
    _perturb_running_stats(network, rng)
    network.eval()
    return network


def _interpreted(network, x):
    with no_grad():
        return network(Tensor(x)).numpy().copy()


@pytest.fixture(params=[np.float32, np.float64], ids=["float32", "float64"])
def dtype(request):
    set_default_dtype(request.param)
    yield request.param
    set_default_dtype(np.float32)


class TestEquivalence:
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_compiled_matches_interpreted(self, dtype, batch):
        network = _make_network(seed=3)
        x = np.random.default_rng(batch).normal(size=(batch, 3, 16, 8))
        plan = compile_resnet9(network)
        assert plan.dtype == np.dtype(dtype)
        compiled = plan(x)
        reference = _interpreted(network, x)
        assert compiled.shape == reference.shape == (batch, 3)
        np.testing.assert_allclose(compiled, reference, **TOLERANCES[dtype])

    def test_paper_geometry(self):
        """The deployed estimator geometry (3 devices, 35 layers, 11 models).

        Dense unit-normal inputs accumulate more re-association noise
        than the sparse [0, 1] masked embeddings the estimator feeds
        (those are pinned at rtol 1e-5 in TestEstimatorIntegration and
        the perf benchmark), so this adversarial variant gets a
        slightly wider envelope.
        """
        network = _make_network(seed=5)
        x = np.random.default_rng(9).normal(size=(16, 3, 35, 11))
        np.testing.assert_allclose(
            compile_resnet9(network)(x),
            _interpreted(network, x),
            rtol=5e-5,
            atol=5e-6,
        )

    def test_custom_widths_and_geometry(self):
        """The walk is structural: custom channels/widths compile too."""
        network = _make_network(
            seed=7, in_channels=2, out_features=4, widths=(6, 9, 10), hidden=13
        )
        x = np.random.default_rng(1).normal(size=(5, 2, 20, 8))
        compiled = compile_resnet9(network)(x)
        assert compiled.shape == (5, 4)
        np.testing.assert_allclose(
            compiled, _interpreted(network, x), **TOLERANCES[np.float32]
        )

    def test_plan_reuse_is_deterministic(self):
        """Arena reuse must not leak state between calls."""
        network = _make_network(seed=2)
        plan = compile_resnet9(network)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(9, 3, 16, 8))
        first = plan(x)
        plan(rng.normal(size=(9, 3, 16, 8)))  # dirty the arenas
        np.testing.assert_array_equal(plan(x), first)

    def test_sparse_masked_input(self):
        """Masked-embedding-like inputs (mostly zeros) round-trip."""
        network = _make_network(seed=11)
        x = np.zeros((4, 3, 16, 8))
        rng = np.random.default_rng(4)
        x[rng.random(x.shape) > 0.9] = 0.7
        np.testing.assert_allclose(
            compile_resnet9(network)(x),
            _interpreted(network, x),
            **TOLERANCES[np.float32],
        )


class TestBatchInvariance:
    def test_rows_bitwise_identical_across_compositions(self):
        """Row i of a compiled batch never depends on the other rows."""
        network = _make_network(seed=3)
        plan = compile_resnet9(network)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(64, 3, 16, 8))
        full = plan(x)
        np.testing.assert_array_equal(plan(x[:7]), full[:7])
        np.testing.assert_array_equal(plan(x[5:6])[0], full[5])
        # A batch mixing row 5 with entirely different companions.
        shuffled = np.concatenate([x[40:], x[5:6], x[:3]])
        np.testing.assert_array_equal(plan(shuffled)[24], full[5])

    def test_estimator_batch_of_one_matches_batch_row(
        self, compiled_estimator, workload, mappings
    ):
        pairs = [(workload, mapping) for mapping in mappings[:8]]
        batched = compiled_estimator.predict_throughput_batch(pairs)
        single = compiled_estimator.predict_throughput_batch([pairs[3]])
        np.testing.assert_array_equal(batched[3], single[0])


class TestCompileValidation:
    def test_plan_shape(self):
        plan = compile_resnet9(_make_network(seed=0))
        assert len(plan.conv_steps) == 7  # stem + stage1 + 2*res1 + stage2 + 2*res2
        assert [step.pool for step in plan.conv_steps] == [
            False, True, False, False, True, False, False,
        ]
        assert [step.residual_from for step in plan.conv_steps] == [
            None, None, None, 2, None, None, 5,
        ]
        assert [step.kind for step in plan.head_steps] == [
            "linear", "gelu", "linear",
        ]
        assert plan.out_features == 3

    def test_bn_is_folded(self):
        """No BatchNorm survives compilation: its affine map lives in
        the conv bands/bias, so a BN-less execution still matches."""
        network = _make_network(seed=1)
        plan = compile_resnet9(network)
        stem = network.stem
        scale = stem.norm.weight.data / np.sqrt(
            stem.norm.running_var.astype(np.float32) + np.float32(stem.norm.eps)
        )
        raw_band = (
            stem.conv.weight.data[:, :, 0, :].transpose(2, 1, 0).reshape(9, 12)
        )
        np.testing.assert_allclose(
            plan.conv_steps[0].bands[0],
            raw_band * scale[None, :],
            rtol=1e-6,
            atol=1e-7,
        )

    def test_unsupported_module_raises(self):
        class WithRelu(Module):
            def __init__(self):
                super().__init__()
                self.stem = _make_network(seed=0).stem
                self.act = ReLU()

        with pytest.raises(PlanCompileError, match="cannot compile"):
            compile_resnet9(WithRelu())

    def test_headless_network_raises(self):
        class Trunk(Module):
            def __init__(self):
                super().__init__()
                self.stem = _make_network(seed=0).stem

        with pytest.raises(PlanCompileError, match="global pooling"):
            compile_resnet9(Trunk())

    def test_plain_mlp_raises(self):
        with pytest.raises(PlanCompileError):
            compile_resnet9(Sequential(Linear(4, 2)))

    def test_geometry_too_small_for_pools(self):
        plan = compile_resnet9(_make_network(seed=0))
        with pytest.raises(ValueError, match="geometry"):
            plan(np.zeros((1, 3, 2, 2)))

    def test_bad_input_shape(self):
        plan = compile_resnet9(_make_network(seed=0))
        with pytest.raises(ValueError, match="expected"):
            plan(np.zeros((1, 5, 16, 8)))


@pytest.fixture()
def workload():
    return Workload.from_names(["alexnet", "mobilenet", "squeezenet"])


@pytest.fixture()
def mappings(workload):
    rng = np.random.default_rng(11)
    return [
        random_contiguous_mapping(workload.models, 3, rng) for _ in range(12)
    ]


@pytest.fixture()
def compiled_estimator(embedding):
    estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(3))
    targets = np.random.default_rng(0).uniform(0.5, 5.0, size=(50, 3))
    estimator.target_transform.fit(targets)
    return estimator


class TestEstimatorIntegration:
    def test_compiled_is_default_and_matches_interpreter(
        self, compiled_estimator, workload, mappings
    ):
        assert compiled_estimator.use_compiled
        pairs = [(workload, mapping) for mapping in mappings]
        compiled = compiled_estimator.predict_throughput_batch(pairs)
        compiled_estimator.use_compiled = False
        interpreted = compiled_estimator.predict_throughput_batch(pairs)
        np.testing.assert_allclose(compiled, interpreted, rtol=1e-5, atol=1e-5)

    def test_compiles_once_across_queries(
        self, compiled_estimator, workload, mappings
    ):
        for mapping in mappings[:4]:
            compiled_estimator.predict_throughput(workload, mapping)
        assert compiled_estimator.plan_compiles == 1

    def test_training_mode_restored_after_prediction(
        self, compiled_estimator, workload, mappings
    ):
        """Predicting mid-training must not leave the backbone in eval."""
        network = compiled_estimator.network
        network.train()
        compiled_estimator.predict_throughput(workload, mappings[0])
        assert network.training
        network.eval()
        compiled_estimator.predict_throughput(workload, mappings[0])
        assert not network.training

    def test_raising_query_does_not_count(
        self, compiled_estimator, workload, mappings
    ):
        """Only successful forwards feed the Section V-B accounting."""
        compiled_estimator.reset_query_count()
        short = Workload.from_names(["alexnet"])
        with pytest.raises(ValueError):
            # Mapping covers 3 DNNs, workload has 1: encode raises.
            compiled_estimator.predict_throughput_batch([(short, mappings[0])])
        assert compiled_estimator.query_count == 0

    def test_unfitted_transform_does_not_count(self, embedding, workload, mappings):
        untrained = ThroughputEstimator(embedding, rng=np.random.default_rng(3))
        with pytest.raises(RuntimeError, match="before fit"):
            untrained.predict_throughput_batch([(workload, mappings[0])])
        assert untrained.query_count == 0

    def test_successful_batch_counts_every_pair(
        self, compiled_estimator, workload, mappings
    ):
        compiled_estimator.reset_query_count()
        compiled_estimator.predict_throughput_batch(
            [(workload, mapping) for mapping in mappings]
        )
        assert compiled_estimator.query_count == len(mappings)

    def test_uncompilable_backbone_falls_back_to_interpreter(
        self, compiled_estimator, workload, mappings
    ):
        """A backbone the compiler rejects must degrade gracefully:
        PlanCompileError flips the estimator onto the interpreter."""
        from repro.nn.layers import GlobalAvgPool2d, Flatten

        network = compiled_estimator.network
        hidden = network.head.layer2  # Linear(c3, hidden)
        final = network.head.layer4  # Linear(hidden, out)
        network.head = Sequential(
            GlobalAvgPool2d(), Flatten(), hidden, ReLU(), final
        )
        compiled_estimator.invalidate_plan()
        result = compiled_estimator.predict_throughput(workload, mappings[0])
        assert not compiled_estimator.use_compiled  # permanent fallback
        compiled_estimator.reset_query_count()
        again = compiled_estimator.predict_throughput(workload, mappings[0])
        np.testing.assert_array_equal(again, result)
        assert compiled_estimator.query_count == 1


class TestPlanInvalidation:
    def _train_step(self, estimator, batch=6):
        """One real Adam step on the backbone (mutates weights in place)."""
        network = estimator.network
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(batch, 3) + estimator.embedding.input_shape[1:])
        targets = rng.normal(size=(batch, 3))
        optimizer = Adam(network.parameters(), lr=1e-2)
        network.train()
        loss = l1_loss(network(Tensor(inputs)), Tensor(targets))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    def test_training_step_invalidates_and_changes_outputs(
        self, compiled_estimator, workload, mappings
    ):
        pairs = [(workload, mapping) for mapping in mappings[:5]]
        before = compiled_estimator.predict_throughput_batch(pairs)
        assert compiled_estimator.plan_compiles == 1
        self._train_step(compiled_estimator)
        after = compiled_estimator.predict_throughput_batch(pairs)
        assert compiled_estimator.plan_compiles == 2
        assert not np.allclose(after, before, rtol=1e-6, atol=1e-8)
        # ... and the recompiled plan tracks the interpreter exactly.
        compiled_estimator.use_compiled = False
        interpreted = compiled_estimator.predict_throughput_batch(pairs)
        np.testing.assert_allclose(after, interpreted, rtol=1e-5, atol=1e-5)

    def test_load_state_invalidates(self, compiled_estimator, workload, mappings):
        network = compiled_estimator.network
        before = compiled_estimator.predict_throughput(workload, mappings[0])
        state = network.state_dict()
        state = {
            key: value * 1.05 if value.ndim >= 2 else value
            for key, value in state.items()
        }
        network.load_state_dict(state)
        after = compiled_estimator.predict_throughput(workload, mappings[0])
        assert compiled_estimator.plan_compiles == 2
        assert not np.allclose(after, before, rtol=1e-6, atol=1e-8)

    def test_plan_is_a_snapshot_not_an_alias(
        self, compiled_estimator, workload, mappings
    ):
        """A compiled plan must copy the weights: until invalidated it
        keeps answering from its snapshot, never half-tracking live
        in-place edits."""
        before = compiled_estimator.predict_throughput(workload, mappings[0])
        compiled_estimator.network.head.layer4.weight.data[...] *= 2.0
        stale = compiled_estimator.predict_throughput(workload, mappings[0])
        np.testing.assert_array_equal(stale, before)
        compiled_estimator.invalidate_plan()
        fresh = compiled_estimator.predict_throughput(workload, mappings[0])
        assert not np.allclose(fresh, before, rtol=1e-6, atol=1e-8)

    def test_manual_invalidate_after_inplace_write(
        self, compiled_estimator, workload, mappings
    ):
        network = compiled_estimator.network
        compiled_estimator.predict_throughput(workload, mappings[0])
        # An out-of-band in-place write neither train() nor
        # load_state_dict() sees:
        network.head.layer4.weight.data[...] *= 1.1
        compiled_estimator.invalidate_plan()
        after = compiled_estimator.predict_throughput(workload, mappings[0])
        assert compiled_estimator.plan_compiles == 2
        compiled_estimator.use_compiled = False
        np.testing.assert_allclose(
            after,
            compiled_estimator.predict_throughput(workload, mappings[0]),
            rtol=1e-5,
            atol=1e-5,
        )


class TestEncodeBatchVectorized:
    def test_matches_mask_times_tensor(self, embedding, workload, mappings):
        pairs = [(workload, mapping) for mapping in mappings[:6]]
        batch = embedding.encode_batch(pairs)
        for row, (wl, mapping) in zip(batch, pairs):
            np.testing.assert_array_equal(row, embedding.encode(wl, mapping))

    def test_out_parameter_writes_in_place(self, embedding, workload, mappings):
        pairs = [(workload, mapping) for mapping in mappings[:3]]
        out = np.full((3,) + embedding.input_shape, 123.0, dtype=np.float32)
        returned = embedding.encode_batch(pairs, out=out)
        assert returned is out
        np.testing.assert_allclose(
            out, embedding.encode_batch(pairs).astype(np.float32)
        )

    def test_out_shape_validated(self, embedding, workload, mappings):
        with pytest.raises(ValueError, match="shape"):
            embedding.encode_batch(
                [(workload, mappings[0])],
                out=np.zeros((2,) + embedding.input_shape),
            )

    def test_bad_device_still_rejected(self, embedding, workload):
        from repro.sim import Mapping

        rows = [[99] * model.num_layers for model in workload.models]
        with pytest.raises(ValueError, match="out of range"):
            embedding.encode_batch([(workload, Mapping(rows))])


class TestSearchEquivalence:
    def test_pinned_mcts_decision_identical(self, compiled_estimator, workload):
        """Compiled-vs-interpreted tolerance is tight enough that a
        pinned-seed search makes identical decisions."""
        from repro.core import MCTSConfig, OmniBoostScheduler

        config = MCTSConfig(budget=80, seed=17, eval_batch_size=8)
        compiled_estimator.use_compiled = True
        fast = OmniBoostScheduler(compiled_estimator, config=config).schedule(
            workload
        )
        compiled_estimator.use_compiled = False
        slow = OmniBoostScheduler(compiled_estimator, config=config).schedule(
            workload
        )
        assert fast.mapping == slow.mapping
        assert fast.cost["estimator_queries"] == slow.cost["estimator_queries"]
