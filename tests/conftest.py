"""Shared fixtures for the test suite.

Expensive artifacts (the profiled board, a lightly trained estimator)
are session-scoped: they take seconds to build and many test modules
share them.  Tests that need pristine state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimator import (
    EmbeddingSpace,
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    ThroughputEstimator,
)
from repro.hw import hikey970
from repro.models import MODEL_NAMES, build_all_models, build_model
from repro.sim import BoardSimulator, KernelProfiler
from repro.workloads import Workload, WorkloadGenerator


@pytest.fixture(autouse=True)
def _scheduler_registry_guard():
    """Isolate the process-global scheduler registry per test.

    ``OmniBoostSystem.schedulers`` is registry-backed, so a test that
    registers a scheduler and fails before cleanup would otherwise
    leak it into every later ``build()`` (e.g. the 4-scheduler
    assertions in the pipeline integration tests).
    """
    from repro.core import registry

    snapshot = dict(registry._REGISTRY)
    yield
    registry._REGISTRY.clear()
    registry._REGISTRY.update(snapshot)


@pytest.fixture(scope="session")
def platform():
    return hikey970()


@pytest.fixture(scope="session")
def simulator(platform):
    return BoardSimulator(platform)


@pytest.fixture(scope="session")
def all_models():
    return build_all_models()


@pytest.fixture(scope="session")
def latency_table(platform, all_models):
    return KernelProfiler(platform).profile(all_models, seed=0)


@pytest.fixture(scope="session")
def embedding(latency_table):
    return EmbeddingSpace(latency_table, MODEL_NAMES)


@pytest.fixture(scope="session")
def small_mix():
    return Workload.from_names(["alexnet", "mobilenet", "squeezenet"])


@pytest.fixture(scope="session")
def heavy_mix():
    return Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])


@pytest.fixture(scope="session")
def trained_estimator(simulator, embedding):
    """A quickly trained estimator shared by integration tests.

    20 epochs over 200 samples is enough for a usable ranking signal;
    the full paper regimen (500/100) lives in the benchmarks.
    """
    estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(7))
    generator = WorkloadGenerator(seed=13)
    dataset = EstimatorDatasetBuilder(simulator, generator, estimator).build(
        num_samples=200, measurement_seed=5
    )
    trainer = EstimatorTrainer(estimator)
    trainer.train(dataset, epochs=20, train_size=160, seed=3)
    estimator.reset_query_count()
    return estimator


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def alexnet_graph():
    return build_model("alexnet")
