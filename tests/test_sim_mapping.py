"""Unit tests for mappings and stage decomposition."""

import pytest

from repro.models import build_model
from repro.sim import Mapping, Stage


@pytest.fixture()
def models():
    return [build_model("alexnet"), build_model("mobilenet")]


class TestStage:
    def test_fields(self):
        stage = Stage(2, 0, 5)
        assert stage.device_id == 2
        assert stage.start == 0
        assert stage.end == 5
        assert stage.num_layers == 5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Stage(0, 3, 3)
        with pytest.raises(ValueError):
            Stage(0, -1, 2)

    def test_tuple_compatibility(self):
        assert Stage(1, 0, 4) == (1, 0, 4)


class TestMappingConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one DNN"):
            Mapping([])

    def test_empty_row_rejected(self):
        with pytest.raises(ValueError, match="empty assignment"):
            Mapping([[0, 1], []])

    def test_negative_device_rejected(self):
        with pytest.raises(ValueError, match="negative device"):
            Mapping([[0, -1]])

    def test_single_device_constructor(self, models):
        mapping = Mapping.single_device(models, 1)
        assert mapping.num_dnns == 2
        for model, row in zip(models, mapping.assignments):
            assert len(row) == model.num_layers
            assert set(row) == {1}

    def test_from_split_points(self, models):
        mapping = Mapping.from_split_points(
            models,
            [
                [(0, 4), (1, 4)],  # alexnet: 4 on GPU, 4 on big
                [(2, 28)],  # mobilenet all LITTLE
            ],
        )
        assert mapping.assignments[0] == (0,) * 4 + (1,) * 4
        assert set(mapping.assignments[1]) == {2}

    def test_from_split_points_wrong_total_rejected(self, models):
        with pytest.raises(ValueError, match="cover"):
            Mapping.from_split_points(models, [[(0, 3)], [(1, 28)]])

    def test_from_split_points_zero_run_rejected(self, models):
        with pytest.raises(ValueError, match="positive"):
            Mapping.from_split_points(models, [[(0, 0), (1, 8)], [(1, 28)]])


class TestValidation:
    def test_validate_passes_for_matching(self, models):
        Mapping.single_device(models, 0).validate(models, num_devices=3)

    def test_wrong_dnn_count(self, models):
        with pytest.raises(ValueError, match="mix has"):
            Mapping([[0] * 8]).validate(models, 3)

    def test_wrong_layer_count(self, models):
        mapping = Mapping([[0] * 7, [0] * 28])
        with pytest.raises(ValueError, match="has 8 layers"):
            mapping.validate(models, 3)

    def test_device_out_of_range(self, models):
        mapping = Mapping([[5] * 8, [0] * 28])
        with pytest.raises(ValueError, match="out of"):
            mapping.validate(models, 3)


class TestStages:
    def test_single_stage(self):
        mapping = Mapping([[1, 1, 1]])
        assert mapping.stages(0) == [Stage(1, 0, 3)]
        assert mapping.num_stages(0) == 1

    def test_multi_stage_decomposition(self):
        mapping = Mapping([[0, 0, 1, 1, 1, 2]])
        stages = mapping.stages(0)
        assert stages == [Stage(0, 0, 2), Stage(1, 2, 5), Stage(2, 5, 6)]

    def test_alternating_devices(self):
        mapping = Mapping([[0, 1, 0, 1]])
        assert mapping.num_stages(0) == 4

    def test_max_stages_across_dnns(self):
        mapping = Mapping([[0, 0, 0], [0, 1, 2]])
        assert mapping.max_stages == 3

    def test_devices_used(self):
        mapping = Mapping([[0, 0], [2, 2]])
        assert mapping.devices_used() == (0, 2)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Mapping([[0, 1], [2, 2]])
        b = Mapping([[0, 1], [2, 2]])
        c = Mapping([[0, 1], [2, 1]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_usable_as_dict_key(self):
        cache = {Mapping([[0, 1]]): 42}
        assert cache[Mapping([[0, 1]])] == 42

    def test_not_equal_to_other_types(self):
        assert Mapping([[0]]) != [[0]]
