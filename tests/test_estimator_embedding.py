"""Distributed embedding tensor tests (paper IV-A / Fig. 3)."""

import numpy as np
import pytest

from repro.estimator import EmbeddingSpace
from repro.models import MODEL_NAMES, build_model
from repro.sim import Mapping
from repro.workloads import Workload


@pytest.fixture(scope="module")
def space(latency_table):
    return EmbeddingSpace(latency_table, MODEL_NAMES)


class TestTensorCompilation:
    def test_shape_is_devices_layers_models(self, space):
        assert space.tensor.shape == (3, 35, 11)
        assert space.input_shape == (3, 35, 11)

    def test_padding_cells_are_zero(self, space):
        """Eq. 3: shorter models are zero-padded to max_layers."""
        alexnet_column = space.column_of("alexnet")
        column = space.tensor[:, :, alexnet_column]
        assert (column[:, 8:] == 0).all()  # AlexNet has 8 units
        assert (column[:, :8] > 0).all()

    def test_values_in_unit_interval(self, space):
        assert space.tensor.min() >= 0.0
        assert space.tensor.max() <= 1.0

    def test_populated_cells_positive(self, space):
        for name in MODEL_NAMES:
            column = space.column_of(name)
            layers = build_model(name).num_layers
            assert (space.tensor[:, :layers, column] > 0).all()

    def test_global_max_normalization_preserves_ratios(self, latency_table):
        space = EmbeddingSpace(
            latency_table, MODEL_NAMES, normalization="global-max"
        )
        raw = latency_table.tables["vgg19"]
        column = space.column_of("vgg19")
        encoded = space.tensor[:, : raw.shape[1], column]
        ratio = raw / encoded
        assert np.allclose(ratio, ratio[0, 0])

    def test_unknown_normalization_rejected(self, latency_table):
        with pytest.raises(ValueError, match="normalization"):
            EmbeddingSpace(latency_table, MODEL_NAMES, normalization="softmax")

    def test_missing_model_rejected(self, latency_table):
        with pytest.raises(KeyError, match="lacks"):
            EmbeddingSpace(latency_table, ["alexnet", "nonexistent"])


class TestMasking:
    def test_mask_selects_exact_cells(self, space):
        workload = Workload.from_names(["alexnet"])
        mapping = Mapping([[0] * 4 + [1] * 4])
        mask = space.mask(workload, mapping)
        column = space.column_of("alexnet")
        assert mask[0, :4, column].all()
        assert mask[1, 4:8, column].all()
        assert mask.sum() == 8

    def test_mask_matches_paper_example_structure(self, space):
        """Fig. 3: each (device, layer) pair of a scheduled model gets
        exactly one active cell."""
        workload = Workload.from_names(["alexnet", "vgg19", "mobilenet"])
        mapping = Mapping(
            [
                [0] + [1] * 7,  # L1 -> GPU, rest big
                [1] + [0] * 18,  # L1 -> big, rest GPU
                [0, 0] + [2] * 26,  # L1,L2 -> GPU, rest LITTLE
            ]
        )
        mask = space.mask(workload, mapping)
        assert mask.sum() == workload.total_layers
        # Each scheduled layer activates exactly one device slice.
        for model, row in zip(workload.models, mapping.assignments):
            column = space.column_of(model.name)
            for layer_index, device in enumerate(row):
                assert mask[device, layer_index, column]
                assert mask[:, layer_index, column].sum() == 1

    def test_encode_is_mask_times_tensor(self, space):
        workload = Workload.from_names(["squeezenet", "mobilenet"])
        mapping = Mapping.single_device(workload.models, 2)
        encoded = space.encode(workload, mapping)
        mask = space.mask(workload, mapping)
        np.testing.assert_array_equal(encoded, space.tensor * mask)

    def test_encode_zero_outside_workload(self, space):
        workload = Workload.from_names(["alexnet"])
        mapping = Mapping.single_device(workload.models, 0)
        encoded = space.encode(workload, mapping)
        other_columns = [
            space.column_of(name) for name in MODEL_NAMES if name != "alexnet"
        ]
        assert (encoded[:, :, other_columns] == 0).all()

    def test_mapping_workload_mismatch_rejected(self, space):
        workload = Workload.from_names(["alexnet", "vgg19"])
        with pytest.raises(ValueError, match="covers"):
            space.mask(workload, Mapping([[0] * 8]))

    def test_wrong_layer_count_rejected(self, space):
        workload = Workload.from_names(["alexnet"])
        with pytest.raises(ValueError, match="assigns"):
            space.mask(workload, Mapping([[0] * 5]))

    def test_device_out_of_range_rejected(self, space):
        workload = Workload.from_names(["alexnet"])
        with pytest.raises(ValueError, match="out of range"):
            space.mask(workload, Mapping([[7] * 8]))

    def test_unknown_model_lookup_rejected(self, space):
        with pytest.raises(KeyError, match="not part"):
            space.column_of("lenet")


class TestBatchEncoding:
    def test_batch_shape(self, space):
        workload = Workload.from_names(["alexnet"])
        pairs = [
            (workload, Mapping.single_device(workload.models, device))
            for device in range(3)
        ]
        batch = space.encode_batch(pairs)
        assert batch.shape == (3, 3, 35, 11)

    def test_different_mappings_differ(self, space):
        workload = Workload.from_names(["alexnet"])
        a = space.encode(workload, Mapping.single_device(workload.models, 0))
        b = space.encode(workload, Mapping.single_device(workload.models, 1))
        assert not np.array_equal(a, b)

    def test_empty_batch_rejected(self, space):
        with pytest.raises(ValueError, match="at least one"):
            space.encode_batch([])


class TestExtension:
    """EmbeddingSpace.extend: frozen-scale columns for new models."""

    @pytest.fixture(scope="class")
    def extension_table(self, platform):
        from repro.models import build_model
        from repro.sim import KernelProfiler

        models = [build_model(name) for name in ("resnet18", "efficientnet_b0")]
        return KernelProfiler(platform).profile(models, seed=77)

    @pytest.fixture(scope="class")
    def extended(self, space, extension_table):
        return space.extend(extension_table, ["resnet18", "efficientnet_b0"])

    def test_existing_columns_bit_identical(self, space, extended):
        assert extended.tensor[:, : space.max_layers, : len(space.model_names)].shape == space.tensor.shape
        np.testing.assert_array_equal(
            extended.tensor[:, : space.max_layers, : len(space.model_names)],
            space.tensor,
        )

    def test_new_columns_populated(self, extended):
        column = extended.column_of("resnet18")
        layers = build_model("resnet18").num_layers
        assert (extended.tensor[:, :layers, column] > 0).all()
        assert (extended.tensor[:, layers:, column] == 0).all()

    def test_geometry(self, space, extended):
        assert extended.max_layers == space.max_layers  # both fit in 35
        assert extended.input_shape == (3, 35, 13)
        assert extended.model_names == space.model_names + (
            "resnet18",
            "efficientnet_b0",
        )

    def test_height_grows_for_tall_model(self, space, platform):
        from repro.sim import KernelProfiler

        table = KernelProfiler(platform).profile(
            [build_model("densenet121")], seed=78
        )
        extended = space.extend(table, ["densenet121"])
        assert extended.max_layers == 63
        np.testing.assert_array_equal(
            extended.tensor[:, :35, :11], space.tensor
        )
        assert (extended.tensor[:, 35:, :11] == 0).all()

    def test_frozen_scale_shared(self, space, extended):
        assert extended._scale_stats == space._scale_stats

    def test_duplicate_model_rejected(self, space, extension_table):
        table = extension_table
        with pytest.raises(ValueError):
            space.extend(table, ["resnet18", "resnet18"][1:] + ["alexnet"])

    def test_empty_extension_rejected(self, space, extension_table):
        with pytest.raises(ValueError):
            space.extend(extension_table, [])

    def test_unprofiled_model_rejected(self, space, extension_table):
        with pytest.raises(KeyError):
            space.extend(extension_table, ["densenet121"])

    def test_encoding_new_model_mix(self, extended):
        workload = Workload.from_names(["alexnet", "resnet18"])
        mapping = Mapping.single_device(workload.models, 1)
        encoded = extended.encode(workload, mapping)
        assert encoded.shape == extended.input_shape
        assert encoded[1].sum() > 0
        assert encoded[0].sum() == 0
