"""Scheduling-objective tests: the paper's reward and the energy extension."""

import numpy as np
import pytest

from repro.core import (
    EnergyAwareObjective,
    MCTSConfig,
    OmniBoostScheduler,
    ThroughputObjective,
)
from repro.hw import hikey970_power
from repro.sim import Mapping
from repro.workloads import Workload


@pytest.fixture(scope="module")
def power_model():
    return hikey970_power()


@pytest.fixture(scope="module")
def energy_objective(power_model, platform, latency_table):
    return EnergyAwareObjective(power_model, platform, latency_table)


@pytest.fixture(scope="module")
def pair():
    workload = Workload.from_names(["alexnet", "squeezenet"])
    mapping = Mapping.single_device(workload.models, 0)
    return workload, mapping


class TestThroughputObjective:
    def test_score_is_mean(self, pair):
        workload, mapping = pair
        objective = ThroughputObjective()
        predicted = np.array([3.0, 2.0, 1.0])
        assert objective.score(workload, mapping, predicted) == pytest.approx(2.0)

    def test_matches_estimator_reward(self, trained_estimator, pair):
        """The named objective reproduces estimator.reward exactly."""
        workload, mapping = pair
        objective = ThroughputObjective()
        predicted = trained_estimator.predict_throughput(workload, mapping)
        assert objective.score(workload, mapping, predicted) == pytest.approx(
            trained_estimator.reward(workload, mapping)
        )


class TestEnergyAwareObjective:
    def test_mode_validation(self, power_model, platform, latency_table):
        with pytest.raises(ValueError):
            EnergyAwareObjective(
                power_model, platform, latency_table, mode="nonsense"
            )
        with pytest.raises(ValueError):
            EnergyAwareObjective(
                power_model, platform, latency_table, mode="weighted"
            )
        with pytest.raises(ValueError):
            EnergyAwareObjective(
                power_model,
                platform,
                latency_table,
                mode="weighted",
                tradeoff_w=-1.0,
            )

    def test_predicted_power_at_least_idle_floor(
        self, energy_objective, power_model, platform, pair
    ):
        workload, mapping = pair
        power = energy_objective.predicted_power_w(
            workload, mapping, np.zeros(3)
        )
        assert power == pytest.approx(power_model.idle_floor_w(platform))

    def test_predicted_power_grows_with_rate(self, energy_objective, pair):
        workload, mapping = pair
        low = energy_objective.predicted_power_w(
            workload, mapping, np.array([1.0, 0.0, 0.0])
        )
        high = energy_objective.predicted_power_w(
            workload, mapping, np.array([5.0, 0.0, 0.0])
        )
        assert high > low

    def test_inferences_per_joule_score(self, energy_objective, pair):
        workload, mapping = pair
        predicted = np.array([2.0, 1.0, 0.5])
        power = energy_objective.predicted_power_w(workload, mapping, predicted)
        score = energy_objective.score(workload, mapping, predicted)
        assert score == pytest.approx(predicted.sum() / power)

    def test_weighted_score(self, power_model, platform, latency_table, pair):
        workload, mapping = pair
        objective = EnergyAwareObjective(
            power_model,
            platform,
            latency_table,
            mode="weighted",
            tradeoff_w=0.1,
        )
        predicted = np.array([2.0, 1.0, 0.5])
        power = objective.predicted_power_w(workload, mapping, predicted)
        assert objective.score(workload, mapping, predicted) == pytest.approx(
            predicted.mean() - 0.1 * power
        )

    def test_weighted_zero_tradeoff_equals_throughput(
        self, power_model, platform, latency_table, pair
    ):
        workload, mapping = pair
        objective = EnergyAwareObjective(
            power_model,
            platform,
            latency_table,
            mode="weighted",
            tradeoff_w=0.0,
        )
        predicted = np.array([4.0, 2.0, 0.0])
        assert objective.score(workload, mapping, predicted) == pytest.approx(
            ThroughputObjective().score(workload, mapping, predicted)
        )

    def test_prefers_lower_energy_mapping_at_equal_throughput(
        self, energy_objective, latency_table
    ):
        """With identical predicted throughput the objective must rank
        the mapping with lower design-time dynamic energy higher."""
        workload = Workload.from_names(["vgg16"])
        gpu_mapping = Mapping.single_device(workload.models, 0)
        big_mapping = Mapping.single_device(workload.models, 1)
        predicted = np.array([1.0, 1.0, 1.0])
        gpu_score = energy_objective.score(workload, gpu_mapping, predicted)
        big_score = energy_objective.score(workload, big_mapping, predicted)
        # GPU dynamic energy on dense conv work is lower (see power tests).
        assert gpu_score > big_score


class TestSchedulerObjectiveIntegration:
    def test_default_objective_unchanged(self, trained_estimator, small_mix):
        """objective=ThroughputObjective() reproduces the default
        scheduler decision exactly (same seed, same reward surface)."""
        default = OmniBoostScheduler(
            trained_estimator, config=MCTSConfig(budget=60, seed=4)
        ).schedule(small_mix)
        named = OmniBoostScheduler(
            trained_estimator,
            config=MCTSConfig(budget=60, seed=4),
            objective=ThroughputObjective(),
        ).schedule(small_mix)
        assert named.mapping == default.mapping
        assert named.expected_score == pytest.approx(default.expected_score)

    def test_energy_objective_returns_valid_mapping(
        self, trained_estimator, energy_objective, small_mix
    ):
        scheduler = OmniBoostScheduler(
            trained_estimator,
            config=MCTSConfig(budget=60, seed=4),
            objective=energy_objective,
        )
        decision = scheduler.schedule(small_mix)
        decision.mapping.validate(small_mix.models, 3)
        assert decision.cost["estimator_queries"] <= 60
