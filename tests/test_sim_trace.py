"""Trace simulator tests, including fluid-model cross-validation."""

import numpy as np
import pytest

from repro.hw import BIG_CPU_ID, GPU_ID, LITTLE_CPU_ID, hikey970
from repro.sim import BoardSimulator, Mapping, TraceSimulator
from repro.workloads import Workload


@pytest.fixture(scope="module")
def platform():
    return hikey970()


@pytest.fixture(scope="module")
def tracer(platform):
    return TraceSimulator(platform)


@pytest.fixture(scope="module")
def board(platform):
    return BoardSimulator(platform)


@pytest.fixture(scope="module")
def light_mix():
    return Workload.from_names(["alexnet", "mobilenet", "squeezenet"])


class TestValidationAgainstFluidModel:
    """The trace and the steady-state solver must agree -- they are two
    views of the same physics."""

    def test_unsaturated_mix_hits_offered_rates(self, tracer, board, light_mix):
        mapping = Mapping(
            [
                [GPU_ID] * 8,
                [BIG_CPU_ID] * 28,
                [LITTLE_CPU_ID] * 18,
            ]
        )
        fluid = board.simulate(light_mix.models, mapping)
        trace = tracer.run(light_mix.models, mapping, duration_s=20.0)
        np.testing.assert_allclose(trace.rates, fluid.rates, rtol=0.05)

    def test_saturated_gpu_only_rates_match(self, tracer, board):
        mix = Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])
        mapping = Mapping.single_device(mix.models, GPU_ID)
        fluid = board.simulate(mix.models, mapping)
        trace = tracer.run(mix.models, mapping, duration_s=120.0)
        np.testing.assert_allclose(trace.rates, fluid.rates, rtol=0.15)

    def test_saturated_spread_rates_match(self, tracer, board):
        mix = Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])
        mapping = Mapping(
            [
                [GPU_ID] * 19,
                [BIG_CPU_ID] * 18,
                [LITTLE_CPU_ID] * 17,
                [BIG_CPU_ID] * 8,
            ]
        )
        fluid = board.simulate(mix.models, mapping)
        trace = tracer.run(mix.models, mapping, duration_s=120.0)
        np.testing.assert_allclose(trace.rates, fluid.rates, rtol=0.15)


class TestTraceMechanics:
    def test_invalid_arguments(self, tracer, light_mix):
        mapping = Mapping.single_device(light_mix.models, GPU_ID)
        with pytest.raises(ValueError, match="duration"):
            tracer.run(light_mix.models, mapping, duration_s=0.0)
        with pytest.raises(ValueError, match="warmup"):
            tracer.run(light_mix.models, mapping, warmup_fraction=1.0)
        with pytest.raises(ValueError, match="empty"):
            tracer.run([], mapping)

    def test_events_recorded_when_requested(self, tracer, light_mix):
        mapping = Mapping.single_device(light_mix.models, GPU_ID)
        silent = tracer.run(light_mix.models, mapping, duration_s=3.0)
        verbose = tracer.run(
            light_mix.models, mapping, duration_s=3.0, record_events=True
        )
        assert silent.events == []
        assert len(verbose.events) > 0

    def test_events_never_overlap_per_device(self, tracer, light_mix):
        mapping = Mapping(
            [[GPU_ID] * 4 + [BIG_CPU_ID] * 4, [GPU_ID] * 28, [LITTLE_CPU_ID] * 18]
        )
        trace = tracer.run(
            light_mix.models, mapping, duration_s=5.0, record_events=True
        )
        by_device = {}
        for event in trace.events:
            by_device.setdefault(event.device_id, []).append(event)
        for device_events in by_device.values():
            device_events.sort(key=lambda event: event.start_s)
            for first, second in zip(device_events, device_events[1:]):
                assert second.start_s >= first.end_s - 1e-9

    def test_stage_order_preserved_per_frame(self, tracer, light_mix):
        mapping = Mapping(
            [[GPU_ID] * 4 + [BIG_CPU_ID] * 4, [GPU_ID] * 28, [LITTLE_CPU_ID] * 18]
        )
        trace = tracer.run(
            light_mix.models, mapping, duration_s=5.0, record_events=True
        )
        frames = {}
        for event in trace.events:
            frames.setdefault((event.dnn_index, event.frame_index), []).append(event)
        for events in frames.values():
            events.sort(key=lambda event: event.start_s)
            stages = [event.stage_index for event in events]
            assert stages == sorted(stages)

    def test_latency_at_least_service_time(self, tracer, board, light_mix):
        mapping = Mapping.single_device(light_mix.models, GPU_ID)
        fluid = board.simulate(light_mix.models, mapping)
        trace = tracer.run(light_mix.models, mapping, duration_s=10.0)
        for dnn_index, plan in enumerate(fluid.plans):
            scale = fluid.device_scale
            floor = sum(
                stage.service_time * scale[stage.device_id]
                for stage in plan.stages
            )
            assert trace.mean_latency(dnn_index) >= floor * 0.99

    def test_mean_latency_requires_completions(self):
        from repro.sim import TraceResult

        empty = TraceResult(
            duration_s=1.0,
            warmup_s=0.0,
            completions=np.zeros(1, dtype=int),
            rates=np.zeros(1),
            latencies_s=[[]],
            device_busy_s=np.zeros(3),
        )
        with pytest.raises(ValueError, match="no frames"):
            empty.mean_latency(0)

    def test_utilization_bounded(self, tracer, light_mix):
        mapping = Mapping.single_device(light_mix.models, GPU_ID)
        trace = tracer.run(light_mix.models, mapping, duration_s=10.0)
        assert (trace.device_utilization <= 1.0 + 1e-9).all()

    def test_timeline_rendering(self, tracer, light_mix):
        mapping = Mapping.single_device(light_mix.models, GPU_ID)
        trace = tracer.run(
            light_mix.models, mapping, duration_s=2.0, record_events=True
        )
        text = trace.timeline(max_rows=5)
        assert "t start" in text
        assert len(text.splitlines()) <= 7

    def test_offered_rate_override(self, tracer, light_mix):
        mapping = Mapping.single_device(light_mix.models, GPU_ID)
        slow = tracer.run(
            light_mix.models, mapping, duration_s=10.0, offered_rates=[1.0, 1.0, 1.0]
        )
        assert np.allclose(slow.rates, 1.0, rtol=0.1)
