"""Pareto-front tests: domination semantics and front correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import dominates, pareto_front


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((2.0, 1.0), (1.0, 2.0), maximize=(True, False))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0), maximize=(True, True))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((2.0, 2.0), (1.0, 1.0), maximize=(True, False))
        assert not dominates((1.0, 1.0), (2.0, 2.0), maximize=(True, False))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0), maximize=(True, True))
        with pytest.raises(ValueError):
            dominates((), (), maximize=())


class TestParetoFront:
    def test_known_front(self):
        # (throughput up, power down)
        points = [
            (2.0, 8.0),   # fast, hungry        -> on front
            (1.0, 4.0),   # slow, frugal        -> on front
            (1.5, 9.0),   # dominated by 0
            (2.0, 8.0),   # duplicate of 0      -> kept
        ]
        front = pareto_front(points, maximize=(True, False))
        assert front == [0, 1, 3]

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)], maximize=(True, True)) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_front([], maximize=(True,))
        with pytest.raises(ValueError):
            pareto_front([(1.0, 2.0)], maximize=(True,))

    @given(
        points=st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_front_is_exactly_the_nondominated_set(self, points):
        maximize = (True, False)
        front = set(pareto_front(points, maximize))
        for index, point in enumerate(points):
            dominated = any(
                dominates(other, point, maximize)
                for j, other in enumerate(points)
                if j != index
            )
            assert (index in front) == (not dominated)
