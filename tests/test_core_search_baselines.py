"""Tests for the estimator-driven search baselines."""

import pytest

from repro.core import GreedyImprovementScheduler, RandomSearchScheduler
from repro.workloads import Workload


@pytest.fixture()
def mix():
    return Workload.from_names(["alexnet", "vgg19", "mobilenet"])


class TestRandomSearch:
    def test_valid_mapping_and_budget(self, trained_estimator, mix):
        scheduler = RandomSearchScheduler(trained_estimator, num_samples=40, seed=1)
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
        assert decision.cost["estimator_queries"] == 40

    def test_deterministic_under_seed(self, trained_estimator, mix):
        a = RandomSearchScheduler(trained_estimator, num_samples=30, seed=4)
        b = RandomSearchScheduler(trained_estimator, num_samples=30, seed=4)
        assert a.schedule(mix).mapping == b.schedule(mix).mapping

    def test_more_samples_never_lower_score(self, trained_estimator, mix):
        small = RandomSearchScheduler(trained_estimator, num_samples=10, seed=2)
        large = RandomSearchScheduler(trained_estimator, num_samples=80, seed=2)
        assert (
            large.schedule(mix).expected_score
            >= small.schedule(mix).expected_score - 1e-9
        )

    def test_stage_cap_respected(self, trained_estimator, mix):
        scheduler = RandomSearchScheduler(
            trained_estimator, num_samples=25, max_stages=2, seed=3
        )
        decision = scheduler.schedule(mix)
        assert decision.mapping.max_stages <= 2

    def test_invalid_config(self, trained_estimator):
        with pytest.raises(ValueError):
            RandomSearchScheduler(trained_estimator, num_samples=0)
        with pytest.raises(ValueError):
            RandomSearchScheduler(trained_estimator, eval_batch_size=0)

    def test_batched_matches_sequential(self, trained_estimator, mix):
        """Chunked vectorized scoring must pick the same mapping as the
        one-query-per-candidate loop (eval_batch_size=1)."""
        sequential = RandomSearchScheduler(
            trained_estimator, num_samples=50, seed=6, eval_batch_size=1
        ).schedule(mix)
        batched = RandomSearchScheduler(
            trained_estimator, num_samples=50, seed=6, eval_batch_size=16
        ).schedule(mix)
        assert batched.mapping == sequential.mapping
        assert batched.cost["estimator_queries"] == 50


class TestGreedyImprovement:
    def test_valid_mapping(self, trained_estimator, mix):
        scheduler = GreedyImprovementScheduler(trained_estimator)
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
        assert decision.mapping.max_stages <= 2  # menu has <= 2-stage rows

    def test_improves_on_start_point(self, trained_estimator, mix):
        scheduler = GreedyImprovementScheduler(trained_estimator)
        start_reward = trained_estimator.reward(
            mix,
            __import__("repro.sim", fromlist=["Mapping"]).Mapping.single_device(
                mix.models, 0
            ),
        )
        decision = scheduler.schedule(mix)
        assert decision.expected_score >= start_reward - 1e-9

    def test_queries_counted(self, trained_estimator, mix):
        scheduler = GreedyImprovementScheduler(trained_estimator, passes=1)
        decision = scheduler.schedule(mix)
        assert decision.cost["estimator_queries"] > mix.num_dnns  # > 1/DNN

    def test_deterministic(self, trained_estimator, mix):
        a = GreedyImprovementScheduler(trained_estimator).schedule(mix)
        b = GreedyImprovementScheduler(trained_estimator).schedule(mix)
        assert a.mapping == b.mapping

    def test_invalid_config(self, trained_estimator):
        with pytest.raises(ValueError):
            GreedyImprovementScheduler(trained_estimator, passes=0)
        with pytest.raises(ValueError):
            GreedyImprovementScheduler(trained_estimator, splits_per_pair=0)


class TestSimulatedAnnealing:
    def test_valid_mapping_and_budget(self, trained_estimator, mix):
        from repro.core import SimulatedAnnealingScheduler

        scheduler = SimulatedAnnealingScheduler(
            trained_estimator, budget=40, seed=1
        )
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
        assert decision.cost["estimator_queries"] == 40

    def test_deterministic_under_seed(self, trained_estimator, mix):
        from repro.core import SimulatedAnnealingScheduler

        a = SimulatedAnnealingScheduler(trained_estimator, budget=30, seed=4)
        b = SimulatedAnnealingScheduler(trained_estimator, budget=30, seed=4)
        assert a.schedule(mix).mapping == b.schedule(mix).mapping

    def test_best_is_tracked_not_last(self, trained_estimator, mix):
        """The returned score must be the best seen, never worse than a
        tiny-budget run with the same seed (prefix property of the
        best-so-far tracker)."""
        from repro.core import SimulatedAnnealingScheduler

        small = SimulatedAnnealingScheduler(trained_estimator, budget=10, seed=2)
        large = SimulatedAnnealingScheduler(trained_estimator, budget=120, seed=2)
        assert (
            large.schedule(mix).expected_score
            >= small.schedule(mix).expected_score - 1e-9
        )

    def test_stage_cap_respected(self, trained_estimator, mix):
        from repro.core import SimulatedAnnealingScheduler

        scheduler = SimulatedAnnealingScheduler(
            trained_estimator, budget=30, max_stages=2, seed=3
        )
        assert scheduler.schedule(mix).mapping.max_stages <= 2

    def test_validation(self, trained_estimator):
        from repro.core import SimulatedAnnealingScheduler

        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(trained_estimator, budget=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(trained_estimator, initial_temperature=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(trained_estimator, cooling=1.0)


class TestEnumerateContiguousRows:
    def test_counts_single_layer(self):
        from repro.core import enumerate_contiguous_rows

        rows = list(enumerate_contiguous_rows(1, 3, 3))
        assert sorted(rows) == [(0,), (1,), (2,)]

    def test_counts_two_layers(self):
        from repro.core import enumerate_contiguous_rows

        rows = list(enumerate_contiguous_rows(2, 3, 3))
        # 3 one-stage rows + 1 cut x 3x2 ordered device pairs = 9.
        assert len(rows) == 9
        assert len(set(rows)) == 9

    def test_no_adjacent_duplicate_devices(self):
        from repro.core import enumerate_contiguous_rows

        for row in enumerate_contiguous_rows(5, 3, 3):
            stages = [row[0]]
            for device in row[1:]:
                if device != stages[-1]:
                    stages.append(device)
            assert all(a != b for a, b in zip(stages, stages[1:]))
            assert len(stages) <= 3

    def test_matches_spacesize_formula(self):
        from repro.core import enumerate_contiguous_rows
        from repro.evaluation import total_contiguous_mappings
        from repro.models import build_model

        model = build_model("alexnet")
        rows = list(enumerate_contiguous_rows(model.num_layers, 3, 3))
        assert len(rows) == total_contiguous_mappings([model], 3, 3)

    def test_validation(self):
        from repro.core import enumerate_contiguous_rows

        with pytest.raises(ValueError):
            list(enumerate_contiguous_rows(0, 3, 3))


class TestExhaustiveSearch:
    def test_finds_global_optimum_on_tiny_mix(self, trained_estimator):
        """MCTS quality reference: on a single small DNN the exhaustive
        scheduler is by definition optimal; a budget-matched random
        search cannot beat it."""
        from repro.core import ExhaustiveSearchScheduler

        tiny = Workload.from_names(["alexnet"])
        exhaustive = ExhaustiveSearchScheduler(trained_estimator)
        decision = exhaustive.schedule(tiny)
        decision.mapping.validate(tiny.models, 3)

        probe = RandomSearchScheduler(trained_estimator, num_samples=60, seed=0)
        assert (
            decision.expected_score
            >= probe.schedule(tiny).expected_score - 1e-9
        )

    def test_refuses_huge_spaces(self, trained_estimator, mix):
        from repro.core import ExhaustiveSearchScheduler

        scheduler = ExhaustiveSearchScheduler(
            trained_estimator, max_evaluations=1000
        )
        with pytest.raises(ValueError, match="exceeds max_evaluations"):
            scheduler.schedule(mix)

    def test_validation(self, trained_estimator):
        from repro.core import ExhaustiveSearchScheduler

        with pytest.raises(ValueError):
            ExhaustiveSearchScheduler(trained_estimator, max_evaluations=0)
