"""Behavioural tests for the board simulator."""

import numpy as np
import pytest

from repro.hw import GPU_ID, BIG_CPU_ID, LITTLE_CPU_ID, hikey970
from repro.models import build_model
from repro.sim import (
    BoardSimulator,
    BoardUnresponsiveError,
    Mapping,
    SimConfig,
    model_dram_bytes,
)
from repro.workloads import Workload


@pytest.fixture(scope="module")
def sim():
    return BoardSimulator(hikey970())


@pytest.fixture(scope="module")
def heavy_models():
    return Workload.from_names(
        ["vgg19", "inception_v4", "resnet101", "vgg16"]
    ).models


class TestBasicInvariants:
    def test_rates_positive(self, sim, heavy_models):
        result = sim.simulate(heavy_models, Mapping.single_device(heavy_models, GPU_ID))
        assert (result.rates > 0).all()

    def test_device_throughput_sums_to_total(self, sim, heavy_models):
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        result = sim.simulate(heavy_models, mapping)
        assert result.device_throughput.sum() == pytest.approx(
            result.total_throughput, rel=1e-6
        )

    def test_average_is_mean_of_rates(self, sim, heavy_models):
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        result = sim.simulate(heavy_models, mapping)
        assert result.average_throughput == pytest.approx(result.rates.mean())

    def test_utilization_bounded(self, sim, heavy_models):
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        result = sim.simulate(heavy_models, mapping)
        assert (result.device_utilization <= 1.0 + 1e-6).all()
        assert result.memory_utilization <= 1.0 + 1e-6

    def test_gpu_only_uses_only_gpu(self, sim, heavy_models):
        result = sim.simulate(heavy_models, Mapping.single_device(heavy_models, GPU_ID))
        assert result.device_utilization[GPU_ID] == pytest.approx(1.0, abs=1e-6)
        assert result.device_utilization[BIG_CPU_ID] == 0.0
        assert result.device_utilization[LITTLE_CPU_ID] == 0.0

    def test_empty_mix_rejected(self, sim):
        with pytest.raises(ValueError, match="empty"):
            sim.simulate([], Mapping([[0]]))


class TestPaperRegimes:
    def test_heavy_mix_collapses_on_gpu_only(self, sim, heavy_models):
        """Fig. 5b regime: the GPU-only mapping of a heavy 4-mix thrashes
        the GPU working set; even a naive hand-balanced mapping wins by
        a solid factor (a searched mapping approaches ~2.9x)."""
        gpu_only = sim.simulate(
            heavy_models, Mapping.single_device(heavy_models, GPU_ID)
        )
        balanced = Mapping(
            [
                [GPU_ID] * heavy_models[0].num_layers,
                [BIG_CPU_ID] * heavy_models[1].num_layers,
                [LITTLE_CPU_ID] * heavy_models[2].num_layers,
                [BIG_CPU_ID] * heavy_models[3].num_layers,
            ]
        )
        spread = sim.simulate(heavy_models, balanced)
        assert spread.average_throughput > 1.5 * gpu_only.average_throughput

    def test_gpu_scale_reflects_thrash(self, sim, heavy_models):
        gpu_only = sim.simulate(
            heavy_models, Mapping.single_device(heavy_models, GPU_ID)
        )
        # Four heavy DNNs (1.5 GB weights) on a 0.9 GB working set: the
        # GPU must run visibly inflated.
        assert gpu_only.device_scale[GPU_ID] > 2.0

    def test_light_mix_no_thrash(self, sim):
        models = Workload.from_names(["alexnet", "squeezenet", "mobilenet"]).models
        result = sim.simulate(models, Mapping.single_device(models, GPU_ID))
        # Concurrency overhead only: 1 + 0.14 * 2.
        assert result.device_scale[GPU_ID] == pytest.approx(1.28, rel=0.01)

    def test_six_dnns_hang_the_board(self, sim):
        models = Workload.from_names(
            ["alexnet", "squeezenet", "mobilenet", "vgg13", "resnet34", "resnet50"]
        ).models
        with pytest.raises(BoardUnresponsiveError, match="unresponsive|hangs"):
            sim.simulate(models, Mapping.single_device(models, GPU_ID))

    def test_residency_pressure_hits_little_hardest(self, sim):
        models = Workload.from_names(
            ["alexnet", "squeezenet", "mobilenet", "vgg13", "resnet34"]
        ).models
        # GPU hosts the two lightest-weight networks (no working-set
        # overflow), the CPU clusters take the rest.
        mapping = Mapping(
            [
                [GPU_ID] * models[0].num_layers,  # alexnet (250 MB)
                [GPU_ID] * models[1].num_layers,  # squeezenet (5 MB)
                [LITTLE_CPU_ID] * models[2].num_layers,  # mobilenet
                [BIG_CPU_ID] * models[3].num_layers,  # vgg13
                [BIG_CPU_ID] * models[4].num_layers,  # resnet34
            ]
        )
        result = sim.simulate(models, mapping)
        little = result.device_scale[LITTLE_CPU_ID]
        gpu = result.device_scale[GPU_ID]
        # LITTLE runs one DNN (no concurrency term) yet is more inflated
        # than the GPU running two: pressure dominates it.
        assert little > 1.5
        assert little > gpu

    def test_offered_rate_caps_light_models(self, sim):
        models = Workload.from_names(["mobilenet"]).models
        mapping = Mapping.single_device(models, GPU_ID)
        capped = sim.simulate(models, mapping)
        assert capped.rates[0] == pytest.approx(sim.config.offered_rate)
        free = sim.simulate(models, mapping, offered_rates=[1000.0])
        assert free.rates[0] > capped.rates[0]

    def test_offered_rates_validation(self, sim):
        models = Workload.from_names(["mobilenet"]).models
        mapping = Mapping.single_device(models, GPU_ID)
        with pytest.raises(ValueError, match="one rate per DNN"):
            sim.simulate(models, mapping, offered_rates=[1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            sim.simulate(models, mapping, offered_rates=[0.0])


class TestMeasurement:
    def test_measure_without_rng_is_exact(self, sim, heavy_models):
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        exact = sim.simulate(heavy_models, mapping)
        measured = sim.measure(heavy_models, mapping)
        assert np.array_equal(exact.rates, measured.rates)

    def test_measure_noise_is_seeded(self, sim, heavy_models):
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        first = sim.measure(heavy_models, mapping, rng=np.random.default_rng(5))
        second = sim.measure(heavy_models, mapping, rng=np.random.default_rng(5))
        third = sim.measure(heavy_models, mapping, rng=np.random.default_rng(6))
        assert np.array_equal(first.rates, second.rates)
        assert not np.array_equal(first.rates, third.rates)

    def test_measure_noise_is_small(self, sim, heavy_models):
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        exact = sim.simulate(heavy_models, mapping)
        measured = sim.measure(heavy_models, mapping, rng=np.random.default_rng(5))
        ratio = measured.rates / exact.rates
        assert (np.abs(ratio - 1.0) < 0.2).all()


class TestConfig:
    def test_custom_config_changes_behaviour(self, heavy_models):
        calm = BoardSimulator(
            hikey970(),
            config=SimConfig(
                concurrency_overhead={},
                default_concurrency_overhead=0.0,
                thrash_slope={},
                default_thrash_slope=0.0,
                residency_pressure={},
                default_residency_pressure=0.0,
                ram_thrash_slope=0.0,
                residency_thrash_floor=0.0,
                ram_squeeze=0.0,
            ),
        )
        mapping = Mapping.single_device(heavy_models, GPU_ID)
        result = calm.simulate(heavy_models, mapping)
        assert (result.device_scale == 1.0).all()

    def test_dram_bytes_scale_with_fraction(self):
        model = build_model("vgg16")
        assert model_dram_bytes(model, 0.5) == pytest.approx(
            2 * model_dram_bytes(model, 0.25)
        )
