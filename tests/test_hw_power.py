"""Power model tests: specs, reports and design-time energy accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    DevicePowerSpec,
    DeviceKind,
    PowerModel,
    hikey970,
    hikey970_power,
)
from repro.hw.power import DEFAULT_POWER_SPECS
from repro.models import build_model
from repro.sim import BoardSimulator, Mapping


@pytest.fixture(scope="module")
def power_model():
    return hikey970_power()


class TestDevicePowerSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DevicePowerSpec(idle_w=-0.1, active_w=1.0)
        with pytest.raises(ValueError):
            DevicePowerSpec(idle_w=2.0, active_w=1.0)

    def test_endpoints(self):
        spec = DevicePowerSpec(idle_w=0.5, active_w=4.5)
        assert spec.power_at(0.0) == 0.5
        assert spec.power_at(1.0) == 4.5
        assert spec.power_at(0.5) == pytest.approx(2.5)
        assert spec.dynamic_w == pytest.approx(4.0)

    def test_utilization_clamped(self):
        spec = DevicePowerSpec(idle_w=0.5, active_w=4.5)
        assert spec.power_at(-3.0) == 0.5
        assert spec.power_at(7.0) == 4.5

    @given(
        utilization_a=st.floats(0.0, 1.0),
        utilization_b=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_power_monotone_in_utilization(self, utilization_a, utilization_b):
        spec = DevicePowerSpec(idle_w=0.3, active_w=3.9)
        low, high = sorted((utilization_a, utilization_b))
        assert spec.power_at(low) <= spec.power_at(high) + 1e-12


class TestPowerModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(board_base_w=-1.0)

    def test_spec_fallback(self):
        model = PowerModel(specs={})
        assert model.spec_for("weird_kind") is model.default_spec

    def test_known_kind_specs(self, power_model):
        gpu = power_model.spec_for(DeviceKind.GPU)
        little = power_model.spec_for(DeviceKind.LITTLE_CPU)
        assert gpu == DEFAULT_POWER_SPECS[DeviceKind.GPU]
        # The GPU draws far more at full tilt than the LITTLE cluster.
        assert gpu.active_w > 3 * little.active_w

    def test_idle_floor(self, power_model, platform):
        expected = power_model.board_base_w + sum(
            power_model.spec_for(device.kind).idle_w
            for device in platform.devices
        )
        assert power_model.idle_floor_w(platform) == pytest.approx(expected)


class TestPowerReport:
    def test_report_bounds(self, power_model, platform, simulator, heavy_mix):
        mapping = Mapping.single_device(heavy_mix.models, 0)
        result = simulator.simulate(heavy_mix.models, mapping)
        report = power_model.report(platform, result)
        floor = power_model.idle_floor_w(platform)
        ceiling = power_model.board_base_w + sum(
            power_model.spec_for(device.kind).active_w
            for device in platform.devices
        )
        assert floor <= report.total_w <= ceiling
        assert report.per_device_w.shape == (platform.num_devices,)

    def test_energy_consistency(self, power_model, platform, simulator, heavy_mix):
        mapping = Mapping.single_device(heavy_mix.models, 0)
        result = simulator.simulate(heavy_mix.models, mapping)
        report = power_model.report(platform, result)
        assert report.energy_per_inference_j == pytest.approx(
            report.total_w / result.total_throughput
        )
        assert report.inferences_per_joule == pytest.approx(
            1.0 / report.energy_per_inference_j
        )
        assert report.energy_delay_product == pytest.approx(
            report.energy_per_inference_j / result.total_throughput
        )

    def test_zero_throughput_rejected(self, power_model):
        from repro.hw.power import PowerReport

        report = PowerReport(
            per_device_w=np.array([1.0]),
            board_base_w=1.0,
            total_throughput=0.0,
        )
        with pytest.raises(ValueError):
            _ = report.energy_per_inference_j

    def test_gpu_beats_little_on_energy_for_dense_work(
        self, power_model, platform, simulator
    ):
        """Per inference the GPU is cheaper than the LITTLE cluster on a
        dense conv network, despite its higher draw: it finishes so much
        faster that both dynamic and amortized static energy win."""
        models = [build_model("vgg16")]
        gpu = simulator.simulate(models, Mapping.single_device(models, 0))
        little = simulator.simulate(models, Mapping.single_device(models, 2))
        gpu_report = power_model.report(platform, gpu)
        little_report = power_model.report(platform, little)
        assert (
            gpu_report.energy_per_inference_j
            < little_report.energy_per_inference_j
        )


class TestDynamicEnergy:
    def test_manual_computation(self, power_model, platform, latency_table):
        model = build_model("alexnet")
        mapping = Mapping.single_device([model], 1)
        energy = power_model.dynamic_energy_per_inference(
            platform, [model], mapping, latency_table
        )
        spec = power_model.spec_for(platform.device(1).kind)
        expected = sum(
            latency_table.latency("alexnet", 1, layer_index)
            for layer_index in range(model.num_layers)
        ) * spec.dynamic_w
        assert energy == pytest.approx(expected)

    def test_mix_average(self, power_model, platform, latency_table):
        models = [build_model("alexnet"), build_model("squeezenet")]
        mapping = Mapping.single_device(models, 0)
        combined = power_model.dynamic_energy_per_inference(
            platform, models, mapping, latency_table
        )
        singles = [
            power_model.dynamic_energy_per_inference(
                platform, [model], Mapping.single_device([model], 0), latency_table
            )
            for model in models
        ]
        assert combined == pytest.approx(sum(singles) / 2)

    def test_validation(self, power_model, platform, latency_table):
        model = build_model("alexnet")
        with pytest.raises(ValueError):
            power_model.dynamic_energy_per_inference(
                platform, [], Mapping.single_device([model], 0), latency_table
            )
        with pytest.raises(ValueError):
            power_model.dynamic_energy_per_inference(
                platform,
                [model, model],
                Mapping.single_device([model], 0),
                latency_table,
            )

    def test_fast_device_lower_dynamic_energy_than_drawy_slow_one(
        self, power_model, platform, latency_table
    ):
        """GPU dynamic energy on VGG-16 undercuts big-CPU dynamic energy:
        the latency gap outweighs the draw gap."""
        model = build_model("vgg16")
        gpu = power_model.dynamic_energy_per_inference(
            platform, [model], Mapping.single_device([model], 0), latency_table
        )
        big = power_model.dynamic_energy_per_inference(
            platform, [model], Mapping.single_device([model], 1), latency_table
        )
        assert gpu < big
