"""SVG chart tests: well-formedness, geometry, and error handling."""

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import BarChart, LineChart, ScatterChart
from repro.evaluation.charts import _nice_ticks


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0
        assert ticks[-1] >= 10.0 - 1e-9

    def test_monotone(self):
        ticks = _nice_ticks(0.13, 0.87)
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == len(ticks)

    def test_degenerate_range(self):
        ticks = _nice_ticks(2.0, 2.0)
        assert len(ticks) >= 2

    @given(
        low=st.floats(-1e3, 1e3),
        span=st.floats(1e-3, 1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_brackets(self, low, span):
        ticks = _nice_ticks(low, low + span)
        assert len(ticks) >= 2
        assert ticks == sorted(ticks)


class TestLineChart:
    def test_renders_wellformed_svg(self):
        chart = LineChart("Loss", x_label="epoch", y_label="L1")
        chart.add_series("train", [1, 2, 3], [0.3, 0.2, 0.1])
        chart.add_series("val", [1, 2, 3], [0.35, 0.25, 0.15])
        root = _parse(chart.render())
        assert root.tag.endswith("svg")
        assert "train" in chart.render()
        assert "val" in chart.render()

    def test_higher_value_is_higher_on_screen(self):
        chart = LineChart("t")
        chart.add_series("s", [0, 1], [0.0, 1.0])
        assert chart._y_px(1.0, 0.0, 1.0) < chart._y_px(0.0, 0.0, 1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t").add_series("s", [1, 2], [1.0])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t").add_series("s", [], [])

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t").render()

    def test_title_is_escaped(self):
        chart = LineChart("a < b & c")
        chart.add_series("s", [0, 1], [0, 1])
        root = _parse(chart.render())  # would raise on bad escaping
        assert root is not None

    def test_save(self, tmp_path):
        chart = LineChart("t")
        chart.add_series("s", [0, 1], [0, 1])
        path = tmp_path / "chart.svg"
        chart.save(str(path))
        assert path.read_text().startswith("<svg")


class TestScatterChart:
    def test_points_and_reference_line(self):
        chart = ScatterChart("Fig1", x_label="set-up", y_label="normalized")
        chart.add_series("random splits", list(range(10)), [0.5 + 0.1 * i for i in range(10)])
        chart.add_reference_line("baseline", 1.0)
        svg = chart.render()
        root = _parse(svg)
        circles = [el for el in root.iter() if el.tag.endswith("circle")]
        assert len(circles) == 10
        assert "baseline" in svg

    def test_reference_line_extends_y_range(self):
        chart = ScatterChart("t")
        chart.add_series("s", [0, 1], [0.2, 0.4])
        chart.add_reference_line("ref", 5.0)
        assert "ref" in chart.render()


class TestBarChart:
    def test_grouped_bars(self):
        chart = BarChart(
            "Fig5a",
            categories=["mix-1", "mix-2", "Average"],
            y_label="normalized T",
        )
        chart.add_group("Baseline", [1.0, 1.0, 1.0])
        chart.add_group("OmniBoost", [1.5, 1.2, 1.35])
        svg = chart.render()
        root = _parse(svg)
        bars = [
            el
            for el in root.iter()
            if el.tag.endswith("rect") and el.get("fill") not in ("white",)
        ]
        # 2 groups x 3 categories of bars + 2 legend swatches
        assert len(bars) == 8

    def test_taller_value_taller_bar(self):
        chart = BarChart("t", categories=["a", "b"])
        chart.add_group("g", [1.0, 2.0])
        root = _parse(chart.render())
        bars = [
            el
            for el in root.iter()
            if el.tag.endswith("rect") and el.get("fill") != "white"
        ]
        data_bars = bars[:2]
        heights = [float(bar.get("height")) for bar in data_bars]
        assert heights[1] > heights[0]

    def test_group_length_validated(self):
        chart = BarChart("t", categories=["a", "b"])
        with pytest.raises(ValueError):
            chart.add_group("g", [1.0])

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            BarChart("t", categories=[])

    def test_render_without_groups_rejected(self):
        with pytest.raises(ValueError):
            BarChart("t", categories=["a"]).render()


class TestGeometryValidation:
    def test_too_small_figure_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t", width=10)
        with pytest.raises(ValueError):
            LineChart("t", height=10)
