"""Unit tests for repro.hw.device."""

import pytest

from repro.hw import DEFAULT_EFFICIENCY, Device, DeviceKind


def make_device(**overrides):
    defaults = dict(
        device_id=0,
        name="test-gpu",
        kind=DeviceKind.GPU,
        peak_gflops=100.0,
        mem_bandwidth_gbs=10.0,
        launch_overhead_s=1e-5,
    )
    defaults.update(overrides)
    return Device(**defaults)


class TestDeviceValidation:
    def test_negative_device_id_rejected(self):
        with pytest.raises(ValueError, match="device_id"):
            make_device(device_id=-1)

    def test_zero_peak_rejected(self):
        with pytest.raises(ValueError, match="peak_gflops"):
            make_device(peak_gflops=0.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="mem_bandwidth_gbs"):
            make_device(mem_bandwidth_gbs=-1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="launch_overhead_s"):
            make_device(launch_overhead_s=-1e-6)

    def test_zero_overhead_allowed(self):
        device = make_device(launch_overhead_s=0.0)
        assert device.launch_overhead_s == 0.0


class TestDeviceUnits:
    def test_peak_flops_unit_conversion(self):
        assert make_device(peak_gflops=2.0).peak_flops == 2.0e9

    def test_mem_bandwidth_unit_conversion(self):
        assert make_device(mem_bandwidth_gbs=3.0).mem_bandwidth == 3.0e9


class TestEfficiency:
    def test_default_table_attached_by_kind(self):
        device = make_device(kind=DeviceKind.GPU)
        assert device.efficiency == DEFAULT_EFFICIENCY[DeviceKind.GPU]

    def test_explicit_table_preserved(self):
        device = make_device(efficiency={"conv": 0.9})
        assert device.efficiency_for("conv") == 0.9

    def test_unknown_kind_falls_back_to_default_value(self):
        device = make_device(kind="weird-dsp", efficiency={"conv": 0.5})
        assert device.efficiency_for("pool") == device.default_efficiency

    def test_gpu_depthwise_penalty_present(self):
        """Mobile GPUs are known-poor at depthwise convs; the default
        table must encode that asymmetry (it drives MobileNet mapping
        decisions)."""
        gpu = make_device(kind=DeviceKind.GPU)
        big = make_device(kind=DeviceKind.BIG_CPU)
        assert gpu.efficiency_for("depthwise_conv") < big.efficiency_for(
            "depthwise_conv"
        )

    def test_effective_flops_scales_peak(self):
        device = make_device(efficiency={"conv": 0.5}, peak_gflops=100.0)
        assert device.effective_flops("conv") == pytest.approx(50e9)


class TestDeviceKind:
    def test_all_lists_every_kind(self):
        assert DeviceKind.GPU in DeviceKind.ALL
        assert DeviceKind.BIG_CPU in DeviceKind.ALL
        assert DeviceKind.LITTLE_CPU in DeviceKind.ALL
        assert DeviceKind.NPU in DeviceKind.ALL

    def test_default_efficiency_covers_all_kinds(self):
        for kind in DeviceKind.ALL:
            assert kind in DEFAULT_EFFICIENCY
