"""Conv/pool/norm functional tests: references and gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.tensor import set_default_dtype


@pytest.fixture(autouse=True)
def float64_mode():
    set_default_dtype(np.float64)
    yield
    set_default_dtype(np.float32)


RNG = np.random.default_rng(7)


def naive_conv2d(x, w, b, stride, padding):
    """Straightforward quadruple-loop reference convolution."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w_in + 2 * padding - kw) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for image in range(n):
        for out_channel in range(c_out):
            for row in range(out_h):
                for col in range(out_w):
                    patch = x_padded[
                        image,
                        :,
                        row * stride : row * stride + kh,
                        col * stride : col * stride + kw,
                    ]
                    out[image, out_channel, row, col] = (
                        patch * w[out_channel]
                    ).sum()
            if b is not None:
                out[image, out_channel] += b[out_channel]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive_reference(self, stride, padding):
        x = RNG.normal(size=(2, 3, 7, 6))
        w = RNG.normal(size=(4, 3, 3, 3))
        b = RNG.normal(size=4)
        out = F.conv2d(
            Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding
        )
        expected = naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-9, atol=1e-9)

    def test_no_bias(self):
        x = RNG.normal(size=(1, 2, 5, 5))
        w = RNG.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1)
        expected = naive_conv2d(x, w, None, 1, 1)
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-9, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="NCHW"):
            F.conv2d(Tensor(np.ones((3, 5, 5))), Tensor(np.ones((2, 3, 3, 3))))
        with pytest.raises(ValueError, match="OIHW"):
            F.conv2d(Tensor(np.ones((1, 3, 5, 5))), Tensor(np.ones((2, 3, 3))))
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(Tensor(np.ones((1, 4, 5, 5))), Tensor(np.ones((2, 3, 3, 3))))


class TestConvBackward:
    def _numeric(self, forward, array, eps=1e-6):
        grad = np.zeros_like(array)
        flat = array.reshape(-1)
        grad_flat = grad.reshape(-1)
        for index in range(flat.size):
            saved = flat[index]
            flat[index] = saved + eps
            upper = forward()
            flat[index] = saved - eps
            lower = forward()
            flat[index] = saved
            grad_flat[index] = (upper - lower) / (2 * eps)
        return grad

    def test_input_weight_bias_gradients(self):
        x = RNG.normal(size=(2, 2, 5, 5))
        w = RNG.normal(size=(3, 2, 3, 3))
        b = RNG.normal(size=3)
        tx, tw, tb = (
            Tensor(x.copy(), requires_grad=True),
            Tensor(w.copy(), requires_grad=True),
            Tensor(b.copy(), requires_grad=True),
        )
        out = F.conv2d(tx, tw, tb, stride=2, padding=1)
        (out * out).sum().backward()

        def loss():
            result = naive_conv2d(tx.data, tw.data, tb.data, 2, 1)
            return (result * result).sum()

        np.testing.assert_allclose(tx.grad, self._numeric(loss, tx.data), atol=1e-4)
        np.testing.assert_allclose(tw.grad, self._numeric(loss, tw.data), atol=1e-4)
        np.testing.assert_allclose(tb.grad, self._numeric(loss, tb.data), atol=1e-4)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel_size=2)
        np.testing.assert_allclose(
            out.numpy().reshape(2, 2), [[5.0, 7.0], [13.0, 15.0]]
        )

    def test_max_pool_backward_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad.reshape(4, 4), expected)

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel_size=2)
        np.testing.assert_allclose(
            out.numpy().reshape(2, 2), [[2.5, 4.5], [10.5, 12.5]]
        )

    def test_avg_pool_backward_spreads_evenly(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        x = RNG.normal(size=(2, 3, 4, 5))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(
            out.numpy()[..., 0, 0], x.mean(axis=(2, 3)), rtol=1e-9
        )

    def test_global_avg_pool_gradient(self):
        x = Tensor(np.ones((1, 2, 2, 2)), requires_grad=True)
        F.global_avg_pool2d(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 2, 2, 2), 0.25))


class TestPad:
    def test_pad_shape_and_content(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = F.pad2d(x, (1, 2))
        assert out.shape == (1, 1, 4, 6)
        assert out.numpy().sum() == 4.0

    def test_zero_pad_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert F.pad2d(x, (0, 0)) is x

    def test_pad_gradient_crops(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        F.pad2d(x, (1, 1)).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))


class TestBatchNorm:
    def test_normalizes_batch(self):
        x = Tensor(RNG.normal(2.0, 3.0, size=(8, 4, 5, 5)))
        weight = Tensor(np.ones(4), requires_grad=True)
        bias = Tensor(np.zeros(4), requires_grad=True)
        out, mean, var = F.batch_norm2d(x, weight, bias)
        normalized = out.numpy()
        assert abs(normalized.mean()) < 1e-7
        assert normalized.std() == pytest.approx(1.0, rel=1e-3)
        assert mean.shape == (4,)
        assert var.shape == (4,)

    def test_gradient_matches_numeric(self):
        x = RNG.normal(size=(4, 2, 3, 3))
        weight = RNG.uniform(0.5, 1.5, size=2)
        bias = RNG.normal(size=2)
        tx = Tensor(x.copy(), requires_grad=True)
        tw = Tensor(weight.copy(), requires_grad=True)
        tb = Tensor(bias.copy(), requires_grad=True)
        out, _, _ = F.batch_norm2d(tx, tw, tb)
        (out * out).sum().backward()

        def loss():
            axes = (0, 2, 3)
            mean = tx.data.mean(axis=axes, keepdims=True)
            var = ((tx.data - mean) ** 2).mean(axis=axes, keepdims=True)
            normalized = (tx.data - mean) / np.sqrt(var + 1e-5)
            result = normalized * tw.data.reshape(1, -1, 1, 1) + tb.data.reshape(
                1, -1, 1, 1
            )
            return (result * result).sum()

        checker = TestConvBackward()
        np.testing.assert_allclose(tx.grad, checker._numeric(loss, tx.data), atol=1e-4)
        np.testing.assert_allclose(tw.grad, checker._numeric(loss, tw.data), atol=1e-4)
        np.testing.assert_allclose(tb.grad, checker._numeric(loss, tb.data), atol=1e-4)

    def test_requires_nchw(self):
        with pytest.raises(ValueError, match="NCHW"):
            F.batch_norm2d(
                Tensor(np.ones((2, 3))), Tensor(np.ones(3)), Tensor(np.zeros(3))
            )


class TestLosses:
    def test_l1_loss_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        target = Tensor(np.array([[0.0, 4.0]]))
        assert F.l1_loss(pred, target).item() == pytest.approx(1.5)

    def test_mse_loss_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        target = Tensor(np.array([[0.0, 4.0]]))
        assert F.mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            F.l1_loss(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 3))))

    def test_l1_gradient(self):
        pred = Tensor(np.array([[2.0, -3.0]]), requires_grad=True)
        target = Tensor(np.array([[0.0, 0.0]]))
        F.l1_loss(pred, target).backward()
        np.testing.assert_allclose(pred.grad, [[0.5, -0.5]])

    def test_linear_matches_affine(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(2, 4))
        b = RNG.normal(size=2)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.numpy(), x @ w.T + b, rtol=1e-9)
