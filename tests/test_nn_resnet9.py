"""Estimator backbone tests, including the paper's parameter count."""

import numpy as np
import pytest

from repro.nn import Adam, ResNet9, Tensor, l1_loss, no_grad
from repro.nn.resnet9 import ConvBlock, ResidualBlock


class TestArchitecture:
    def test_exact_paper_parameter_count(self):
        """Paper IV-B: 'only 20,044 trainable parameters'."""
        assert ResNet9().num_parameters() == 20044

    def test_output_shape(self):
        net = ResNet9()
        out = net(Tensor(np.zeros((5, 3, 35, 11))))
        assert out.shape == (5, 3)

    def test_no_output_activation(self):
        """Regression head: outputs are unconstrained reals (paper IV-B),
        so a strongly negative input regime must be able to produce
        negative outputs."""
        rng = np.random.default_rng(0)
        net = ResNet9(rng=rng)
        out = net(Tensor(rng.normal(-5.0, 1.0, size=(64, 3, 35, 11))))
        values = out.numpy()
        assert values.min() < 0 or values.max() > 1  # not squashed to [0,1]

    def test_custom_geometry(self):
        net = ResNet9(in_channels=2, out_features=4)
        out = net(Tensor(np.zeros((1, 2, 20, 8))))
        assert out.shape == (1, 4)

    def test_conv_block_pool_halves(self):
        block = ConvBlock(3, 8, pool=True)
        out = block(Tensor(np.zeros((1, 3, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_residual_block_preserves_shape(self):
        block = ResidualBlock(8)
        out = block(Tensor(np.zeros((2, 8, 6, 6))))
        assert out.shape == (2, 8, 6, 6)

    def test_residual_skip_contributes(self):
        """Zeroing the residual branch must leave the identity path."""
        block = ResidualBlock(4)
        for conv_block in (block.block1, block.block2):
            conv_block.conv.weight.data[...] = 0.0
            conv_block.conv.bias.data[...] = 0.0
            conv_block.norm.weight.data[...] = 0.0
        x = np.random.default_rng(0).normal(size=(1, 4, 5, 5))
        block.eval()
        out = block(Tensor(x))
        np.testing.assert_allclose(out.numpy(), x, atol=1e-6)

    def test_deterministic_build(self):
        a = ResNet9(rng=np.random.default_rng(3))
        b = ResNet9(rng=np.random.default_rng(3))
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestTrainability:
    def test_overfits_small_batch(self):
        """The backbone must be able to memorize 8 samples quickly --
        a standard sanity check that gradients flow through every
        stage."""
        rng = np.random.default_rng(42)
        net = ResNet9(rng=rng)
        x = Tensor(rng.normal(size=(8, 3, 35, 11)))
        y = Tensor(rng.uniform(0, 1, size=(8, 3)))
        optimizer = Adam(net.parameters(), lr=3e-3)
        first_loss = None
        for _ in range(60):
            out = net(x)
            loss = l1_loss(out, y)
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.25

    def test_eval_mode_inference_under_no_grad(self):
        net = ResNet9()
        net.eval()
        with no_grad():
            out = net(Tensor(np.zeros((2, 3, 35, 11))))
        assert not out.requires_grad

    def test_gradients_reach_every_parameter(self):
        rng = np.random.default_rng(1)
        net = ResNet9(rng=rng)
        out = net(Tensor(rng.normal(size=(2, 3, 35, 11))))
        l1_loss(out, Tensor(np.zeros((2, 3)))).backward()
        for name, param in net.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"
            assert np.abs(param.grad).sum() > 0, f"zero gradient for {name}"
