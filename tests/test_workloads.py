"""Workload and generator tests, including mapping-validity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import MODEL_NAMES, build_model
from repro.workloads import Workload, WorkloadGenerator, random_contiguous_mapping


class TestWorkload:
    def test_from_names(self):
        workload = Workload.from_names(["alexnet", "vgg19"])
        assert workload.num_dnns == 2
        assert workload.model_names == ("alexnet", "vgg19")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Workload([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Workload.from_names(["alexnet", "alexnet"])

    def test_total_layers(self):
        workload = Workload.from_names(["alexnet", "vgg19"])
        assert workload.total_layers == 8 + 19

    def test_total_weight_bytes(self):
        workload = Workload.from_names(["alexnet", "squeezenet"])
        expected = (
            build_model("alexnet").total_weight_bytes
            + build_model("squeezenet").total_weight_bytes
        )
        assert workload.total_weight_bytes == expected

    def test_iteration_and_indexing(self):
        workload = Workload.from_names(["alexnet", "vgg19"])
        assert len(workload) == 2
        assert workload[1].name == "vgg19"
        assert [model.name for model in workload] == ["alexnet", "vgg19"]

    def test_default_name(self):
        workload = Workload.from_names(["alexnet", "vgg19"])
        assert workload.name == "alexnet+vgg19"


class TestRandomContiguousMapping:
    def test_valid_for_mix(self):
        models = Workload.from_names(["alexnet", "vgg19", "mobilenet"]).models
        rng = np.random.default_rng(0)
        for _ in range(50):
            mapping = random_contiguous_mapping(models, 3, rng)
            mapping.validate(models, 3)
            assert mapping.max_stages <= 3

    def test_max_stages_parameter(self):
        models = Workload.from_names(["vgg19"]).models
        rng = np.random.default_rng(0)
        for _ in range(30):
            mapping = random_contiguous_mapping(models, 3, rng, max_stages=2)
            assert mapping.max_stages <= 2

    def test_single_device_platform(self):
        models = Workload.from_names(["alexnet"]).models
        mapping = random_contiguous_mapping(models, 1, np.random.default_rng(0))
        assert set(mapping.assignments[0]) == {0}

    def test_stages_use_distinct_devices(self):
        models = Workload.from_names(["vgg19"]).models
        rng = np.random.default_rng(7)
        for _ in range(30):
            mapping = random_contiguous_mapping(models, 3, rng)
            stages = mapping.stages(0)
            devices = [stage.device_id for stage in stages]
            assert len(devices) == len(set(devices))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_always_valid_property(self, seed):
        models = Workload.from_names(["resnet101", "squeezenet"]).models
        rng = np.random.default_rng(seed)
        mapping = random_contiguous_mapping(models, 3, rng)
        mapping.validate(models, 3)
        assert 1 <= mapping.max_stages <= 3


class TestWorkloadGenerator:
    def test_mix_sizes_respected(self):
        generator = WorkloadGenerator(seed=0)
        for size in (1, 3, 5):
            assert generator.sample_mix(size).num_dnns == size

    def test_invalid_size_rejected(self):
        generator = WorkloadGenerator(seed=0)
        with pytest.raises(ValueError):
            generator.sample_mix(0)
        with pytest.raises(ValueError):
            generator.sample_mix(len(MODEL_NAMES) + 1)

    def test_weight_budget_respected(self):
        generator = WorkloadGenerator(seed=0, max_total_weight_bytes=1.2e9)
        for _ in range(30):
            mix = generator.sample_mix(4)
            assert mix.total_weight_bytes <= 1.2e9

    def test_impossible_budget_raises(self):
        generator = WorkloadGenerator(seed=0, max_total_weight_bytes=1.0)
        with pytest.raises(RuntimeError, match="feasible"):
            generator.sample_mix(3)

    def test_determinism_by_seed(self):
        names_a = [WorkloadGenerator(seed=9).sample_mix(4).model_names for _ in (1,)]
        names_b = [WorkloadGenerator(seed=9).sample_mix(4).model_names for _ in (1,)]
        assert names_a == names_b

    def test_sample_mixes_sizes_from_menu(self):
        generator = WorkloadGenerator(seed=3)
        mixes = generator.sample_mixes(20, sizes=(2, 3))
        assert all(mix.num_dnns in (2, 3) for mix in mixes)

    def test_training_pairs_align(self):
        generator = WorkloadGenerator(seed=3)
        pairs = generator.sample_training_pairs(10)
        for workload, mapping in pairs:
            mapping.validate(workload.models, 3)

    def test_empty_model_pool_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            WorkloadGenerator(model_names=[])

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ValueError, match="num_devices"):
            WorkloadGenerator(num_devices=0)
