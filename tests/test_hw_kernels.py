"""Unit tests for the roofline kernel cost model."""

import pytest

from repro.hw import Device, DeviceKind, KernelCostModel, KernelSpec, KERNEL_KINDS


@pytest.fixture()
def device():
    return Device(
        device_id=0,
        name="dev",
        kind=DeviceKind.BIG_CPU,
        peak_gflops=10.0,  # 1e10 flops/s
        mem_bandwidth_gbs=1.0,  # 1e9 bytes/s
        launch_overhead_s=1e-6,
        efficiency={kind: 1.0 for kind in KERNEL_KINDS},
    )


@pytest.fixture()
def model():
    return KernelCostModel()


class TestKernelSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel kind"):
            KernelSpec(kind="fft", flops=1, bytes_read=1, bytes_written=1)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            KernelSpec(kind="conv", flops=-1, bytes_read=0, bytes_written=0)

    def test_bytes_moved_sums_read_and_write(self):
        kernel = KernelSpec(kind="conv", flops=0, bytes_read=30, bytes_written=12)
        assert kernel.bytes_moved == 42

    def test_arithmetic_intensity(self):
        kernel = KernelSpec(kind="conv", flops=84, bytes_read=30, bytes_written=12)
        assert kernel.arithmetic_intensity == pytest.approx(2.0)

    def test_arithmetic_intensity_zero_traffic(self):
        kernel = KernelSpec(kind="conv", flops=10, bytes_read=0, bytes_written=0)
        assert kernel.arithmetic_intensity == 0.0


class TestRoofline:
    def test_compute_bound_kernel(self, device, model):
        # 1e10 flops at 1e10 flops/s = 1s compute; tiny memory traffic.
        kernel = KernelSpec(kind="conv", flops=1e10, bytes_read=10, bytes_written=0)
        assert model.latency(kernel, device) == pytest.approx(1.0 + 1e-6)
        assert model.is_compute_bound(kernel, device)

    def test_memory_bound_kernel(self, device, model):
        # 1e9 bytes at 1e9 B/s = 1s memory; negligible flops.
        kernel = KernelSpec(kind="pool", flops=10, bytes_read=1e9, bytes_written=0)
        assert model.latency(kernel, device) == pytest.approx(1.0 + 1e-6)
        assert not model.is_compute_bound(kernel, device)

    def test_max_not_sum(self, device, model):
        kernel = KernelSpec(
            kind="conv", flops=1e10, bytes_read=1e9, bytes_written=0
        )
        # Both sides equal 1s; roofline takes the max (1s), not 2s.
        assert model.latency(kernel, device) == pytest.approx(1.0 + 1e-6)

    def test_overhead_floor(self, device, model):
        kernel = KernelSpec(kind="conv", flops=0, bytes_read=0, bytes_written=0)
        assert model.latency(kernel, device) == pytest.approx(1e-6)

    def test_efficiency_scales_latency(self, model):
        slow = Device(
            device_id=0,
            name="slow",
            kind=DeviceKind.GPU,
            peak_gflops=10.0,
            mem_bandwidth_gbs=1.0,
            launch_overhead_s=0.0,
            efficiency={"conv": 0.5},
        )
        kernel = KernelSpec(kind="conv", flops=1e10, bytes_read=0, bytes_written=0)
        assert model.latency(kernel, slow) == pytest.approx(2.0)

    def test_latency_monotone_in_flops(self, device, model):
        small = KernelSpec(kind="conv", flops=1e9, bytes_read=0, bytes_written=0)
        large = KernelSpec(kind="conv", flops=2e9, bytes_read=0, bytes_written=0)
        assert model.latency(large, device) > model.latency(small, device)
