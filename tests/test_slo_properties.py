"""Property and regression tests for the SLO enforcement layer.

Three guarantees are pinned here:

1. **Admission monotonicity** — a mix the controller does not admit at
   load L is not admitted at any load >= L, for *any* scorer, because
   the load discount is strictly decreasing and the floor never
   depends on load.
2. **Preemption safety** — :func:`repro.slo.preemption_victims` can
   never name an equal-or-higher-priority resident, by construction,
   over randomized resident sets.
3. **Enforcement-off identity** — a service with ``slo=None`` (and an
   observe-only policy, modulo annotations) serves decisions
   byte-identical to the pre-SLO stack: same mappings, same scores,
   same modes, same count-based stats.  Only host wall-clock fields
   (``reschedule_time_s``, per-priority waits) may differ, per the
   repo's count-based-gates doctrine.

The acceptance gate rides at the bottom: on the ``slo-squeeze``
scenario, enforcement (admission + priority preemption) must *raise*
the p95 SLO-attainment ratio of the high-priority stream relative to
the observe-only replay of the same trace at the same floor.  All
gates compare seeded estimator scores and event counts — never
wall-clock.
"""

import dataclasses

import numpy as np
import pytest

from repro import SystemBuilder
from repro.core import MCTSConfig, SLOTarget
from repro.engine import SchedulingEngine
from repro.fleet import Cluster, FleetService
from repro.slo import (
    AdmissionController,
    SLOPolicy,
    VERDICTS,
    make_estimator_scorer,
    preemption_victims,
)
from repro.workloads import Workload, churn_scenario

_ESTIMATOR = {"num_training_samples": 40, "epochs": 3}
_MCTS = MCTSConfig(budget=40, seed=13)
_LIGHT = ("mobilenet", "squeezenet", "alexnet", "resnet34")


def _builder() -> SystemBuilder:
    return (
        SystemBuilder(seed=29)
        .with_estimator(**_ESTIMATOR)
        .with_mcts_config(_MCTS)
    )


def _stable(record):
    """A record with host wall-clock and SLO annotations neutralized."""
    return dataclasses.replace(
        record, reschedule_time_s=0.0, slo_ratio=None, slo_attained=None
    )


def _stable_stats(stats):
    """Stats with wall-clock accumulators neutralized (keys retained)."""
    return dataclasses.replace(
        stats,
        wait_s_by_priority={
            priority: 0.0 for priority in stats.wait_s_by_priority
        },
    )


# ----------------------------------------------------------------------
# Contracts: SLOTarget / SLOPolicy value semantics
# ----------------------------------------------------------------------
class TestSLOTarget:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError, match="floor and/or"):
            SLOTarget()

    def test_nonpositive_bounds_rejected(self):
        with pytest.raises(ValueError):
            SLOTarget(min_throughput=0.0)
        with pytest.raises(ValueError):
            SLOTarget(min_throughput=1.0, max_latency_s=-0.1)

    def test_ratio_and_attainment(self):
        target = SLOTarget(min_throughput=2.0)
        assert target.ratio(3.0) == pytest.approx(1.5)
        assert target.attained(2.0, latency_s=100.0)
        assert not target.attained(1.99, latency_s=0.0)

    def test_latency_bound(self):
        target = SLOTarget(min_throughput=1.0, max_latency_s=0.05)
        assert target.attained(1.0, latency_s=0.04)
        assert not target.attained(1.0, latency_s=0.06)
        latency_only = SLOTarget(max_latency_s=0.05)
        assert latency_only.ratio(10.0) is None
        assert latency_only.attained(0.0, latency_s=0.01)


class TestSLOPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="load_penalty"):
            SLOPolicy(load_penalty=-0.1)
        with pytest.raises(ValueError, match="queue_capacity"):
            SLOPolicy(queue_capacity=-1)

    def test_enforced_switches(self):
        assert SLOPolicy().enforced
        assert SLOPolicy(admission=False).enforced
        assert not SLOPolicy(admission=False, preemption=False).enforced

    def test_request_floor_wins(self):
        policy = SLOPolicy(target=SLOTarget(min_throughput=2.0))
        assert policy.floor_for(None) == pytest.approx(2.0)
        assert policy.floor_for(
            SLOTarget(min_throughput=5.0)
        ) == pytest.approx(5.0)
        assert policy.floor_for(
            SLOTarget(max_latency_s=0.1)
        ) == pytest.approx(2.0)
        assert SLOPolicy().floor_for(None) is None


# ----------------------------------------------------------------------
# Property 1: admission is monotone in load
# ----------------------------------------------------------------------
class TestAdmissionMonotonicity:
    def _controller(self, base: float, **policy_knobs):
        policy = SLOPolicy(
            target=SLOTarget(min_throughput=1.0), **policy_knobs
        )
        return AdmissionController(policy, scorer=lambda workload: base)

    @pytest.mark.parametrize("base", [0.4, 0.9, 1.0, 1.3, 2.0, 6.0])
    @pytest.mark.parametrize("penalty", [0.0, 0.25, 1.0, 3.0])
    def test_non_admission_is_absorbing_in_load(self, base, penalty):
        """Rejected/queued at load L => never admitted at any L' >= L."""
        controller = self._controller(base, load_penalty=penalty)
        turned_away = False
        for load in range(0, 25):
            verdict = controller.evaluate(("alexnet",), load=load).verdict
            assert verdict in VERDICTS
            if verdict != "admit":
                turned_away = True
            assert not (turned_away and verdict == "admit"), (
                f"admitted at load {load} after a non-admit verdict "
                f"(base={base}, penalty={penalty})"
            )

    def test_reject_is_load_independent(self):
        """base < floor rejects at *every* load — waiting cannot help."""
        controller = self._controller(0.5)
        for load in range(0, 10):
            assert (
                controller.evaluate(("alexnet",), load=load).verdict
                == "reject"
            )

    def test_queue_crossing_is_exact(self):
        """The verdict flips exactly where base/(1+p*L) crosses the floor."""
        controller = self._controller(2.0, load_penalty=0.25)
        for load in range(0, 10):
            effective = 2.0 / (1.0 + 0.25 * load)
            decision = controller.evaluate(("alexnet",), load=load)
            assert decision.effective_score == pytest.approx(effective)
            expected = "admit" if effective >= 1.0 else "queue"
            assert decision.verdict == expected

    def test_capacity_headroom_is_monotone_too(self):
        controller = self._controller(100.0)
        verdicts = [
            controller.evaluate(
                ("alexnet", "vgg16"), load=load, capacity=5
            ).verdict
            for load in range(0, 8)
        ]
        assert verdicts == ["admit"] * 4 + ["queue"] * 4

    def test_base_scores_cached_per_signature(self):
        calls = []
        policy = SLOPolicy(target=SLOTarget(min_throughput=0.1))
        controller = AdmissionController(
            policy, scorer=lambda w: calls.append(1) or 5.0
        )
        for _ in range(4):
            controller.evaluate(("alexnet", "vgg16"), load=0)
            controller.evaluate(("vgg16", "alexnet"), load=3)
        assert len(calls) == 1, "permuted duplicates must share one score"

    def test_no_floor_degrades_to_capacity_only(self):
        controller = AdmissionController(SLOPolicy(), scorer=None)
        assert controller.evaluate(("x",), load=99).verdict == "admit"
        assert (
            controller.evaluate(("x",), load=5, capacity=5).verdict
            == "queue"
        )


# ----------------------------------------------------------------------
# Property 2: preemption never touches equal-or-higher priority
# ----------------------------------------------------------------------
class TestPreemptionSafety:
    def test_victims_strictly_lower_priority(self):
        rng = np.random.default_rng(42)
        for _ in range(100):
            count = int(rng.integers(0, 9))
            residents = {
                f"t{i}": (f"m{i}", int(rng.integers(0, 5)))
                for i in range(count)
            }
            incoming = int(rng.integers(0, 6))
            for _, _, priority in preemption_victims(residents, incoming):
                assert priority < incoming

    def test_eviction_order(self):
        """Lowest priority first; newest arrival first within a level."""
        residents = {
            "old-low": ("vgg19", 0),
            "mid": ("resnet50", 1),
            "new-low": ("alexnet", 0),
        }
        victims = preemption_victims(residents, incoming_priority=2)
        assert [tenant for tenant, _, _ in victims] == [
            "new-low",
            "old-low",
            "mid",
        ]

    def test_no_victims_among_equals_or_betters(self):
        residents = {"a": ("vgg19", 2), "b": ("alexnet", 3)}
        assert preemption_victims(residents, incoming_priority=2) == []
        assert preemption_victims(residents, incoming_priority=0) == []
        assert preemption_victims({}, incoming_priority=5) == []


# ----------------------------------------------------------------------
# Property 3 + acceptance: replay identities and the enforcement gate
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def slo_builder():
    return _builder()


@pytest.fixture(scope="module")
def squeeze_trace():
    return churn_scenario("slo-squeeze", seed=0).truncated(18)


@pytest.fixture(scope="module")
def light_floor(slo_builder):
    """A floor 60% under the best light model's unloaded admission score.

    Derived adaptively from the trained scorer (not pinned), so the
    gate tracks the estimator instead of a magic constant: the best
    light model admits on an empty board, queues under anchor load,
    and preemption has priority-0 victims to evict.
    """
    engine = SchedulingEngine(slo_builder)
    scorer = make_estimator_scorer(engine.scheduler)
    best = max(
        scorer(Workload.from_names([name])) for name in _LIGHT
    )
    assert best > 0, "estimator gives no light model a positive score"
    return 0.6 * float(best)


class TestEnforcementOffIdentity:
    def test_observe_only_matches_plain_engine(
        self, slo_builder, squeeze_trace, light_floor
    ):
        plain = SchedulingEngine(slo_builder)
        observed = SchedulingEngine(slo_builder)
        report_plain = plain.run_trace(squeeze_trace)
        report_obs = observed.run_trace(
            squeeze_trace,
            slo=SLOPolicy(
                target=SLOTarget(min_throughput=light_floor),
                admission=False,
                preemption=False,
            ),
        )
        assert [_stable(r) for r in report_obs.records] == [
            _stable(r) for r in report_plain.records
        ]
        # Observe-only annotates every admitted arrival; plain none.
        assert report_obs.slo_records
        assert not report_plain.slo_records
        assert not any(r.action for r in report_obs.records)
        # Count-based stats identical; only the SLO accounting differs.
        stats_plain = _stable_stats(plain.stats())
        stats_obs = _stable_stats(observed.stats())
        neutral = dict(
            slo_requests=0, slo_attained=0, slo_ratios_by_priority={}
        )
        assert dataclasses.replace(
            stats_obs, **neutral
        ) == dataclasses.replace(stats_plain, **neutral)
        assert stats_plain.slo_requests == 0
        assert stats_obs.slo_requests == len(report_obs.slo_records)

    def test_slo_none_leaves_no_trace_of_the_layer(
        self, slo_builder, squeeze_trace
    ):
        engine = SchedulingEngine(slo_builder)
        report = engine.run_trace(squeeze_trace)
        assert all(r.action == "" for r in report.records)
        assert all(r.slo_ratio is None for r in report.records)
        assert "slo" not in report.to_dict()
        stats = engine.stats()
        assert stats.slo_requests == 0
        assert stats.rejections_by_priority == {}
        assert stats.preemptions_by_priority == {}
        assert stats.queued_by_priority == {}

    def test_fleet_enforcement_off_byte_identity(self):
        def fleet(slo=None):
            cluster = Cluster.from_presets(
                {"edge0": "hikey970", "edge1": "hikey970_with_npu"},
                seed=0,
                estimator=_ESTIMATOR,
                mcts_config=_MCTS,
            )
            return FleetService(cluster, slo=slo)

        trace = churn_scenario("priority-storm", seed=0).truncated(8)
        plain = fleet()
        observed = fleet(
            SLOPolicy(
                target=SLOTarget(min_throughput=0.05),
                admission=False,
                preemption=False,
            )
        )
        report_plain = plain.run_trace(trace)
        report_obs = observed.run_trace(trace)
        assert [_stable(r) for r in report_obs.records] == [
            _stable(r) for r in report_plain.records
        ]
        combined_plain = _stable_stats(plain.stats().combined)
        combined_obs = _stable_stats(observed.stats().combined)
        neutral = dict(
            slo_requests=0, slo_attained=0, slo_ratios_by_priority={}
        )
        assert dataclasses.replace(
            combined_obs, **neutral
        ) == dataclasses.replace(combined_plain, **neutral)
        assert combined_plain.slo_requests == 0
        assert combined_obs.slo_requests > 0


class TestEnforcementAcceptance:
    """The PR's acceptance gate, on seeded scores and event counts."""

    def test_slo_squeeze_p95_improves_for_high_priority(
        self, slo_builder, squeeze_trace, light_floor
    ):
        policy = SLOPolicy(target=SLOTarget(min_throughput=light_floor))
        observed = SchedulingEngine(slo_builder)
        report_obs = observed.run_trace(
            squeeze_trace,
            slo=dataclasses.replace(
                policy, admission=False, preemption=False
            ),
        )
        enforced = SchedulingEngine(slo_builder)
        report_enf = enforced.run_trace(squeeze_trace, slo=policy)

        p95_obs = report_obs.slo_attainment_percentiles(priority=2)[95]
        p2_enf = report_enf.slo_attainment_percentiles(priority=2)
        assert p2_enf, "no high-priority arrival was admitted"
        assert p2_enf[95] > p95_obs, (
            f"enforcement did not raise p95 attainment for priority 2: "
            f"{p2_enf[95]:.3f} vs observe-only {p95_obs:.3f}"
        )
        # Enforcement actually acted (not a vacuous identical replay).
        actions = {r.action for r in report_enf.records if r.action}
        assert actions & {"preempted", "queued", "rejected"}
        # Safety in vivo: only strictly-lower-priority residents were
        # evicted, and the high-priority stream lost nobody.
        stats = enforced.stats()
        assert all(
            priority < 2 for priority in stats.preemptions_by_priority
        )

    def test_enforced_report_accounts_every_trace_event(
        self, slo_builder, squeeze_trace, light_floor
    ):
        """One record per trace event, plus one per enforcement extra
        (evictions, dequeues) — nothing silently vanishes."""
        engine = SchedulingEngine(slo_builder)
        report = engine.run_trace(
            squeeze_trace,
            slo=SLOPolicy(target=SLOTarget(min_throughput=light_floor)),
        )
        extras = sum(
            1
            for r in report.records
            if r.action in ("preempted", "dequeued")
        )
        assert len(report.records) == len(squeeze_trace) + extras
        assert [r.index for r in report.records] == list(
            range(len(report.records))
        )
