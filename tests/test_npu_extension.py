"""Four-device generality tests on the NPU-extended HiKey970.

The paper's framework claims extensibility; these tests prove every
layer of the reproduction generalizes past three computing components:
the environment grows a fourth action, the embedding tensor a fourth
channel, the estimator a fourth input/output, and schedulers produce
valid 4-device mappings end to end.
"""

import numpy as np
import pytest

from repro import build_system
from repro.core import MCTSConfig, SchedulingEnv
from repro.hw import NPU_ID, DeviceKind, hikey970_with_npu
from repro.sim import BoardSimulator, KernelProfiler, Mapping
from repro.workloads import Workload


@pytest.fixture(scope="module")
def npu_platform():
    return hikey970_with_npu()


class TestPlatform:
    def test_four_devices(self, npu_platform):
        assert npu_platform.num_devices == 4
        assert npu_platform.device(NPU_ID).kind == DeviceKind.NPU

    def test_npu_fast_on_conv_slow_to_reach(self, npu_platform):
        simulator = BoardSimulator(npu_platform)
        from repro.models import build_model

        vgg = build_model("vgg16")
        conv_index = 4  # a mid-network conv layer
        npu_latency = simulator.layer_latency(vgg, conv_index, NPU_ID)
        gpu_latency = simulator.layer_latency(vgg, conv_index, 0)
        assert npu_latency < gpu_latency  # raw compute advantage
        # ...but the hop onto it costs milliseconds.
        assert npu_platform.transfer_time(0, NPU_ID, 1 << 20) > 3e-3


class TestFourDeviceStack:
    def test_profiler_and_embedding(self, npu_platform):
        from repro.estimator import EmbeddingSpace
        from repro.models import MODEL_NAMES, build_all_models

        table = KernelProfiler(npu_platform).profile(build_all_models(), seed=1)
        embedding = EmbeddingSpace(table, MODEL_NAMES)
        assert embedding.input_shape == (4, 35, 11)

    def test_environment_has_four_actions(self, npu_platform):
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 4)
        state = env.reset()
        assert env.legal_actions(state) == [0, 1, 2, 3]
        assert env.stage_cap == 4

    def test_simulator_accepts_npu_mappings(self, npu_platform):
        simulator = BoardSimulator(npu_platform)
        mix = Workload.from_names(["vgg16", "mobilenet"])
        mapping = Mapping(
            [[NPU_ID] * 16, [0] * 28]
        )
        result = simulator.simulate(mix.models, mapping)
        assert (result.rates > 0).all()
        assert result.device_utilization.shape == (4,)

    def test_end_to_end_scheduling_on_four_devices(self, npu_platform):
        system = build_system(
            platform=npu_platform,
            num_training_samples=80,
            epochs=5,
            mcts_config=MCTSConfig(budget=80, seed=2),
            seed=11,
        )
        assert system.estimator.network.stem.conv.in_channels == 4
        mix = Workload.from_names(["vgg19", "resnet50", "alexnet"])
        decision = system.omniboost.schedule(mix)
        decision.mapping.validate(mix.models, 4)
        assert decision.mapping.max_stages <= 4
        result = system.simulator.measure(mix.models, decision.mapping)
        assert result.average_throughput > 0
