"""Scheduling environment tests (states, actions, win/lose rules)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SchedulingEnv
from repro.workloads import Workload


@pytest.fixture()
def small_env():
    return SchedulingEnv(Workload.from_names(["alexnet", "squeezenet"]), 3)


class TestEpisodeStructure:
    def test_reset_is_empty(self, small_env):
        state = small_env.reset()
        assert small_env.decisions_made(state) == 0
        assert small_env.current_dnn(state) == 0
        assert not small_env.is_terminal(state)

    def test_total_decisions_is_total_layers(self, small_env):
        assert small_env.total_decisions == 8 + 18

    def test_dnns_scheduled_in_order(self, small_env):
        state = small_env.reset()
        for _ in range(8):  # all of alexnet
            state = small_env.step(state, 0)
        assert small_env.current_dnn(state) == 1

    def test_complete_episode_reaches_win(self, small_env):
        state = small_env.reset()
        for _ in range(small_env.total_decisions):
            state = small_env.step(state, 1)
        assert small_env.is_complete(state)
        assert small_env.is_terminal(state)
        assert not small_env.is_losing(state)
        assert small_env.legal_actions(state) == []

    def test_step_after_completion_rejected(self, small_env):
        state = small_env.reset()
        for _ in range(small_env.total_decisions):
            state = small_env.step(state, 0)
        with pytest.raises(RuntimeError, match="completed"):
            small_env.step(state, 0)

    def test_action_range_checked(self, small_env):
        with pytest.raises(ValueError, match="out of range"):
            small_env.step(small_env.reset(), 3)

    def test_mapping_decoding(self, small_env):
        state = small_env.reset()
        for _ in range(small_env.total_decisions):
            state = small_env.step(state, 2)
        mapping = small_env.mapping(state)
        mapping.validate(small_env.workload.models, 3)
        assert mapping.devices_used() == (2,)

    def test_mapping_requires_completion(self, small_env):
        with pytest.raises(ValueError, match="incomplete"):
            small_env.mapping(small_env.reset())


class TestStageCapMasking:
    def test_actions_unrestricted_below_cap(self, small_env):
        state = small_env.reset()
        state = small_env.step(state, 0)
        assert small_env.legal_actions(state) == [0, 1, 2]

    def test_at_cap_only_continuation_legal(self):
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3, stage_cap=2)
        state = env.reset()
        state = env.step(state, 0)
        state = env.step(state, 1)  # second stage: at cap
        assert env.legal_actions(state) == [1]

    def test_masked_env_never_loses(self):
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3, stage_cap=2)
        state = env.reset()
        import numpy as np

        rng = np.random.default_rng(0)
        while not env.is_terminal(state):
            actions = env.legal_actions(state)
            state = env.step(state, actions[rng.integers(len(actions))])
        assert env.is_complete(state)
        assert env.mapping(state).max_stages <= 2

    def test_illegal_step_rejected_when_masked(self):
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3, stage_cap=1)
        state = env.step(env.reset(), 0)
        with pytest.raises(ValueError, match="illegal"):
            env.step(state, 1)


class TestLosingStates:
    def test_unmasked_env_reaches_losing_state(self):
        env = SchedulingEnv(
            Workload.from_names(["alexnet"]), 3, stage_cap=2, mask_illegal=False
        )
        state = env.reset()
        for action in (0, 1, 0):  # three stages > cap of 2
            state = env.step(state, action)
        assert env.is_losing(state)
        assert env.is_terminal(state)
        assert env.legal_actions(state) == []

    def test_default_cap_is_device_count(self):
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3)
        assert env.stage_cap == 3

    def test_invalid_configuration_rejected(self):
        workload = Workload.from_names(["alexnet"])
        with pytest.raises(ValueError):
            SchedulingEnv(workload, 0)
        with pytest.raises(ValueError):
            SchedulingEnv(workload, 3, stage_cap=0)


class TestStateProperties:
    @given(st.lists(st.integers(0, 2), min_size=26, max_size=26))
    @settings(max_examples=60, deadline=None)
    def test_unmasked_episode_always_terminates_classified(self, actions):
        env = SchedulingEnv(
            Workload.from_names(["alexnet", "squeezenet"]), 3, mask_illegal=False
        )
        state = env.reset()
        for action in actions:
            if env.is_terminal(state):
                break
            state = env.step(state, action)
        if env.is_complete(state):
            mapping = env.mapping(state)
            mapping.validate(env.workload.models, 3)
        # A terminal state is either complete or losing, never both.
        if env.is_terminal(state):
            assert env.is_complete(state) != env.is_losing(state)
