"""Autograd engine tests: every op against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.tensor import is_grad_enabled, set_default_dtype


@pytest.fixture(autouse=True)
def float64_mode():
    """Finite-difference checks need double precision."""
    set_default_dtype(np.float64)
    yield
    set_default_dtype(np.float32)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn()
        flat[index] = original - eps
        lower = fn()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build, data, tolerance=1e-5):
    """Compare autograd and numeric gradients of scalar-valued ``build``."""
    tensor = Tensor(data.copy(), requires_grad=True)
    out = build(tensor)
    out.backward()
    expected = numeric_grad(lambda: build(Tensor(tensor.data)).item(), tensor.data)
    np.testing.assert_allclose(tensor.grad, expected, rtol=tolerance, atol=tolerance)


RNG = np.random.default_rng(0)


class TestGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 3.0).sum(), RNG.normal(size=(4, 3)))

    def test_add_broadcast(self):
        other = Tensor(RNG.normal(size=(1, 3)))
        check_gradient(lambda t: (t + other).sum(), RNG.normal(size=(4, 3)))

    def test_broadcast_gradient_reduces_to_parent(self):
        small = Tensor(RNG.normal(size=(1, 3)), requires_grad=True)
        big = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        (small + big).sum().backward()
        assert small.grad.shape == (1, 3)
        np.testing.assert_allclose(small.grad, np.full((1, 3), 4.0))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: (t * other).sum(), RNG.normal(size=(4, 3)))

    def test_div(self):
        other = Tensor(RNG.uniform(0.5, 2.0, size=(4, 3)))
        check_gradient(lambda t: (t / other).sum(), RNG.normal(size=(4, 3)))

    def test_rdiv(self):
        check_gradient(lambda t: (2.0 / t).sum(), RNG.uniform(0.5, 2.0, size=(3, 3)))

    def test_neg_sub(self):
        other = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda t: (other - t).sum(), RNG.normal(size=(4,)))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), RNG.uniform(0.5, 2.0, size=(5,)))

    def test_matmul(self):
        other = Tensor(RNG.normal(size=(3, 2)))
        check_gradient(lambda t: (t @ other).sum(), RNG.normal(size=(4, 3)))

    def test_matmul_right_operand(self):
        left = RNG.normal(size=(4, 3))

        def build(t):
            return (Tensor(left) @ t).sum()

        check_gradient(build, RNG.normal(size=(3, 2)))

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_gradient(
            lambda t: (t.sum(axis=0, keepdims=True) ** 2).sum(),
            RNG.normal(size=(3, 4)),
        )

    def test_mean(self):
        check_gradient(lambda t: (t.mean() * 7.0), RNG.normal(size=(4, 5)))

    def test_abs(self):
        # Keep away from the kink at zero.
        data = RNG.uniform(0.5, 2.0, size=(4,)) * RNG.choice([-1.0, 1.0], size=(4,))
        check_gradient(lambda t: t.abs().sum(), data)

    def test_relu(self):
        data = RNG.uniform(0.5, 2.0, size=(6,)) * RNG.choice([-1.0, 1.0], size=(6,))
        check_gradient(lambda t: t.relu().sum(), data)

    def test_gelu(self):
        check_gradient(lambda t: t.gelu().sum(), RNG.normal(size=(8,)))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), RNG.normal(size=(6,)))

    def test_exp_log(self):
        check_gradient(
            lambda t: (t.exp() + t.log()).sum(), RNG.uniform(0.5, 2.0, size=(5,))
        )

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt().sum(), RNG.uniform(0.5, 4.0, size=(5,)))

    def test_reshape(self):
        check_gradient(
            lambda t: (t.reshape(2, 6) ** 2).sum(), RNG.normal(size=(3, 4))
        )

    def test_transpose(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: (t.transpose() * other).sum(), RNG.normal(size=(3, 4)))

    def test_max(self):
        data = np.array([1.0, 5.0, 2.0])
        tensor = Tensor(data, requires_grad=True)
        tensor.max().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 0.0])

    def test_chained_expression(self):
        other = Tensor(RNG.normal(size=(3, 3)))
        check_gradient(
            lambda t: ((t @ other).gelu() * 2.0 + t).abs().mean(),
            RNG.normal(size=(3, 3)),
        )

    def test_gradient_accumulates_over_reuse(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        (tensor * tensor).backward()  # d(x^2)/dx = 2x = 4
        np.testing.assert_allclose(tensor.grad, [4.0])


class TestMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError, match="requires no grad"):
            Tensor(np.ones(3)).backward()

    def test_backward_requires_scalar_without_seed(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (tensor * 2).backward()

    def test_backward_seed_shape_checked(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        out = tensor * 2
        with pytest.raises(ValueError, match="shape"):
            out.backward(np.ones(4))

    def test_no_grad_disables_tape(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = tensor * 2
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach_breaks_graph(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        assert not tensor.detach().requires_grad

    def test_zero_grad(self):
        tensor = Tensor(np.ones(1), requires_grad=True)
        (tensor * 2).backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None

    def test_item_requires_single_element(self):
        with pytest.raises(ValueError, match="one-element"):
            Tensor(np.ones(3)).item()

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            Tensor(np.ones((2, 2, 2))) @ Tensor(np.ones((2, 2)))

    def test_default_dtype_switch(self):
        set_default_dtype(np.float32)
        assert Tensor(np.ones(2)).data.dtype == np.float32
        set_default_dtype(np.float64)
        assert Tensor(np.ones(2)).data.dtype == np.float64
        with pytest.raises(ValueError, match="unsupported"):
            set_default_dtype(np.int32)

    def test_flatten_batch(self):
        tensor = Tensor(np.ones((4, 2, 3)))
        assert tensor.flatten_batch().shape == (4, 6)
