"""Invariant tests on the degenerate homogeneous platform.

With identical devices there is no heterogeneity to exploit, so clean
symmetry properties must hold -- cheap, strong checks on the contention
solver and the scale model.
"""

import itertools

import numpy as np
import pytest

from repro.hw import symmetric_board
from repro.sim import BoardSimulator, Mapping
from repro.workloads import Workload


@pytest.fixture(scope="module")
def board():
    return BoardSimulator(symmetric_board(3))


@pytest.fixture(scope="module")
def mix():
    return Workload.from_names(["alexnet", "vgg16", "squeezenet"])


class TestSymmetry:
    def test_single_device_choice_is_irrelevant(self, board, mix):
        """All-on-device-k gives identical results for every k."""
        throughputs = [
            board.simulate(mix.models, Mapping.single_device(mix.models, k))
            .average_throughput
            for k in range(3)
        ]
        assert max(throughputs) == pytest.approx(min(throughputs), rel=1e-9)

    def test_device_permutation_invariance(self, board, mix):
        """Renaming devices in a mapping cannot change throughput."""
        base_rows = [
            [0] * mix.models[0].num_layers,
            [1] * mix.models[1].num_layers,
            [2] * mix.models[2].num_layers,
        ]
        reference = board.simulate(mix.models, Mapping(base_rows)).average_throughput
        for permutation in itertools.permutations(range(3)):
            rows = [[permutation[d] for d in row] for row in base_rows]
            permuted = board.simulate(mix.models, Mapping(rows)).average_throughput
            assert permuted == pytest.approx(reference, rel=1e-9)

    def test_spreading_beats_piling(self, board, mix):
        """On a homogeneous board, one-DNN-per-device dominates
        everything-on-one-device (pure load balancing)."""
        piled = board.simulate(
            mix.models, Mapping.single_device(mix.models, 0)
        ).average_throughput
        spread = board.simulate(
            mix.models,
            Mapping(
                [
                    [0] * mix.models[0].num_layers,
                    [1] * mix.models[1].num_layers,
                    [2] * mix.models[2].num_layers,
                ]
            ),
        ).average_throughput
        assert spread > piled

    def test_rates_identical_for_identical_models(self, board):
        """Two copies of the same architecture (registered under
        different names) mapped symmetrically must earn equal rates."""
        mix = Workload.from_names(["vgg16", "vgg19"])  # close cousins
        mapping = Mapping(
            [[0] * mix.models[0].num_layers, [1] * mix.models[1].num_layers]
        )
        result = board.simulate(mix.models, mapping)
        # vgg16 is strictly lighter than vgg19, so on identical private
        # devices it must be at least as fast.
        assert result.rates[0] >= result.rates[1]


class TestScaleModelOnSymmetricBoard:
    def test_no_thrash_for_small_weights(self, board):
        mix = Workload.from_names(["squeezenet", "mobilenet"])
        mapping = Mapping.single_device(mix.models, 0)
        result = board.simulate(mix.models, mapping)
        # Only the concurrency term applies: 1 + beta * (2 - 1).
        expected = 1.0 + board.config.overhead_for("big_cpu")
        assert result.device_scale[0] == pytest.approx(expected)
        assert result.device_scale[1] == 1.0

    def test_utilization_conservation(self, board, mix):
        mapping = Mapping(
            [
                [0] * mix.models[0].num_layers,
                [1] * mix.models[1].num_layers,
                [2] * mix.models[2].num_layers,
            ]
        )
        result = board.simulate(mix.models, mapping)
        assert result.device_throughput.sum() == pytest.approx(
            result.rates.sum(), rel=1e-9
        )
        assert (result.device_utilization <= 1.0 + 1e-9).all()
