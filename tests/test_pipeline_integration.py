"""End-to-end integration tests over the assembled system.

These reproduce the paper's qualitative claims at reduced scale (small
training runs, reduced MCTS budgets) so the suite stays fast; the full
paper-scale numbers live in the benchmarks.
"""

import numpy as np
import pytest

from repro import build_system, Workload
from repro.core import MCTSConfig
from repro.baselines import GAConfig
from repro.evaluation import EvaluationHarness, RuntimeCostModel


@pytest.fixture(scope="module")
def system():
    return build_system(
        num_training_samples=250,
        epochs=25,
        mcts_config=MCTSConfig(budget=250, seed=5),
        ga_config=GAConfig(population_size=12, generations=10, seed=5),
        seed=42,
    )


@pytest.fixture(scope="module")
def heavy_mix():
    return Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])


class TestSystemAssembly:
    def test_all_components_present(self, system):
        assert system.platform.num_devices == 3
        assert system.estimator.num_parameters == 20044
        assert system.training_history is not None
        assert len(system.schedulers) == 4

    def test_training_history_shows_convergence(self, system):
        history = system.training_history
        assert history.final_val_loss < history.val_losses[0]

    def test_scheduler_names_match_paper_comparison(self, system):
        names = [scheduler.name for scheduler in system.schedulers]
        assert names == ["Baseline", "MOSAIC", "GA", "OmniBoost"]

    def test_untrained_build(self):
        system = build_system(train=False)
        assert system.training_history is None

    def test_build_system_shim_warns_deprecation(self):
        """The eager shim must point callers at the staged builder."""
        with pytest.warns(DeprecationWarning, match="SystemBuilder"):
            build_system(train=False)


class TestPaperClaims:
    def test_omniboost_beats_baseline_on_heavy_mix(self, system, heavy_mix):
        """The core claim: on a heavy 4-DNN mix, OmniBoost's mapping
        yields substantially higher measured throughput than GPU-only."""
        baseline = system.baseline.schedule(heavy_mix)
        omniboost = system.omniboost.schedule(heavy_mix)
        baseline_throughput = system.simulator.simulate(
            heavy_mix.models, baseline.mapping
        ).average_throughput
        omni_throughput = system.simulator.simulate(
            heavy_mix.models, omniboost.mapping
        ).average_throughput
        assert omni_throughput > 1.5 * baseline_throughput

    def test_omniboost_spreads_heavy_workload(self, system, heavy_mix):
        """Where the baseline saturates the GPU, OmniBoost must use all
        three computing components (the Fig. 2 narrative)."""
        decision = system.omniboost.schedule(heavy_mix)
        assert len(decision.mapping.devices_used()) >= 2

    def test_harness_comparison_runs_end_to_end(self, system):
        harness = EvaluationHarness(
            system.simulator, system.schedulers, baseline_name="Baseline"
        )
        mixes = [
            Workload.from_names(["vgg19", "resnet50", "mobilenet"]),
            Workload.from_names(["alexnet", "inception_v3", "squeezenet"]),
        ]
        table = harness.evaluate_mixes(mixes)
        assert table.average("Baseline") == pytest.approx(1.0)
        # Every scheduler produced measurable mappings on every mix.
        for name in table.scheduler_names:
            assert all(value > 0 for value in table.normalized_series(name))

    def test_runtime_ordering_matches_section_vb(self, system, heavy_mix):
        """GA decision cost >> OmniBoost >> MOSAIC > baseline."""
        cost_model = RuntimeCostModel()
        times = {}
        for scheduler in system.schedulers:
            decision = scheduler.schedule(heavy_mix)
            times[scheduler.name] = cost_model.decision_time(decision.cost)
        assert times["GA"] > times["OmniBoost"] > times["MOSAIC"]
        assert times["Baseline"] == 0.0

    def test_estimator_ranking_beats_chance(self, system):
        """Spearman correlation between estimator reward and measured
        throughput over random mappings must be clearly positive.

        Measured over several representative mixes rather than one: a
        single 60-draw correlation on one mix is a seed lottery at
        this reduced training scale (the heaviest 4-DNN mix sits near
        chance for a 250-sample estimator on *most* mapping draws —
        the RAM-squeeze regime needs the paper-scale campaign the
        benchmarks train).  The claim gated here is the mean ranking
        skill across mixes, plus no systematic anti-correlation on
        any single one.
        """
        from repro.workloads.generator import random_contiguous_mapping

        mixes = [
            Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"]),
            Workload.from_names(["vgg16", "resnet34", "mobilenet", "squeezenet"]),
            Workload.from_names(["vgg19", "resnet101", "mobilenet"]),
            Workload.from_names(["alexnet", "inception_v3", "vgg13", "resnet50"]),
        ]
        rhos = []
        for mix in mixes:
            rng = np.random.default_rng(0)
            mappings = [
                random_contiguous_mapping(mix.models, 3, rng)
                for _ in range(60)
            ]
            measured = np.array(
                [
                    system.simulator.simulate(
                        mix.models, mapping
                    ).average_throughput
                    for mapping in mappings
                ]
            )
            predicted = np.array(
                [system.estimator.reward(mix, mapping) for mapping in mappings]
            )
            measured_ranks = np.argsort(np.argsort(measured))
            predicted_ranks = np.argsort(np.argsort(predicted))
            rhos.append(np.corrcoef(measured_ranks, predicted_ranks)[0, 1])
        assert np.mean(rhos) > 0.3
        assert all(rho > -0.2 for rho in rhos)

    def test_five_dnn_mix_schedulable(self, system):
        mix = Workload.from_names(
            ["alexnet", "squeezenet", "mobilenet", "vgg13", "resnet34"]
        )
        decision = system.omniboost.schedule(mix)
        result = system.simulator.simulate(mix.models, decision.mapping)
        assert result.average_throughput > 0


class TestReservedSystemIntegration:
    """build_system with embedding-capacity reservation, end to end."""

    @pytest.fixture(scope="class")
    def reserved_system(self):
        from repro import build_system

        return build_system(
            num_training_samples=60,
            epochs=4,
            reserve_layers=64,
            reserve_models=13,
            seed=9,
        )

    def test_geometry_reserved(self, reserved_system):
        assert reserved_system.embedding.input_shape == (3, 64, 13)

    def test_schedules_normally(self, reserved_system):
        mix = Workload.from_names(["alexnet", "mobilenet"])
        decision = reserved_system.omniboost.schedule(mix)
        decision.mapping.validate(mix.models, 3)

    def test_extension_flow_end_to_end(self, reserved_system):
        """Profile a never-seen model, extend, schedule a mix with it —
        no retraining, geometry intact."""
        from repro.models import build_model
        from repro.sim import KernelProfiler

        table = KernelProfiler(reserved_system.platform).profile(
            [build_model("resnet18")], seed=55
        )
        extended = reserved_system.embedding.extend(table, ["resnet18"])
        assert extended.input_shape == reserved_system.embedding.input_shape

        estimator = reserved_system.estimator.with_embedding(extended)
        from repro.core import MCTSConfig, OmniBoostScheduler

        scheduler = OmniBoostScheduler(
            estimator, config=MCTSConfig(budget=60, seed=3)
        )
        mix = Workload.from_names(["resnet18", "vgg19"])
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
        measured = reserved_system.simulator.simulate(
            mix.models, decision.mapping
        )
        assert measured.average_throughput > 0
