"""Online subsystem tests: traces, churn scenarios, warm starts, run_trace.

The acceptance bar for the warm-start machinery (pinned here as
property tests): seeded ``search_steps(initial_mapping=...)`` at equal
budget is result-identical to a cold search when seeded with that
search's own elite, and never returns a worse estimated reward than
its seed.
"""

import json

import numpy as np
import pytest

from repro.builder import SystemBuilder
from repro.core import MCTSConfig, MonteCarloTreeSearch, SchedulingEnv
from repro.core.scheduler import OmniBoostScheduler
from repro.evaluation import TimelineReport, write_timeline_json
from repro.online import OnlineConfig, OnlineScheduler
from repro.service import SchedulingService
from repro.workloads import (
    ArrivalEvent,
    ArrivalTrace,
    TraceBuilder,
    TraceConfig,
    Workload,
    churn_scenario,
    churn_scenario_names,
    generate_trace,
)
from repro.workloads.generator import random_contiguous_mapping


def _hash_reward(mapping):
    return float(hash(mapping) % 1000) / 1000.0


# ----------------------------------------------------------------------
# ArrivalTrace / TraceBuilder
# ----------------------------------------------------------------------
class TestArrivalTrace:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ArrivalEvent(1.0, "teleport", "t0", "alexnet")
        with pytest.raises(ValueError):
            ArrivalEvent(-1.0, "arrival", "t0", "alexnet")

    def test_rejects_unordered_events(self):
        with pytest.raises(ValueError, match="time-ordered"):
            ArrivalTrace(
                [
                    ArrivalEvent(5.0, "arrival", "t0", "alexnet"),
                    ArrivalEvent(1.0, "arrival", "t1", "vgg19"),
                ]
            )

    def test_rejects_concurrent_duplicate_models(self):
        with pytest.raises(ValueError, match="already active"):
            ArrivalTrace(
                [
                    ArrivalEvent(0.0, "arrival", "t0", "alexnet"),
                    ArrivalEvent(1.0, "arrival", "t1", "alexnet"),
                ]
            )

    def test_rejects_unmatched_departure(self):
        with pytest.raises(ValueError, match="unknown tenant"):
            ArrivalTrace([ArrivalEvent(0.0, "departure", "ghost", "vgg19")])

    def test_rejects_departure_with_mismatched_model(self):
        """Regression: a hand-edited trace whose departure names a
        different model than the arrival must not pass validation (it
        would silently corrupt every downstream timeline record)."""
        with pytest.raises(ValueError, match="arrived as"):
            ArrivalTrace(
                [
                    ArrivalEvent(0.0, "arrival", "t0", "mobilenet"),
                    ArrivalEvent(1.0, "departure", "t0", "vgg19"),
                ]
            )

    def test_model_reusable_after_departure(self):
        trace = ArrivalTrace(
            [
                ArrivalEvent(0.0, "arrival", "t0", "alexnet"),
                ArrivalEvent(1.0, "departure", "t0", "alexnet"),
                ArrivalEvent(2.0, "arrival", "t1", "alexnet"),
            ]
        )
        assert len(trace) == 3

    def test_grouped_coalesces_identical_timestamps(self):
        builder = TraceBuilder()
        builder.add(0.0, "alexnet", lifetime_s=10.0)
        builder.add(5.0, "vgg19", lifetime_s=10.0)
        builder.add(5.0, "mobilenet", lifetime_s=10.0)
        trace = builder.finish()
        groups = trace.grouped()
        assert [len(group) for group in groups] == [1, 2, 1, 2]
        assert {event.model for event in groups[1]} == {"vgg19", "mobilenet"}

    def test_truncated(self):
        trace = churn_scenario("bursty")
        short = trace.truncated(5)
        assert len(short) == 5
        assert short.events == trace.events[:5]

    def test_json_roundtrip(self, tmp_path):
        trace = churn_scenario("diurnal", seed=3)
        path = str(tmp_path / "trace.json")
        trace.to_json(path)
        assert ArrivalTrace.from_json(path) == trace

    def test_builder_drops_resident_duplicates_and_over_cap(self):
        builder = TraceBuilder(max_concurrent=2)
        assert builder.add(0.0, "alexnet", lifetime_s=10.0) is not None
        assert builder.add(1.0, "alexnet", lifetime_s=10.0) is None
        assert builder.add(2.0, "vgg19", lifetime_s=10.0) is not None
        assert builder.add(3.0, "mobilenet", lifetime_s=10.0) is None


class TestGenerateTrace:
    CONFIG = TraceConfig(
        arrival_rate=0.5,
        min_lifetime_s=3.0,
        max_lifetime_s=12.0,
        horizon_s=50.0,
        max_concurrent=4,
        priorities=(0, 2),
        seed=11,
    )

    def test_deterministic(self):
        assert generate_trace(self.CONFIG) == generate_trace(self.CONFIG)

    def test_config_overrides(self):
        other = generate_trace(self.CONFIG, seed=12)
        assert other != generate_trace(self.CONFIG)

    def test_invariants(self):
        trace = generate_trace(self.CONFIG)
        arrivals = {
            e.tenant_id: e for e in trace if e.kind == "arrival"
        }
        departures = {
            e.tenant_id: e for e in trace if e.kind == "departure"
        }
        # Bounded lifetimes, and every tenant drains out.
        assert set(departures) == set(arrivals)
        for tenant_id, departure in departures.items():
            lifetime = departure.time_s - arrivals[tenant_id].time_s
            assert 3.0 <= lifetime <= 12.0
        assert all(e.priority in (0, 2) for e in trace)
        assert all(
            e.time_s < 50.0 for e in trace if e.kind == "arrival"
        )
        assert trace.max_concurrency <= 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            TraceConfig(min_lifetime_s=5.0, max_lifetime_s=1.0)
        with pytest.raises(ValueError):
            TraceConfig(priorities=(0,), priority_weights=(0.5, 0.5))


class TestChurnScenarios:
    def test_names(self):
        assert churn_scenario_names() == [
            "bursty",
            "diurnal",
            "priority-inversion",
            "steady-drain",
            "priority-storm",
            "slo-squeeze",
            "estimator-brownout",
        ]

    @pytest.mark.parametrize("name", churn_scenario_names())
    def test_nonempty_and_deterministic(self, name):
        trace = churn_scenario(name, seed=0)
        assert len(trace) > 0
        assert trace == churn_scenario(name, seed=0)
        assert trace.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            churn_scenario("tsunami")

    def test_bursty_has_simultaneous_arrivals(self):
        groups = churn_scenario("bursty").grouped()
        assert any(len(group) >= 2 for group in groups)

    def test_priority_inversion_mixes_priorities(self):
        priorities = {e.priority for e in churn_scenario("priority-inversion")}
        assert priorities == {0, 2}

    def test_steady_drain_ends_empty(self):
        trace = churn_scenario("steady-drain")
        arrivals = [e for e in trace if e.kind == "arrival"]
        assert all(e.time_s < 15.0 for e in arrivals)
        assert len(arrivals) == len(trace) - len(arrivals)  # all drain
        assert trace.events[-1].kind == "departure"


# ----------------------------------------------------------------------
# Warm-started search properties (synthetic deterministic rewards)
# ----------------------------------------------------------------------
class TestWarmStartSearch:
    @pytest.fixture()
    def env(self):
        return SchedulingEnv(Workload.from_names(["alexnet", "mobilenet"]), 3)

    def test_identity_with_cold_elite(self, env):
        """Seeding a search with the cold search's own elite at equal
        budget returns the identical mapping and reward (the budgeted
        loop is step-identical; the seed only raises the incumbent)."""
        for seed in (0, 7, 23):
            config = MCTSConfig(budget=60, seed=seed)
            cold = MonteCarloTreeSearch(env, _hash_reward, config).search()
            warm = MonteCarloTreeSearch(env, _hash_reward, config).search(
                initial_mapping=cold.mapping
            )
            assert warm.mapping == cold.mapping
            assert warm.reward == cold.reward

    def test_never_worse_than_seed(self, env, rng):
        """Even a tiny-budget warm search never returns a reward below
        its seed's — the seed settles as the incumbent first."""
        for trial in range(12):
            seed_mapping = random_contiguous_mapping(
                env.workload.models, 3, rng
            )
            result = MonteCarloTreeSearch(
                env, _hash_reward, MCTSConfig(budget=4, seed=trial)
            ).search(initial_mapping=seed_mapping)
            assert result.reward >= _hash_reward(seed_mapping)
            assert result.seed_reward == _hash_reward(seed_mapping)

    def test_seed_recorded_as_iteration_zero(self, env):
        result = MonteCarloTreeSearch(
            env, _hash_reward, MCTSConfig(budget=10)
        ).search(initial_mapping=Mapping_single(env))
        assert result.improvements[0][0] == 0
        assert result.seed_reward is not None

    def test_seed_counts_one_evaluation(self, env):
        config = MCTSConfig(budget=30, seed=3)
        cold = MonteCarloTreeSearch(env, _hash_reward, config).search()
        warm = MonteCarloTreeSearch(env, _hash_reward, config).search(
            initial_mapping=cold.mapping
        )
        assert warm.evaluations == cold.evaluations + 1

    def test_invalid_seed_rejected(self, env):
        from repro.sim import Mapping

        wrong_rows = Mapping([[0] * 8])  # one row for a two-DNN mix
        with pytest.raises(ValueError):
            MonteCarloTreeSearch(
                env, _hash_reward, MCTSConfig(budget=5)
            ).search(initial_mapping=wrong_rows)

    def test_stage_cap_breaching_seed_rejected(self):
        from repro.sim import Mapping

        env = SchedulingEnv(
            Workload.from_names(["alexnet"]), 3, stage_cap=1
        )
        zigzag = Mapping([[0, 1, 0, 1, 0, 1, 0, 1]])
        with pytest.raises(ValueError, match="stage"):
            MonteCarloTreeSearch(
                env, _hash_reward, MCTSConfig(budget=5)
            ).search(initial_mapping=zigzag)

    def test_patience_stops_early(self, env):
        result = MonteCarloTreeSearch(
            env, lambda m: 0.5, MCTSConfig(budget=300, seed=1)
        ).search(patience=40)
        # Constant rewards: the only improvement is the first
        # evaluation, so the loop stops at iteration 1 + patience.
        assert result.stopped_early
        assert result.iterations < 300
        assert result.iterations <= 41 + 1

    def test_patience_flushes_open_microbatch_before_stopping(self, env):
        """Regression: with a large ``eval_batch_size`` the improving
        rollouts sit unsettled in the open micro-batch; the patience
        check must flush it and keep going, not stop on the stale
        counter while the search is still improving every rollout."""
        calls = {}

        def improving(mapping):  # distinct leaves score ever higher
            calls.setdefault(mapping, len(calls))
            return float(calls[mapping])

        result = MonteCarloTreeSearch(
            env,
            improving,
            MCTSConfig(budget=300, seed=2, eval_batch_size=64),
        ).search(patience=40)
        assert result.iterations == 300
        assert not result.stopped_early

    def test_no_patience_runs_full_budget(self, env):
        result = MonteCarloTreeSearch(
            env, lambda m: 0.5, MCTSConfig(budget=50, seed=1)
        ).search()
        assert result.iterations == 50
        assert not result.stopped_early

    def test_patience_validation(self, env):
        with pytest.raises(ValueError):
            next(
                MonteCarloTreeSearch(
                    env, _hash_reward, MCTSConfig(budget=5)
                ).search_steps(patience=0)
            )


def Mapping_single(env):
    from repro.sim import Mapping

    return Mapping(
        [[0] * model.num_layers for model in env.workload.models]
    )


# ----------------------------------------------------------------------
# OnlineScheduler (real estimator, tiny budget)
# ----------------------------------------------------------------------
class TestOnlineScheduler:
    @pytest.fixture()
    def online(self, trained_estimator):
        scheduler = OmniBoostScheduler(
            trained_estimator, config=MCTSConfig(budget=25, seed=3)
        )
        return OnlineScheduler(
            scheduler, OnlineConfig(warm_patience=10, min_overlap=0.5)
        )

    def test_requires_omniboost(self):
        from repro.baselines.gpu_only import SingleDeviceScheduler

        with pytest.raises(TypeError):
            OnlineScheduler(SingleDeviceScheduler(0))

    def test_empty_board_plans_nothing(self, online):
        assert online.plan() is None

    def test_first_plan_is_cold(self, online):
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        outcome = online.plan()
        assert outcome.mode == "cold"
        assert outcome.seed_reward is None
        outcome.mapping.validate(outcome.workload.models, 3)

    def test_arrival_warm_starts_with_completion(self, online):
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        online.plan()
        online.apply(ArrivalEvent(1.0, "arrival", "t1", "mobilenet"))
        outcome = online.plan()
        assert outcome.mode == "warm"
        # One greedy completion pass: num_devices candidates.
        assert outcome.completion_evaluations == 3
        assert outcome.seed_reward is not None
        assert outcome.expected_score >= outcome.seed_reward
        outcome.mapping.validate(outcome.workload.models, 3)

    def test_departure_warm_starts_without_completion(self, online):
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        online.apply(ArrivalEvent(0.5, "arrival", "t1", "mobilenet"))
        online.plan()
        online.apply(ArrivalEvent(2.0, "departure", "t1", "mobilenet"))
        outcome = online.plan()
        assert outcome.mode == "warm"
        assert outcome.completion_evaluations == 0
        # Freed capacity was re-offered: the greedy refinement rounds
        # ran (at least the seed evaluation plus one neighbourhood).
        assert outcome.refinement_evaluations > 1
        assert outcome.expected_score >= outcome.seed_reward
        cost = outcome.decision.cost
        assert cost["refinement_evaluations"] == outcome.refinement_evaluations
        assert cost["estimator_queries"] >= outcome.refinement_evaluations

    def test_refinement_disabled(self, trained_estimator):
        scheduler = OmniBoostScheduler(
            trained_estimator, config=MCTSConfig(budget=20, seed=3)
        )
        online = OnlineScheduler(
            scheduler, OnlineConfig(warm_patience=10, refine_rounds=0)
        )
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        online.plan()
        online.apply(ArrivalEvent(0.5, "arrival", "t1", "mobilenet"))
        outcome = online.plan()
        assert outcome.mode == "warm"
        assert outcome.refinement_evaluations == 0

    def test_low_overlap_falls_back_to_cold(self, online):
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        online.plan()
        online.apply(ArrivalEvent(1.0, "departure", "t0", "alexnet"))
        online.apply(ArrivalEvent(2.0, "arrival", "t1", "mobilenet"))
        # No retained row covers the new mix: cold search.
        outcome = online.plan()
        assert outcome.mode == "cold"

    def test_warm_disabled_always_cold(self, trained_estimator):
        scheduler = OmniBoostScheduler(
            trained_estimator, config=MCTSConfig(budget=20, seed=3)
        )
        online = OnlineScheduler(scheduler, OnlineConfig(warm=False))
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        online.plan()
        online.apply(ArrivalEvent(1.0, "arrival", "t1", "mobilenet"))
        assert online.plan().mode == "cold"

    def test_apply_rejects_duplicates_and_unknowns(self, online):
        online.apply(ArrivalEvent(0.0, "arrival", "t0", "alexnet"))
        with pytest.raises(ValueError):
            online.apply(ArrivalEvent(1.0, "arrival", "t1", "alexnet"))
        with pytest.raises(KeyError):
            online.apply(ArrivalEvent(1.0, "departure", "ghost", "vgg19"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineConfig(warm_patience=0)
        with pytest.raises(ValueError):
            OnlineConfig(min_overlap=0.0)
        with pytest.raises(ValueError):
            OnlineConfig(warm_budget=0)
        with pytest.raises(ValueError):
            OnlineConfig(refine_rounds=-1)


# ----------------------------------------------------------------------
# SchedulingService.run_trace
# ----------------------------------------------------------------------
def _make_service() -> SchedulingService:
    builder = (
        SystemBuilder(seed=29)
        .with_estimator(num_training_samples=40, epochs=3)
        .with_mcts_config(MCTSConfig(budget=40, seed=13))
    )
    return SchedulingService(builder)


@pytest.fixture(scope="module")
def trace_run():
    service = _make_service()
    trace = churn_scenario("bursty", seed=1).truncated(10)
    report = service.run_trace(
        trace, online=OnlineConfig(warm_patience=15), record_mappings=True
    )
    return service, trace, report


class TestRunTrace:
    def test_one_record_per_event(self, trace_run):
        _, trace, report = trace_run
        assert len(report.records) == len(trace)
        for event, record in zip(trace, report.records):
            assert record.kind == event.kind
            assert record.tenant_id == event.tenant_id
            assert record.model == event.model
            assert record.priority == event.priority

    def test_warm_and_valid_mappings(self, trace_run):
        _, trace, report = trace_run
        modes = {record.mode for record in report.records}
        assert "warm" in modes
        for record in report.records:
            if record.mode == "idle":
                continue
            workload = Workload.from_names(record.active_models)
            from repro.sim import Mapping

            Mapping(list(record.mapping_rows)).validate(workload.models, 3)

    def test_burst_events_each_get_a_record(self, trace_run):
        _, trace, report = trace_run
        groups = trace.grouped()
        burst = next(group for group in groups if len(group) >= 2)
        times = [record.time_s for record in report.records]
        assert times.count(burst[0].time_s) == len(burst)

    def test_service_counters(self, trace_run):
        service, trace, report = trace_run
        stats = service.stats()
        assert stats.trace_events == len(trace)
        assert stats.trace_reschedules > 0
        assert stats.trace_warm_reschedules > 0
        assert stats.pooled_eval_batches > 0
        assert stats.estimator_queries > 0
        assert sum(stats.requests_by_priority.values()) == (
            stats.trace_reschedules
        )
        for priority, count in stats.requests_by_priority.items():
            assert stats.mean_wait_s(priority) > 0
            assert count > 0

    def test_report_aggregates(self, trace_run):
        _, _, report = trace_run
        assert report.warm_fraction > 0
        assert report.total_reschedule_time_s > 0
        assert report.makespan_s >= 0
        assert report.per_priority_latency()
        assert "warm" in report.summary()
        assert report.event_table()

    def test_json_roundtrip(self, trace_run, tmp_path):
        _, trace, report = trace_run
        path = str(tmp_path / "timeline.json")
        write_timeline_json(report, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert len(payload["events"]) == len(trace)
        assert payload["trace_name"] == "bursty"
        assert 0 <= payload["warm_fraction"] <= 1

    def test_run_trace_requires_omniboost(self):
        service = SchedulingService(SystemBuilder(seed=29), scheduler="baseline")
        with pytest.raises(TypeError):
            service.run_trace(churn_scenario("steady-drain").truncated(2))

    def test_drain_to_empty_records_idle(self):
        service = _make_service()
        trace = ArrivalTrace(
            [
                ArrivalEvent(0.0, "arrival", "t0", "alexnet"),
                ArrivalEvent(1.0, "departure", "t0", "alexnet"),
            ]
        )
        report = service.run_trace(trace)
        assert report.records[0].mode == "cold"
        assert report.records[1].mode == "idle"
        assert report.records[1].expected_score is None
