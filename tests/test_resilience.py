"""Resilience layer tests: fault plans, the degradation ladder, visibility.

The acceptance bar, pinned here as property tests: an empty
``FaultPlan`` is byte-identical to no policy at all, ladder stepping is
a deterministic function of its event sequence, no request is ever
dropped while degraded, and the static tier makes zero estimator
forwards per decision.
"""

import json
import time

import numpy as np
import pytest

from repro.builder import SystemBuilder
from repro.core import MCTSConfig
from repro.core.base import SLOTarget
from repro.estimator.model import EstimatorFault
from repro.evaluation import read_timeline_json, write_timeline_json
from repro.fleet.placement import reference_mapping
from repro.nn.inference import PlanExecutionError
from repro.online import OnlineConfig
from repro.resilience import (
    TIERS,
    DegradationLadder,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
)
from repro.service import SchedulingService
from repro.slo import AdmissionController, SLOPolicy
from repro.workloads import Workload, churn_scenario

_ESTIMATOR = {"num_training_samples": 40, "epochs": 3}
_MCTS = MCTSConfig(budget=20, seed=13)
_ONLINE = OnlineConfig(warm_patience=20)
_EVENTS = 4


def _builder(seed=29):
    return (
        SystemBuilder(seed=seed)
        .with_estimator(**_ESTIMATOR)
        .with_mcts_config(_MCTS)
    )


def _run(resilience, events=_EVENTS):
    """Replay the brownout drill with host timers pinned (byte-identity)."""
    trace = churn_scenario("estimator-brownout").truncated(events)
    service = SchedulingService(_builder(), resilience=resilience)
    real = time.perf_counter
    time.perf_counter = lambda: 0.0
    try:
        report = service.run_trace(trace, online=_ONLINE)
    finally:
        time.perf_counter = real
    return service, report


def _canonical(report):
    return json.dumps(report.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_single_call(self):
        spec = FaultSpec.parse("estimator-nan@3")
        assert (spec.kind, spec.at_call, spec.count) == ("estimator-nan", 3, 1)

    def test_parse_window(self):
        spec = FaultSpec.parse("plan-error@5x4")
        assert (spec.kind, spec.at_call, spec.count) == ("plan-error", 5, 4)
        assert spec.covers(5) and spec.covers(8) and not spec.covers(9)

    @pytest.mark.parametrize(
        "text", ["", "estimator-nan", "@3", "estimator-nan@", "estimator-nan@x",
                 "estimator-nan@3xq", "bogus@3"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)

    def test_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(kind="estimator-nan", at_call=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="estimator-nan", at_call=1, count=0)

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="cache-corrupt", at_call=7, count=2)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0

    def test_rejects_unordered_specs(self):
        with pytest.raises(ValueError, match="ordered"):
            FaultPlan(
                (
                    FaultSpec(kind="estimator-nan", at_call=5),
                    FaultSpec(kind="estimator-inf", at_call=2),
                )
            )

    def test_rejects_overlapping_windows_of_one_kind(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                (
                    FaultSpec(kind="estimator-nan", at_call=2, count=3),
                    FaultSpec(kind="estimator-nan", at_call=4),
                )
            )

    def test_distinct_kinds_may_interleave(self):
        plan = FaultPlan(
            (
                FaultSpec(kind="estimator-nan", at_call=2, count=3),
                FaultSpec(kind="plan-error", at_call=3),
            )
        )
        assert plan.active(("estimator-nan",), 4) == "estimator-nan"
        assert plan.active(("plan-error",), 3) == "plan-error"
        assert plan.active(("plan-error",), 4) is None

    def test_json_round_trip(self):
        plan = FaultPlan.single("estimator-inf", at_call=9, count=2)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestFaultInjector:
    def test_nan_window_corrupts_exactly_its_calls(self):
        injector = FaultInjector(FaultPlan.single("estimator-nan", 2, count=2))
        outputs = np.ones((3, 2))
        assert injector.on_forward(outputs, "compiled") is outputs
        assert np.isnan(injector.on_forward(outputs, "compiled")).all()
        assert np.isnan(injector.on_forward(outputs, "compiled")).all()
        assert injector.on_forward(outputs, "compiled") is outputs
        assert injector.faults_fired == 2
        # The original array is never mutated (arena-view safety).
        assert np.isfinite(outputs).all()

    def test_plan_error_fires_only_on_compiled_backend(self):
        injector = FaultInjector(FaultPlan.single("plan-error", 1, count=3))
        outputs = np.ones((1, 2))
        with pytest.raises(PlanExecutionError):
            injector.on_forward(outputs, "compiled")
        # Same window, interpreter backend: the fault is a no-op --
        # which is what lets the interpreter tier heal plan faults.
        assert injector.on_forward(outputs, "interpreter") is outputs
        assert injector.faults_fired == 1

    def test_cache_lookup_window(self):
        injector = FaultInjector(FaultPlan.single("cache-corrupt", 2))
        assert not injector.on_cache_lookup()
        assert injector.on_cache_lookup()
        assert not injector.on_cache_lookup()
        assert injector.faults_fired == 1

    def test_state_round_trip_resumes_counting(self):
        injector = FaultInjector(FaultPlan.single("estimator-nan", 3))
        injector.on_forward(np.ones(2), "compiled")
        injector.on_forward(np.ones(2), "compiled")
        resumed = FaultInjector(injector.plan)
        resumed.restore_state(injector.export_state())
        assert np.isnan(resumed.on_forward(np.ones(2), "compiled")).all()


# ----------------------------------------------------------------------
# DegradationLadder (pure counter properties)
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_step_down_after_threshold(self):
        ladder = DegradationLadder(ResiliencePolicy(step_down_after=2))
        assert ladder.begin_attempt() == "compiled"
        ladder.record_fault()
        assert ladder.tier == "compiled"
        ladder.record_fault()
        assert ladder.tier == "interpreter"
        assert ladder.step_downs == 1

    def test_probe_climbs_on_success(self):
        ladder = DegradationLadder(ResiliencePolicy(probe_after=2))
        ladder.record_fault()
        assert ladder.tier == "interpreter"
        for _ in range(2):
            assert ladder.begin_attempt() == "interpreter"
            ladder.complete_attempt()
        # Half-open: the next attempt probes the tier above.
        assert ladder.begin_attempt() == "compiled"
        assert ladder.probes == 1
        ladder.complete_attempt()
        assert ladder.tier == "compiled"
        assert ladder.step_ups == 1

    def test_failed_probe_closes_the_window(self):
        ladder = DegradationLadder(ResiliencePolicy(probe_after=1))
        ladder.record_fault()
        ladder.complete_attempt()
        assert ladder.begin_attempt() == "compiled"  # probing
        ladder.record_fault()
        assert ladder.tier == "interpreter"  # probe failed, no step
        assert ladder.step_downs == 1  # the original one only
        # Successes restart from zero after the failed probe.
        assert ladder.begin_attempt() == "interpreter"

    def test_bottom_rung_never_steps_below_greedy(self):
        ladder = DegradationLadder(ResiliencePolicy())
        for _ in range(10):
            ladder.record_fault()
        assert ladder.tier == TIERS[-1] == "greedy"

    def test_scripted_walk_is_deterministic(self):
        script = ["fault", "ok", "ok", "ok", "ok", "fault", "ok", "fault",
                  "ok", "ok", "ok", "ok", "ok", "ok", "ok"]

        def walk():
            ladder = DegradationLadder(ResiliencePolicy())
            states = []
            for step in script:
                ladder.begin_attempt()
                if step == "fault":
                    ladder.record_fault()
                else:
                    ladder.complete_attempt()
                states.append(tuple(sorted(ladder.export_state().items())))
            return states

        assert walk() == walk()

    def test_state_round_trip_is_behavior_identical(self):
        ladder = DegradationLadder(ResiliencePolicy())
        for _ in range(3):
            ladder.begin_attempt()
            ladder.record_fault()
        restored = DegradationLadder(ResiliencePolicy())
        restored.restore_state(ladder.export_state())
        for _ in range(6):
            assert restored.begin_attempt() == ladder.begin_attempt()
            restored.complete_attempt()
            ladder.complete_attempt()
        assert restored.export_state() == ladder.export_state()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="step_down_after"):
            ResiliencePolicy(step_down_after=0)
        with pytest.raises(ValueError, match="probe_after"):
            ResiliencePolicy(probe_after=0)


# ----------------------------------------------------------------------
# Replay properties (one estimator training per fixture, module scope)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def nan_run():
    policy = ResiliencePolicy(
        faults=FaultPlan.single("estimator-nan", at_call=2)
    )
    return _run(policy)


class TestResilientReplay:
    def test_empty_plan_is_byte_identical_to_no_policy(self):
        _, control = _run(None)
        service, report = _run(ResiliencePolicy())
        assert _canonical(report) == _canonical(control)
        stats = service.stats()
        assert stats.faults_detected == 0
        assert stats.degraded_decisions == 0

    def test_fault_degrades_without_dropping_requests(self, nan_run):
        service, report = nan_run
        stats = service.stats()
        assert stats.faults_detected >= 1
        assert stats.degraded_decisions > 0
        assert "interpreter" in stats.decisions_by_tier
        # No request dropped while degraded: every trace event has a
        # committed record, and every degraded record names its tier.
        assert len(report.records) == _EVENTS
        assert report.degraded_records
        assert all(r.tier in TIERS[1:] for r in report.degraded_records)

    def test_degradation_is_reported(self, nan_run):
        service, report = nan_run
        payload = report.to_dict()
        assert payload["resilience"]["degraded_decisions"] > 0
        assert "interpreter" in payload["resilience"]["decisions_by_tier"]
        assert "degraded decisions" in report.summary()

    def test_report_json_round_trip(self, nan_run, tmp_path):
        _, report = nan_run
        path = str(tmp_path / "timeline.json")
        write_timeline_json(report, path)
        loaded = read_timeline_json(path)
        assert _canonical(loaded) == _canonical(report)

    def test_replay_under_faults_is_deterministic(self, nan_run):
        _, first = nan_run
        policy = ResiliencePolicy(
            faults=FaultPlan.single("estimator-nan", at_call=2)
        )
        _, second = _run(policy)
        assert _canonical(second) == _canonical(first)


@pytest.fixture(scope="module")
def materialized_service():
    service = SchedulingService(_builder(), resilience=ResiliencePolicy())
    service.submit(Workload.from_names(["alexnet", "mobilenet"]))
    return service


class TestTierMechanics:
    def test_static_tier_makes_zero_estimator_forwards(
        self, materialized_service
    ):
        service = materialized_service
        service._ladder.level = TIERS.index("static")
        before_calls = service._injector.estimator_calls
        before_static = service.stats().decisions_by_tier.get("static", 0)
        response = service.submit(Workload.from_names(["vgg19", "resnet50"]))
        assert response.mapping is not None
        assert service._injector.estimator_calls == before_calls
        assert (
            service.stats().decisions_by_tier.get("static", 0)
            == before_static + 1
        )
        service._ladder.level = 0

    def test_non_finite_forward_raises_typed_fault(self, materialized_service):
        estimator = materialized_service.scheduler.estimator
        workload = Workload.from_names(["alexnet"])
        mapping = reference_mapping(
            workload, estimator.embedding.num_devices
        )
        estimator.fault_hook = (
            lambda outputs, backend: np.full_like(outputs, np.nan)
        )
        try:
            with pytest.raises(EstimatorFault):
                estimator.predict_throughput_batch([(workload, mapping)])
        finally:
            estimator.fault_hook = None

    def test_cache_corruption_is_detected_and_counted(self):
        service = SchedulingService(
            _builder(),
            resilience=ResiliencePolicy(
                faults=FaultPlan.single("cache-corrupt", at_call=2)
            ),
        )
        mix = Workload.from_names(["alexnet", "mobilenet"])
        first = service.submit(mix)
        second = service.submit(mix)  # corrupted lookup: drop + re-search
        assert service.stats().cache_corruptions == 1
        assert second.mapping == first.mapping


# ----------------------------------------------------------------------
# Fail-soft estimator consumers outside the engine ladder
# ----------------------------------------------------------------------
class TestAdmissionFailOpen:
    def test_scorer_fault_admits_and_counts(self):
        policy = SLOPolicy(target=SLOTarget(min_throughput=1.0))

        def scorer(workload):
            raise EstimatorFault("injected")

        controller = AdmissionController(policy, scorer=scorer)
        decision = controller.evaluate(["alexnet"], load=0)
        assert decision.verdict == "admit"
        assert "fault" in decision.reason
        assert controller.scorer_faults == 1


# ----------------------------------------------------------------------
# Persistent decision cache under the cache-corrupt drill (PR 10)
# ----------------------------------------------------------------------
class TestPersistentCacheCorruption:
    def test_drill_discards_from_snapshot_too(self, tmp_path):
        """A poisoned entry must not survive in either tier: the drill
        drops it from memory *and* the persisted snapshot, re-decides,
        and the re-decided entry is what a restart replays."""
        cache_dir = str(tmp_path / "decisions")
        mix = Workload.from_names(["alexnet", "mobilenet"])
        service = SchedulingService(
            _builder(),
            cache_dir=cache_dir,
            resilience=ResiliencePolicy(
                faults=FaultPlan.single("cache-corrupt", at_call=2)
            ),
        )
        first = service.submit(mix)
        second = service.submit(mix)  # poisoned lookup: drop + re-search
        assert service.stats().cache_corruptions == 1
        assert second.mapping == first.mapping

        restarted = SchedulingService(_builder(), cache_dir=cache_dir)
        replay = restarted.submit(mix)
        stats = restarted.stats()
        assert replay.cache_status == "hit"
        assert replay.mapping == second.mapping
        assert stats.cache_corruptions == 0
        assert stats.estimator_queries == 0

    def test_on_disk_corruption_quarantines_and_re_decides(self, tmp_path):
        """Bit rot on the snapshot itself: checksum mismatch at bind
        time quarantines the file, counts the corruption, and the
        serving path cold re-decides instead of serving garbage."""
        cache_dir = tmp_path / "decisions"
        mix = Workload.from_names(["alexnet", "mobilenet"])
        first = SchedulingService(_builder(), cache_dir=str(cache_dir))
        cold = first.submit(mix)

        snapshot = cache_dir / "decisions.json"
        snapshot.write_text(snapshot.read_text()[:-25] + "rotted")

        second = SchedulingService(_builder(), cache_dir=str(cache_dir))
        redecided = second.submit(mix)
        stats = second.stats()
        assert stats.cache_corruptions == 1
        assert stats.cache_misses == 1
        assert redecided.cache_status == "miss"
        assert redecided.mapping == cold.mapping  # deterministic re-search
        assert (cache_dir / "decisions.json.corrupt").exists()
