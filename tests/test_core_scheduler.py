"""OmniBoost scheduler facade tests."""

import pytest

from repro.core import MCTSConfig, OmniBoostScheduler
from repro.workloads import Workload


@pytest.fixture()
def scheduler(trained_estimator):
    return OmniBoostScheduler(
        trained_estimator, config=MCTSConfig(budget=120, seed=3)
    )


@pytest.fixture()
def mix():
    return Workload.from_names(["alexnet", "vgg19", "mobilenet"])


class TestScheduling:
    def test_produces_valid_capped_mapping(self, scheduler, mix):
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
        assert decision.mapping.max_stages <= 3

    def test_counts_one_query_per_winning_rollout(self, scheduler, mix):
        decision = scheduler.schedule(mix)
        assert decision.cost["mcts_iterations"] == 120
        assert decision.cost["estimator_queries"] == 120
        assert decision.cost["losing_rollouts"] == 0

    def test_no_retraining_between_workloads(self, scheduler, mix):
        """The paper's headline property: the same trained estimator
        answers every workload; scheduling must not mutate weights."""
        before = [
            parameter.data.copy()
            for parameter in scheduler.estimator.network.parameters()
        ]
        scheduler.schedule(mix)
        scheduler.schedule(Workload.from_names(["resnet50", "squeezenet"]))
        after = scheduler.estimator.network.parameters()
        for old, new in zip(before, after):
            assert (old == new.data).all()

    def test_deterministic_under_seed(self, trained_estimator, mix):
        def run():
            scheduler = OmniBoostScheduler(
                trained_estimator, config=MCTSConfig(budget=80, seed=9)
            )
            return scheduler.schedule(mix).mapping

        assert run() == run()

    def test_wall_time_recorded(self, scheduler, mix):
        decision = scheduler.schedule(mix)
        assert decision.wall_time_s > 0

    def test_last_result_exposed(self, scheduler, mix):
        scheduler.schedule(mix)
        assert scheduler.last_result is not None
        assert scheduler.last_result.iterations == 120

    def test_expected_score_is_best_seen(self, scheduler, mix):
        decision = scheduler.schedule(mix)
        assert decision.expected_score == max(scheduler.last_result.rewards_seen)
