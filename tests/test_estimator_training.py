"""Dataset building and estimator training tests (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.estimator import (
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    ThroughputEstimator,
    TrainingHistory,
)
from repro.workloads import WorkloadGenerator


@pytest.fixture(scope="module")
def builder(simulator, embedding):
    estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(0))
    generator = WorkloadGenerator(seed=21)
    return EstimatorDatasetBuilder(simulator, generator, estimator)


@pytest.fixture(scope="module")
def dataset(builder):
    return builder.build(num_samples=60, measurement_seed=9)


class TestDatasetBuilder:
    def test_shapes(self, dataset):
        assert dataset.inputs.shape == (60, 3, 35, 11)
        assert dataset.targets.shape == (60, 3)
        assert len(dataset.pairs) == 60
        assert len(dataset) == 60

    def test_targets_are_physical_rates(self, dataset):
        assert (dataset.targets >= 0).all()
        assert dataset.targets.max() < 100.0  # inferences/second, not ns

    def test_inputs_are_masked_embeddings(self, dataset):
        # Inputs must be sparse: only scheduled cells are non-zero.
        for index, (workload, _mapping) in enumerate(dataset.pairs[:10]):
            nonzero = (dataset.inputs[index] != 0).sum()
            assert nonzero == workload.total_layers

    def test_deterministic_given_seeds(self, simulator, embedding):
        def build():
            estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(0))
            generator = WorkloadGenerator(seed=21)
            return EstimatorDatasetBuilder(simulator, generator, estimator).build(
                num_samples=20, measurement_seed=9
            )

        np.testing.assert_array_equal(build().targets, build().targets)

    def test_sample_count_validated(self, builder):
        with pytest.raises(ValueError):
            builder.build(num_samples=1)

    def test_repetitions_validated(self, builder):
        with pytest.raises(ValueError):
            builder.build(num_samples=10, repetitions=0)

    def test_more_repetitions_reduce_noise(self, simulator, embedding):
        estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(0))
        generator_a = WorkloadGenerator(seed=21)
        noisy = EstimatorDatasetBuilder(simulator, generator_a, estimator).build(
            num_samples=20, measurement_seed=9, repetitions=1
        )
        generator_b = WorkloadGenerator(seed=21)
        smooth = EstimatorDatasetBuilder(simulator, generator_b, estimator).build(
            num_samples=20, measurement_seed=9, repetitions=10
        )
        exact = np.array(
            [
                simulator.simulate(workload.models, mapping).device_throughput
                for workload, mapping in noisy.pairs
            ]
        )
        noisy_error = np.abs(noisy.targets - exact).mean()
        smooth_error = np.abs(smooth.targets - exact).mean()
        assert smooth_error < noisy_error


class TestTrainer:
    def test_loss_decreases(self, dataset, embedding):
        estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(5))
        trainer = EstimatorTrainer(estimator)
        history = trainer.train(dataset, epochs=12, train_size=48, seed=1)
        assert history.epochs == 12
        assert history.final_train_loss < history.train_losses[0] * 0.8
        # Validation must not diverge on this tiny 12-epoch run;
        # real convergence behaviour is the Fig.-4 benchmark's job.
        assert history.final_val_loss < history.val_losses[0] * 1.2

    def test_history_accessors(self):
        history = TrainingHistory(
            train_losses=[0.3, 0.2], val_losses=[0.35, 0.25]
        )
        assert history.final_train_loss == 0.2
        assert history.best_val_loss == 0.25
        assert history.converged(0.3)
        assert not history.converged(0.1)
        assert history.rows() == [(1, 0.3, 0.35), (2, 0.2, 0.25)]

    def test_l2_option(self, dataset, embedding):
        estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(5))
        trainer = EstimatorTrainer(estimator, loss="l2")
        history = trainer.train(dataset, epochs=3, train_size=48, seed=1)
        assert history.epochs == 3

    def test_invalid_loss_rejected(self, embedding):
        estimator = ThroughputEstimator(embedding)
        with pytest.raises(ValueError, match="l1"):
            EstimatorTrainer(estimator, loss="huber")

    def test_train_size_validated(self, dataset, embedding):
        estimator = ThroughputEstimator(embedding)
        trainer = EstimatorTrainer(estimator)
        with pytest.raises(ValueError, match="train_size"):
            trainer.train(dataset, epochs=1, train_size=60)

    def test_transform_fit_on_train_split_only(self, dataset, embedding):
        estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(5))
        trainer = EstimatorTrainer(estimator)
        trainer.train(dataset, epochs=1, train_size=48, seed=1)
        normalized = estimator.target_transform.transform(dataset.targets[:48])
        assert normalized.min() >= -1e-9
        assert normalized.max() <= 1.0 + 1e-9

    def test_training_is_reproducible(self, dataset, embedding):
        def run():
            estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(5))
            trainer = EstimatorTrainer(estimator)
            return trainer.train(dataset, epochs=4, train_size=48, seed=1)

        assert run().train_losses == run().train_losses
