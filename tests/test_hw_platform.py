"""Unit tests for platform, links and the memory system."""

import pytest

from repro.hw import (
    BIG_CPU_ID,
    Device,
    DeviceKind,
    GPU_ID,
    LITTLE_CPU_ID,
    Link,
    MemorySystem,
    Platform,
    cpu_only_board,
    hikey970,
    symmetric_board,
)


def make_devices(count=2):
    return [
        Device(
            device_id=index,
            name=f"dev{index}",
            kind=DeviceKind.BIG_CPU,
            peak_gflops=10.0,
            mem_bandwidth_gbs=5.0,
            launch_overhead_s=1e-6,
        )
        for index in range(count)
    ]


class TestLink:
    def test_transfer_time_formula(self):
        link = Link(bandwidth_gbs=1.0, latency_s=0.001)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_zero_bytes_costs_latency_only(self):
        link = Link(bandwidth_gbs=1.0, latency_s=0.002)
        assert link.transfer_time(0) == pytest.approx(0.002)

    def test_negative_bytes_rejected(self):
        link = Link(bandwidth_gbs=1.0, latency_s=0.0)
        with pytest.raises(ValueError, match="negative"):
            link.transfer_time(-5)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            Link(bandwidth_gbs=0.0, latency_s=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            Link(bandwidth_gbs=1.0, latency_s=-1e-6)


class TestMemorySystem:
    def test_pressure_is_one_below_comfortable(self):
        memory = MemorySystem(comfortable_residency=3, pressure_per_dnn=0.2)
        assert memory.pressure_factor(1) == 1.0
        assert memory.pressure_factor(3) == 1.0

    def test_pressure_grows_linearly_beyond_comfortable(self):
        memory = MemorySystem(comfortable_residency=3, pressure_per_dnn=0.2)
        assert memory.pressure_factor(4) == pytest.approx(1.2)
        assert memory.pressure_factor(5) == pytest.approx(1.4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MemorySystem().pressure_factor(-1)


class TestPlatform:
    def test_devices_must_be_in_id_order(self):
        devices = list(reversed(make_devices(2)))
        with pytest.raises(ValueError, match="id order"):
            Platform("bad", devices)

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError, match="at least one device"):
            Platform("empty", [])

    def test_device_lookup(self):
        platform = Platform("p", make_devices(3))
        assert platform.device(1).name == "dev1"
        assert platform.num_devices == 3

    def test_device_lookup_out_of_range(self):
        platform = Platform("p", make_devices(2))
        with pytest.raises(KeyError, match="out of range"):
            platform.device(5)

    def test_device_named(self):
        platform = Platform("p", make_devices(2))
        assert platform.device_named("dev0").device_id == 0
        with pytest.raises(KeyError):
            platform.device_named("nope")

    def test_same_device_transfer_is_free(self):
        platform = Platform("p", make_devices(2))
        assert platform.transfer_time(0, 0, 1e9) == 0.0

    def test_unlisted_pair_uses_default_link(self):
        platform = Platform("p", make_devices(2))
        expected = platform.default_link.transfer_time(1e6)
        assert platform.transfer_time(0, 1, 1e6) == pytest.approx(expected)

    def test_links_validated_against_devices(self):
        with pytest.raises(KeyError):
            Platform(
                "p",
                make_devices(2),
                links={(0, 9): Link(bandwidth_gbs=1.0, latency_s=0.0)},
            )


class TestPresets:
    def test_hikey970_has_three_components(self):
        platform = hikey970()
        assert platform.num_devices == 3
        assert platform.device(GPU_ID).kind == DeviceKind.GPU
        assert platform.device(BIG_CPU_ID).kind == DeviceKind.BIG_CPU
        assert platform.device(LITTLE_CPU_ID).kind == DeviceKind.LITTLE_CPU

    def test_hikey970_device_ordering_by_strength(self):
        """GPU > big > LITTLE in raw peak -- the premise of the paper's
        baseline choice."""
        platform = hikey970()
        peaks = [device.peak_gflops for device in platform.devices]
        assert peaks[GPU_ID] > peaks[BIG_CPU_ID] > peaks[LITTLE_CPU_ID]

    def test_hikey970_gpu_hop_slower_than_cpu_hop(self):
        platform = hikey970()
        gpu_hop = platform.transfer_time(GPU_ID, BIG_CPU_ID, 1e6)
        cpu_hop = platform.transfer_time(BIG_CPU_ID, LITTLE_CPU_ID, 1e6)
        assert gpu_hop > cpu_hop

    def test_hikey970_max_residency_is_five(self):
        """Six concurrent DNNs hung the board in the paper."""
        assert hikey970().memory.max_residency == 5

    def test_cpu_only_board_has_no_gpu(self):
        assert not cpu_only_board().devices_of_kind(DeviceKind.GPU)

    def test_symmetric_board_sizes(self):
        assert symmetric_board(4).num_devices == 4
        with pytest.raises(ValueError):
            symmetric_board(0)

    def test_symmetric_board_devices_identical(self):
        platform = symmetric_board(3)
        peaks = {device.peak_gflops for device in platform.devices}
        assert len(peaks) == 1
