"""The repo passes its own doctrine linter -- the self-clean gate.

This is the merge contract from the linter PR onward: ``repro lint
src tests benchmarks`` reports zero non-allowlisted findings.  Every
wall-clock read is pragma-annotated or allowlisted, every benchmark
gate is count-based, every serving-stack cache key goes through
``canonical_signature``, and every public export is documented.
Re-introducing a violation fails this test locally and the ``lint``
job in CI.
"""

from pathlib import Path

from repro.analysis import DEFAULT_PATHS, LintConfig, format_text, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_repo_is_lint_clean():
    report = run_lint(
        paths=DEFAULT_PATHS, config=LintConfig(), root=REPO_ROOT
    )
    assert report.clean, "\n" + format_text(report)
    # The full default rule set actually ran -- a selection bug must
    # not let the gate pass vacuously.
    assert len(report.rules_run) >= 10
    assert "RPR009" in report.rules_run
    assert "RPR010" in report.rules_run
    assert report.files_checked > 100


def test_every_suppression_carries_a_reason():
    report = run_lint(
        paths=DEFAULT_PATHS, config=LintConfig(), root=REPO_ROOT
    )
    assert report.suppressed, "the tree is expected to have annotated sites"
    for finding in report.suppressed:
        assert finding.suppressed_by
        assert finding.suppressed_by.startswith(("pragma", "allowlist"))
