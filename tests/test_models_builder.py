"""Unit tests for the model builder's shape and cost arithmetic."""

import pytest

from repro.models import ModelBuilder, TensorShape


def builder(channels=3, size=32):
    return ModelBuilder("toy", TensorShape(channels, size, size))


class TestConv:
    def test_same_padding_preserves_spatial(self):
        b = builder()
        b.conv("c1", 16, kernel=3)
        graph = b.build()
        assert graph.layers[0].output_shape == TensorShape(16, 32, 32)

    def test_stride_halves_spatial(self):
        b = builder()
        b.conv("c1", 16, kernel=3, stride=2, padding=1)
        assert b.build().layers[0].output_shape == TensorShape(16, 16, 16)

    def test_conv_flops_formula(self):
        b = builder(channels=3, size=8)
        b.conv("c1", 4, kernel=3, activation=None)
        layer = b.build().layers[0]
        # 2 * out_elems * Cin * K * K
        assert layer.kernels[0].flops == 2 * (4 * 8 * 8) * 3 * 9

    def test_conv_weight_bytes(self):
        b = builder(channels=3, size=8)
        b.conv("c1", 4, kernel=3, activation=None)
        layer = b.build().layers[0]
        assert layer.weight_bytes == (4 * 3 * 9 + 4) * 4

    def test_activation_kernel_appended(self):
        b = builder()
        b.conv("c1", 8, activation="relu")
        kinds = [kernel.kind for kernel in b.build().layers[0].kernels]
        assert kinds == ["conv", "activation"]

    def test_lrn_kernel_appended(self):
        b = builder()
        b.conv("c1", 8, lrn=True)
        kinds = [kernel.kind for kernel in b.build().layers[0].kernels]
        assert "norm" in kinds

    def test_fused_pool_changes_output_shape(self):
        b = builder()
        b.conv("c1", 8, pool=(2, 2))
        assert b.build().layers[0].output_shape == TensorShape(8, 16, 16)

    def test_collapsing_conv_rejected(self):
        b = builder(size=2)
        with pytest.raises(ValueError, match="collapses"):
            b.conv("c1", 8, kernel=5, padding=0)

    def test_bad_groups_rejected(self):
        b = builder(channels=3)
        with pytest.raises(ValueError, match="groups"):
            b.conv("c1", 8, groups=2)

    def test_duplicate_layer_names_rejected(self):
        b = builder()
        b.conv("c1", 8)
        with pytest.raises(ValueError, match="duplicate"):
            b.conv("c1", 8)


class TestDepthwise:
    def test_depthwise_kind(self):
        b = builder(channels=8)
        b.depthwise_conv("dw", kernel=3)
        layer = b.build().layers[0]
        assert layer.kernels[0].kind == "depthwise_conv"
        assert layer.output_shape.channels == 8

    def test_depthwise_flops_cheaper_than_dense(self):
        dense = builder(channels=8)
        dense.conv("c", 8, kernel=3, activation=None)
        dw = builder(channels=8)
        dw.depthwise_conv("d", kernel=3, activation=None)
        assert (
            dw.build().layers[0].kernels[0].flops
            < dense.build().layers[0].kernels[0].flops
        )


class TestFC:
    def test_fc_flattens_input(self):
        b = builder(channels=4, size=4)
        b.fc("fc", 10)
        layer = b.build().layers[0]
        assert layer.output_shape == TensorShape(10)
        assert layer.kernels[0].flops == 2 * (4 * 4 * 4) * 10

    def test_softmax_appended(self):
        b = builder()
        b.fc("fc", 10, softmax=True)
        kinds = [kernel.kind for kernel in b.build().layers[0].kernels]
        assert kinds[-1] == "softmax"


class TestPoolIntoLast:
    def test_global_pool(self):
        b = builder()
        b.conv("c1", 8)
        b.pool_into_last(global_pool=True)
        assert b.build().layers[0].output_shape == TensorShape(8, 1, 1)

    def test_requires_existing_unit(self):
        with pytest.raises(ValueError, match="existing unit"):
            builder().pool_into_last()

    def test_does_not_add_a_unit(self):
        b = builder()
        b.conv("c1", 8)
        b.pool_into_last()
        assert b.build().num_layers == 1


class TestResidualBlocks:
    def test_basic_block_preserves_shape_without_stride(self):
        b = builder(channels=16)
        b.residual_basic("res", 16)
        layer = b.build().layers[0]
        assert layer.output_shape == TensorShape(16, 32, 32)
        assert layer.role == "block"

    def test_basic_block_projection_on_channel_change(self):
        narrow = builder(channels=16)
        narrow.residual_basic("res", 16)
        wide = builder(channels=16)
        wide.residual_basic("res", 32)
        # The projection conv adds weights.
        assert (
            wide.build().layers[0].weight_bytes
            > 2 * narrow.build().layers[0].weight_bytes / 2
        )
        kinds = [kernel.name for kernel in wide.build().layers[0].kernels]
        assert any("proj" in name for name in kinds)

    def test_bottleneck_output_channels(self):
        b = builder(channels=64)
        b.residual_bottleneck("res", 64, 256)
        assert b.build().layers[0].output_shape.channels == 256

    def test_residual_add_kernel_present(self):
        b = builder(channels=16)
        b.residual_basic("res", 16)
        kinds = [kernel.kind for kernel in b.build().layers[0].kernels]
        assert "elementwise" in kinds


class TestFireAndMixed:
    def test_fire_expand_concatenates_channels(self):
        b = builder(channels=16)
        b.fire_expand("exp", 64, 64)
        assert b.build().layers[0].output_shape.channels == 128

    def test_mixed_block_concatenates_branches(self):
        b = builder(channels=32)
        b.mixed_block(
            "mix",
            branches=[[(8, 1, 1, 1)], [(16, 3, 3, 1)]],
            pool_branch=4,
        )
        # 8 + 16 + 4 channels, spatial preserved.
        assert b.build().layers[0].output_shape == TensorShape(28, 32, 32)

    def test_mixed_block_reduction(self):
        b = builder(channels=32, size=33)
        b.mixed_block(
            "red",
            branches=[[(8, 3, 3, 2)]],
            pool_branch=0,
            branch_strides=[2, 2],
        )
        out = b.build().layers[0].output_shape
        assert out.height == 16  # (33 - 3)//2 + 1
        assert out.channels == 8 + 32  # conv branch + pool passthrough

    def test_mixed_block_mismatched_spatial_rejected(self):
        b = builder(channels=32, size=33)
        with pytest.raises(ValueError, match="spatial"):
            b.mixed_block(
                "bad",
                branches=[[(8, 3, 3, 2)], [(8, 1, 1, 1)]],
            )

    def test_asymmetric_conv_preserves_spatial(self):
        b = builder(channels=32)
        b.mixed_block("mix", branches=[[(8, 1, 7, 1), (8, 7, 1, 1)]])
        assert b.build().layers[0].output_shape == TensorShape(8, 32, 32)


class TestGraphValidation:
    def test_chained_shapes_validated(self):
        b = builder()
        b.conv("c1", 8).conv("c2", 16).fc("fc", 10)
        graph = b.build()
        assert graph.num_layers == 3
        for prev, nxt in zip(graph.layers, graph.layers[1:]):
            assert prev.output_shape == nxt.input_shape

    def test_summary_contains_layer_names(self):
        b = builder()
        b.conv("stem", 8)
        assert "stem" in b.build().summary()

    def test_layer_index_lookup(self):
        b = builder()
        b.conv("c1", 8).conv("c2", 8)
        graph = b.build()
        assert graph.layer_index("c2") == 1
        with pytest.raises(KeyError):
            graph.layer_index("zz")
