"""Runner mechanics: suppression, selection, formats, CLI exit codes."""

import json
import textwrap

import pytest

from repro.analysis import (
    AllowlistEntry,
    LintConfig,
    format_json,
    format_text,
    run_lint,
)
from repro.analysis.runner import main
from repro.cli import main as cli_main

VIOLATION = """
import time

def decide():
    return time.perf_counter()
"""


def write(tmp_path, source, rel_path="src/repro/mod.py"):
    file = tmp_path / rel_path
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    return rel_path


def lint(tmp_path, rel_path, config=None):
    return run_lint(
        paths=[rel_path],
        config=config or LintConfig(allowlist=()),
        root=tmp_path,
    )


# ----------------------------------------------------------------------
# Pragma suppression
# ----------------------------------------------------------------------
class TestPragmas:
    def test_inline_pragma_suppresses(self, tmp_path):
        rel = write(
            tmp_path,
            """
            import time

            def decide():
                return time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement
            """,
        )
        report = lint(tmp_path, rel)
        assert report.clean
        assert [f.rule for f in report.suppressed] == ["RPR002"]
        assert report.suppressed[0].suppressed_by.startswith("pragma")
        assert "host measurement" in report.suppressed[0].suppressed_by

    def test_previous_line_pragma_suppresses(self, tmp_path):
        rel = write(
            tmp_path,
            """
            import time

            def decide():
                # repro: lint-ignore[RPR002] -- host measurement
                return time.perf_counter()
            """,
        )
        report = lint(tmp_path, rel)
        assert report.clean
        assert len(report.suppressed) == 1

    def test_def_header_pragma_covers_the_body(self, tmp_path):
        rel = write(
            tmp_path,
            """
            import time

            def decide():  # repro: lint-ignore[RPR002] -- measurement wrapper
                started = time.perf_counter()
                return time.perf_counter() - started
            """,
        )
        report = lint(tmp_path, rel)
        assert report.clean
        assert len(report.suppressed) == 2

    def test_reasonless_pragma_does_not_suppress(self, tmp_path):
        # The reason after `--` is mandatory: a pragma that does not
        # say why suppresses nothing.
        rel = write(
            tmp_path,
            """
            import time

            def decide():
                return time.perf_counter()  # repro: lint-ignore[RPR002]
            """,
        )
        report = lint(tmp_path, rel)
        assert [f.rule for f in report.findings] == ["RPR002"]
        assert not report.suppressed

    def test_pragma_for_another_rule_does_not_suppress(self, tmp_path):
        rel = write(
            tmp_path,
            """
            import time

            def decide():
                return time.perf_counter()  # repro: lint-ignore[RPR001] -- wrong rule
            """,
        )
        report = lint(tmp_path, rel)
        assert [f.rule for f in report.findings] == ["RPR002"]

    def test_multi_rule_pragma(self, tmp_path):
        rel = write(
            tmp_path,
            """
            import time

            def decide(queue=[]):  # repro: lint-ignore[RPR002, RPR007] -- fixture
                return time.perf_counter()
            """,
        )
        report = lint(tmp_path, rel)
        assert report.clean
        assert sorted(f.rule for f in report.suppressed) == ["RPR002", "RPR007"]


# ----------------------------------------------------------------------
# Allowlist suppression
# ----------------------------------------------------------------------
class TestAllowlist:
    def test_allowlist_entry_suppresses(self, tmp_path):
        rel = write(tmp_path, VIOLATION)
        config = LintConfig(
            allowlist=(
                AllowlistEntry(
                    rule="RPR002", path=rel, reason="measurement module"
                ),
            )
        )
        report = lint(tmp_path, rel, config)
        assert report.clean
        assert report.suppressed[0].suppressed_by.startswith("allowlist")

    def test_allowlist_is_rule_specific(self, tmp_path):
        rel = write(tmp_path, VIOLATION)
        config = LintConfig(
            allowlist=(
                AllowlistEntry(rule="RPR001", path=rel, reason="other rule"),
            )
        )
        report = lint(tmp_path, rel, config)
        assert [f.rule for f in report.findings] == ["RPR002"]


# ----------------------------------------------------------------------
# Selection and scoping
# ----------------------------------------------------------------------
class TestSelection:
    def test_select_runs_only_named_rules(self, tmp_path):
        rel = write(tmp_path, VIOLATION)
        config = LintConfig(allowlist=()).with_selection(select=("RPR008",))
        report = lint(tmp_path, rel, config)
        assert report.rules_run == ("RPR008",)
        assert report.clean

    def test_ignore_drops_a_rule(self, tmp_path):
        rel = write(tmp_path, VIOLATION)
        config = LintConfig(allowlist=()).with_selection(ignore=("RPR002",))
        report = lint(tmp_path, rel, config)
        assert "RPR002" not in report.rules_run
        assert report.clean


# ----------------------------------------------------------------------
# Broken input
# ----------------------------------------------------------------------
class TestSyntaxError:
    def test_unparseable_file_yields_rpr000(self, tmp_path):
        rel = write(tmp_path, "def broken(:\n")
        report = lint(tmp_path, rel)
        assert [f.rule for f in report.findings] == ["RPR000"]
        assert "does not parse" in report.findings[0].message


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
class TestFormats:
    def test_text_format_lists_findings_and_summary(self, tmp_path):
        rel = write(tmp_path, VIOLATION)
        report = lint(tmp_path, rel)
        text = format_text(report)
        assert f"{rel}:5:" in text
        assert "RPR002" in text
        assert "1 finding (0 suppressed) across 1 files" in text

    def test_show_suppressed_appends_pragma_lines(self, tmp_path):
        rel = write(
            tmp_path,
            """
            import time

            t = time.perf_counter()  # repro: lint-ignore[RPR002] -- fixture
            """,
        )
        report = lint(tmp_path, rel)
        text = format_text(report, show_suppressed=True)
        assert "[suppressed]" in text
        assert "fixture" in text

    def test_json_format_round_trips(self, tmp_path):
        rel = write(tmp_path, VIOLATION)
        report = lint(tmp_path, rel)
        payload = json.loads(format_json(report))
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "RPR002"
        assert payload["findings"][0]["path"] == rel
        assert payload["findings"][0]["severity"] == "error"

    def test_findings_are_deterministically_ordered(self, tmp_path):
        write(tmp_path, VIOLATION, "src/repro/b.py")
        write(tmp_path, VIOLATION, "src/repro/a.py")
        report = run_lint(
            paths=["src"], config=LintConfig(allowlist=()), root=tmp_path
        )
        assert [f.path for f in report.findings] == [
            "src/repro/a.py",
            "src/repro/b.py",
        ]


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_one_on_findings(self, tmp_path, monkeypatch, capsys):
        rel = write(tmp_path, VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main([rel]) == 1
        assert "RPR002" in capsys.readouterr().out

    def test_exit_zero_when_clean(self, tmp_path, monkeypatch, capsys):
        rel = write(tmp_path, "VALUE = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main([rel]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, monkeypatch, capsys):
        rel = write(tmp_path, "VALUE = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main([rel, "--select", "RPR999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_output_writes_json_artifact(self, tmp_path, monkeypatch, capsys):
        rel = write(tmp_path, VIOLATION)
        monkeypatch.chdir(tmp_path)
        artifact = tmp_path / "findings.json"
        assert main([rel, "--format", "json", "--output", str(artifact)]) == 1
        payload = json.loads(artifact.read_text())
        assert payload["findings"][0]["rule"] == "RPR002"
        # stdout carries the same JSON document.
        assert json.loads(capsys.readouterr().out) == payload

    def test_list_rules_prints_catalog(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR004", "RPR008"):
            assert code in out

    def test_repro_lint_subcommand_dispatches(
        self, tmp_path, monkeypatch, capsys
    ):
        rel = write(tmp_path, VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", rel]) == 1
        assert "RPR002" in capsys.readouterr().out
        assert cli_main(["lint", rel, "--ignore", "RPR002"]) == 0
