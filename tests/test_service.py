"""SchedulingService tests: cache, batching identity, request knobs.

The acceptance bar for the serving layer: ``schedule_many`` over a
batch of >= 8 mixes (with repeats) returns mappings identical to a
sequential per-request loop on an identically configured service, and
the repeated mixes produce a nonzero decision-cache hit rate.
"""

import time

import pytest

from repro.builder import SystemBuilder
from repro.core import MCTSConfig, ScheduleRequest, ScheduleResponse
from repro.core.base import ScheduleDecision, Scheduler
from repro.service import SchedulingService
from repro.sim import Mapping
from repro.workloads import Workload

#: >= 8 mixes, including an exact repeat (#4 of #0), a permuted repeat
#: (#5 of #0) and an exact repeat (#6 of #1).
MIX_NAMES = [
    ["alexnet", "mobilenet", "squeezenet"],
    ["vgg19", "resnet50", "alexnet"],
    ["mobilenet", "vgg16", "inception_v3"],
    ["squeezenet", "resnet34", "vgg13"],
    ["alexnet", "mobilenet", "squeezenet"],
    ["mobilenet", "alexnet", "squeezenet"],
    ["vgg19", "resnet50", "alexnet"],
    ["resnet50", "vgg19", "inception_v4"],
    ["alexnet", "resnet101", "mobilenet"],
]


def _make_service(**kwargs) -> SchedulingService:
    builder = (
        SystemBuilder(seed=29)
        .with_estimator(num_training_samples=40, epochs=3)
        .with_mcts_config(MCTSConfig(budget=50, seed=13))
    )
    return SchedulingService(builder, **kwargs)


def _requests():
    return [
        ScheduleRequest(workload=Workload.from_names(names), request_id=str(i))
        for i, names in enumerate(MIX_NAMES)
    ]


@pytest.fixture(scope="module")
def batch_run():
    """One batched run and one sequential run on twin services."""
    batched_service = _make_service()
    requests = _requests()
    batched = batched_service.schedule_many(requests)
    sequential_service = _make_service()
    sequential = [sequential_service.submit(request) for request in requests]
    return batched_service, requests, batched, sequential


class TestScheduleManyIdentity:
    def test_batch_size_is_at_least_eight(self, batch_run):
        _, requests, _, _ = batch_run
        assert len(requests) >= 8

    def test_mappings_identical_to_sequential_loop(self, batch_run):
        _, _, batched, sequential = batch_run
        for response_a, response_b in zip(batched, sequential):
            assert response_a.mapping == response_b.mapping

    def test_scores_identical_to_sequential_loop(self, batch_run):
        _, _, batched, sequential = batch_run
        for response_a, response_b in zip(batched, sequential):
            assert response_a.expected_score == response_b.expected_score

    def test_nonzero_cache_hit_rate_on_repeats(self, batch_run):
        service, _, batched, _ = batch_run
        stats = service.stats()
        assert stats.cache_hits == 3  # two exact + one permuted repeat
        assert stats.cache_hit_rate > 0
        assert [r.cache_status for r in batched].count("hit") == 3

    def test_responses_align_with_request_order(self, batch_run):
        _, requests, batched, _ = batch_run
        assert [r.request_id for r in batched] == [
            request.request_id for request in requests
        ]

    def test_evaluations_were_pooled(self, batch_run):
        service, _, _, _ = batch_run
        stats = service.stats()
        assert stats.pooled_eval_batches > 0
        # Six distinct searches ran concurrently: far fewer pooled
        # calls than total evaluations.
        assert stats.mean_pooled_batch_size > 1.5

    def test_permuted_repeat_realigns_rows(self, batch_run):
        _, requests, batched, _ = batch_run
        original, permuted = batched[0], batched[5]
        assert permuted.cache_status == "hit"
        permuted.mapping.validate(requests[5].workload.models, 3)
        # Same per-model rows, re-ordered to the permuted mix.
        assert permuted.mapping.assignments[0] == original.mapping.assignments[1]
        assert permuted.mapping.assignments[1] == original.mapping.assignments[0]

    def test_valid_mappings_everywhere(self, batch_run):
        _, requests, batched, _ = batch_run
        for request, response in zip(requests, batched):
            response.mapping.validate(request.workload.models, 3)

    def test_pooled_identical_to_solo_without_cache(self):
        """Pure pooling check: distinct mixes, cache disabled on both
        sides -- concurrent searches must equal standalone searches."""
        distinct = [_requests()[i] for i in (0, 1, 2, 7)]
        batched = _make_service(cache_decisions=False).schedule_many(distinct)
        solo_service = _make_service(cache_decisions=False)
        solo = [solo_service.submit(request) for request in distinct]
        for response_a, response_b in zip(batched, solo):
            assert response_a.mapping == response_b.mapping
            assert response_a.cache_status == "bypass"


class TestDecisionCache:
    def test_repeat_submit_hits(self):
        service = _make_service()
        mix = Workload.from_names(["alexnet", "mobilenet"])
        first = service.submit(mix)
        second = service.submit(mix)
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert second.mapping == first.mapping
        assert service.stats().cache_hit_rate == 0.5

    def test_budget_is_part_of_the_key(self):
        service = _make_service()
        mix = Workload.from_names(["alexnet", "mobilenet"])
        service.submit(mix, budget=20)
        response = service.submit(mix, budget=30)
        assert response.cache_status == "miss"

    def test_constructor_objective_survives_pooling(self):
        """A scheduler built with an objective must be scored with it in
        the pooled path too -- not silently fall back to mean throughput."""
        from repro.core import OmniBoostScheduler, register_scheduler, unregister_scheduler
        from repro.core.objectives import SchedulingObjective

        class _Negated(SchedulingObjective):
            name = "negated"

            def score(self, workload, mapping, predicted):
                return -float(predicted.mean())

        register_scheduler(
            "negated-omniboost",
            lambda b: OmniBoostScheduler(
                b.estimator, config=b.mcts_config, objective=_Negated()
            ),
        )
        try:
            builder = (
                SystemBuilder(seed=29)
                .with_estimator(num_training_samples=40, epochs=3)
                .with_mcts_config(MCTSConfig(budget=40, seed=13))
            )
            service = SchedulingService(builder, scheduler="negated-omniboost")
            mix = Workload.from_names(["alexnet", "mobilenet"])
            response = service.submit(mix)
            direct = builder.build_scheduler("negated-omniboost").schedule(mix)
            assert response.expected_score < 0  # objective applied
            assert response.mapping == direct.mapping
            assert response.expected_score == direct.expected_score
        finally:
            unregister_scheduler("negated-omniboost")

    def test_objective_override_bypasses_cache(self):
        from repro.core import ThroughputObjective

        service = _make_service()
        mix = Workload.from_names(["alexnet", "mobilenet"])
        response = service.submit(mix, objective=ThroughputObjective())
        assert response.cache_status == "bypass"
        assert service.stats().cache_bypasses == 1

    def test_clear_cache(self):
        service = _make_service()
        mix = Workload.from_names(["alexnet", "mobilenet"])
        service.submit(mix)
        assert service.clear_cache() == 1
        assert service.submit(mix).cache_status == "miss"

    def test_cache_disabled_service_never_hits(self):
        service = _make_service(cache_decisions=False)
        mix = Workload.from_names(["alexnet", "mobilenet"])
        assert service.submit(mix).cache_status == "bypass"
        assert service.submit(mix).cache_status == "bypass"
        assert service.stats().cache_hits == 0


class TestRequestKnobs:
    def test_budget_override_reaches_the_search(self):
        service = _make_service(cache_decisions=False)
        mix = Workload.from_names(["alexnet", "mobilenet"])
        response = service.submit(mix, budget=17)
        assert response.decision.cost["mcts_iterations"] == 17

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ScheduleRequest(
                workload=Workload.from_names(["alexnet"]), budget=0
            )

    def test_priority_does_not_change_results(self):
        requests = _requests()[:4]
        plain = _make_service().schedule_many(requests)
        prioritized = _make_service().schedule_many(
            [
                ScheduleRequest(
                    workload=request.workload,
                    priority=index,  # reversed processing order
                    request_id=request.request_id,
                )
                for index, request in enumerate(requests)
            ]
        )
        for response_a, response_b in zip(plain, prioritized):
            assert response_a.mapping == response_b.mapping

    def test_priority_does_not_change_permuted_duplicate_results(self):
        """A high-priority *permuted* duplicate must not steal the
        search from the first arrival: the job always runs over the
        first-arriving workload order, so results stay identical to
        the sequential loop."""
        plain_requests = [
            ScheduleRequest(workload=Workload.from_names(["alexnet", "mobilenet"])),
            ScheduleRequest(workload=Workload.from_names(["mobilenet", "alexnet"])),
        ]
        prioritized_requests = [
            ScheduleRequest(workload=plain_requests[0].workload),
            ScheduleRequest(workload=plain_requests[1].workload, priority=9),
        ]
        plain = _make_service().schedule_many(plain_requests)
        prioritized = _make_service().schedule_many(prioritized_requests)
        sequential_service = _make_service()
        sequential = [sequential_service.submit(r) for r in plain_requests]
        for a, b, c in zip(plain, prioritized, sequential):
            assert a.mapping == b.mapping == c.mapping
        # The first arrival ran the search either way.
        assert prioritized[0].cache_status == "miss"
        assert prioritized[1].cache_status == "hit"

    def test_request_id_echoed(self):
        service = _make_service()
        response = service.submit(
            Workload.from_names(["alexnet", "mobilenet"]), request_id="abc"
        )
        assert response.request_id == "abc"


class TestPerPriorityStats:
    """Satellite: per-priority service levels are measured, and the
    priority-first drive order can never starve (or change the results
    of) priority-0 requests."""

    def test_mixed_priorities_counted_and_not_starved(self):
        from dataclasses import replace as dc_replace

        priorities = [0, 5, 0, 9]
        requests = [
            ScheduleRequest(
                workload=Workload.from_names(names),
                priority=priority,
                request_id=str(index),
            )
            for index, (names, priority) in enumerate(
                zip(MIX_NAMES[:4], priorities)
            )
        ]
        service = _make_service()
        responses = service.schedule_many(requests)
        # No starvation: every priority-0 request is answered with a
        # valid mapping and its wait is recorded.
        for request, response in zip(requests, responses):
            assert response is not None
            response.mapping.validate(request.workload.models, 3)
        stats = service.stats()
        assert stats.requests_by_priority == {0: 2, 5: 1, 9: 1}
        for priority in (0, 5, 9):
            assert stats.mean_wait_s(priority) > 0
        assert stats.mean_wait_s(42) == 0.0
        # And the sort is cosmetic: identical decisions to an
        # all-priority-0 batch.
        plain = _make_service().schedule_many(
            [dc_replace(request, priority=0) for request in requests]
        )
        for response_a, response_b in zip(responses, plain):
            assert response_a.mapping == response_b.mapping

    def test_follower_priority_inheritance_keeps_results(self):
        """A high-priority duplicate of a low-priority in-flight mix
        lifts that search's drive priority (no inversion) without
        changing any decision."""
        requests = [
            ScheduleRequest(
                workload=Workload.from_names(["alexnet", "mobilenet"]),
                priority=0,
            ),
            ScheduleRequest(
                workload=Workload.from_names(["vgg19", "resnet50"]),
                priority=1,
            ),
            ScheduleRequest(
                workload=Workload.from_names(["mobilenet", "alexnet"]),
                priority=9,  # urgent permuted duplicate of request 0
            ),
        ]
        service = _make_service()
        responses = service.schedule_many(requests)
        assert responses[2].cache_status == "hit"
        sequential_service = _make_service()
        sequential = [sequential_service.submit(r) for r in requests]
        for response_a, response_b in zip(responses, sequential):
            assert response_a.mapping == response_b.mapping
        stats = service.stats()
        assert stats.requests_by_priority == {0: 1, 1: 1, 9: 1}

    def test_stats_snapshot_is_isolated(self):
        service = _make_service()
        service.submit(Workload.from_names(["alexnet", "mobilenet"]))
        snapshot = service.stats()
        snapshot.requests_by_priority[0] = 999
        assert service.stats().requests_by_priority[0] == 1


class TestNonPoolingScheduler:
    def test_baseline_service_with_cache(self):
        service = SchedulingService(SystemBuilder(seed=29), scheduler="baseline")
        mix = Workload.from_names(["alexnet", "mobilenet"])
        first, second = service.schedule_many([mix, mix])
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert first.scheduler_name == "Baseline"
        # The baseline needs no estimator: nothing was trained.
        assert not service._builder.built("trained")


class TestMeasuredWallTime:
    class _SelfReporting(Scheduler):
        """A scheduler whose self-reported time is deliberately wrong."""

        name = "self-reporting"

        def _decide(self, workload):
            time.sleep(0.01)
            return ScheduleDecision(
                mapping=Mapping.single_device(workload.models, 0),
                expected_score=1.0,
                wall_time_s=1234.5,  # nonzero: the legacy path kept this
            )

    def test_host_measurement_always_recorded(self):
        """Satellite: sub-resolution / self-reported timings are never
        conflated with the host measurement."""
        scheduler = self._SelfReporting()
        response = scheduler.respond(
            ScheduleRequest(workload=Workload.from_names(["alexnet"]))
        )
        assert response.decision.wall_time_s == 1234.5  # self-report kept
        assert 0.005 < response.measured_wall_time_s < 5.0  # host truth

    def test_zero_self_report_backfilled(self):
        service = _make_service()
        response = service.submit(Workload.from_names(["alexnet", "mobilenet"]))
        assert response.decision.wall_time_s > 0
        assert response.measured_wall_time_s > 0

    def test_schedule_shim_matches_legacy_shape(self):
        decision = self._SelfReporting().schedule(
            Workload.from_names(["alexnet"])
        )
        assert isinstance(decision, ScheduleDecision)
        assert decision.wall_time_s == 1234.5


class TestPlumbing:
    def test_empty_batch(self):
        assert _make_service().schedule_many([]) == []

    def test_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            SchedulingService(object())

    def test_rejects_knobs_on_request_objects(self):
        service = _make_service()
        with pytest.raises(TypeError):
            service.submit(
                ScheduleRequest(workload=Workload.from_names(["alexnet"])),
                budget=5,
            )

    def test_service_over_built_system(self):
        system = (
            SystemBuilder(seed=29)
            .with_estimator(num_training_samples=40, epochs=2)
            .build()
        )
        service = SchedulingService(system)
        response = service.submit(Workload.from_names(["alexnet", "mobilenet"]))
        assert isinstance(response, ScheduleResponse)
        assert response.scheduler_name == "OmniBoost"
