"""Batched estimator evaluation: equivalence, accounting, geometry.

The batched path must be a pure wall-clock optimization: stacking N
masked embedding tensors and running one ResNet9 forward has to give
the same numbers as N scalar queries, and the query counter has to
keep the paper's Section V-B accounting intact either way.
"""

import numpy as np
import pytest

from repro.estimator import ThroughputEstimator
from repro.sim import Mapping
from repro.workloads import Workload
from repro.workloads.generator import random_contiguous_mapping


@pytest.fixture()
def estimator(embedding):
    est = ThroughputEstimator(embedding, rng=np.random.default_rng(3))
    targets = np.random.default_rng(0).uniform(0.5, 5.0, size=(50, 3))
    est.target_transform.fit(targets)
    return est


@pytest.fixture()
def workload():
    return Workload.from_names(["alexnet", "mobilenet", "squeezenet"])


@pytest.fixture()
def mappings(workload):
    rng = np.random.default_rng(11)
    return [
        random_contiguous_mapping(workload.models, 3, rng) for _ in range(20)
    ]


class TestBatchEquivalence:
    def test_throughput_batch_matches_sequential(
        self, estimator, workload, mappings
    ):
        """Acceptance: batch of >= 16 within 1e-6 of the scalar loop."""
        assert len(mappings) >= 16
        batched = estimator.predict_throughput_batch(
            [(workload, mapping) for mapping in mappings]
        )
        sequential = np.stack(
            [
                estimator.predict_throughput(workload, mapping)
                for mapping in mappings
            ]
        )
        assert batched.shape == (len(mappings), 3)
        np.testing.assert_allclose(batched, sequential, atol=1e-6, rtol=0)

    def test_reward_batch_matches_sequential(
        self, estimator, workload, mappings
    ):
        batched = estimator.reward_batch(
            [(workload, mapping) for mapping in mappings]
        )
        sequential = np.array(
            [estimator.reward(workload, mapping) for mapping in mappings]
        )
        assert batched.shape == (len(mappings),)
        np.testing.assert_allclose(batched, sequential, atol=1e-6, rtol=0)

    def test_batch_of_one_matches_scalar(self, estimator, workload, mappings):
        scalar = estimator.predict_throughput(workload, mappings[0])
        batch = estimator.predict_throughput_batch([(workload, mappings[0])])
        np.testing.assert_array_equal(batch[0], scalar)

    def test_mixed_workloads_in_one_batch(self, estimator, mappings):
        """Pairs may mix different workloads; each row is independent."""
        mix_a = Workload.from_names(["alexnet", "mobilenet", "squeezenet"])
        mix_b = Workload.from_names(["alexnet"])
        mapping_b = Mapping.single_device(mix_b.models, 1)
        batched = estimator.predict_throughput_batch(
            [(mix_a, mappings[0]), (mix_b, mapping_b)]
        )
        # float32 BLAS may pick different accumulation orders per batch
        # shape, so equivalence is to tolerance, not bitwise.
        np.testing.assert_allclose(
            batched[1],
            estimator.predict_throughput(mix_b, mapping_b),
            atol=1e-6,
            rtol=0,
        )


class TestQueryAccounting:
    def test_batch_counts_every_pair(self, estimator, workload, mappings):
        estimator.reset_query_count()
        estimator.predict_throughput_batch(
            [(workload, mapping) for mapping in mappings]
        )
        assert estimator.query_count == len(mappings)

    def test_reward_batch_counts_every_pair(
        self, estimator, workload, mappings
    ):
        estimator.reset_query_count()
        estimator.reward_batch([(workload, mapping) for mapping in mappings])
        assert estimator.query_count == len(mappings)

    def test_sequential_and_batched_accounting_agree(
        self, estimator, workload, mappings
    ):
        estimator.reset_query_count()
        for mapping in mappings:
            estimator.reward(workload, mapping)
        sequential = estimator.reset_query_count()
        estimator.reward_batch([(workload, mapping) for mapping in mappings])
        assert estimator.reset_query_count() == sequential


class TestValidation:
    def test_empty_batch_rejected(self, estimator):
        with pytest.raises(ValueError, match="at least one pair"):
            estimator.predict_throughput_batch([])

    def test_requires_fitted_transform(self, embedding, workload, mappings):
        untrained = ThroughputEstimator(
            embedding, rng=np.random.default_rng(3)
        )
        with pytest.raises(RuntimeError, match="before fit"):
            untrained.predict_throughput_batch([(workload, mappings[0])])
