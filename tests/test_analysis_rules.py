"""Fixture-snippet tests: every doctrine rule fires and stays quiet.

Each rule gets (at least) one positive fixture -- a minimal snippet
that violates the doctrine, placed at a path inside the rule's scope
-- and one negative fixture showing the sanctioned idiom passing.
``docs/linting.md`` points new rules here: a rule without both halves
is either dead or a noise generator.
"""

import textwrap

from repro.analysis import LintConfig, run_lint


def lint_snippet(tmp_path, source, rel_path="src/repro/mod.py", select=None):
    """Write ``source`` at ``rel_path`` under a scratch root and lint it."""
    file = tmp_path / rel_path
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    config = LintConfig(allowlist=())
    if select:
        config = config.with_selection(select=tuple(select))
    return run_lint(paths=[rel_path], config=config, root=tmp_path)


def codes(report):
    return [finding.rule for finding in report.findings]


# ----------------------------------------------------------------------
# RPR001 no-unseeded-rng
# ----------------------------------------------------------------------
class TestNoUnseededRng:
    def test_flags_legacy_np_random(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample():
                return np.random.rand(3)
            """,
            select=["RPR001"],
        )
        assert codes(report) == ["RPR001"]
        assert "np.random.rand" in report.findings[0].message

    def test_flags_entropy_seeded_default_rng(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from numpy.random import default_rng

            dotted = np.random.default_rng()
            bare = default_rng()
            """,
            select=["RPR001"],
        )
        assert codes(report) == ["RPR001", "RPR001"]

    def test_flags_stdlib_global_rng(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """,
            select=["RPR001"],
        )
        assert codes(report) == ["RPR001"]

    def test_seeded_generators_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random

            import numpy as np

            rng = np.random.default_rng(7)
            values = rng.random(3)
            shuffled = rng.permutation(5)
            local = random.Random(7)
            pick = local.choice([1, 2, 3])
            """,
            select=["RPR001"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# RPR002 wallclock-confinement
# ----------------------------------------------------------------------
class TestWallclockConfinement:
    def test_flags_bare_perf_counter(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def decide():
                return time.perf_counter()
            """,
            select=["RPR002"],
        )
        assert codes(report) == ["RPR002"]

    def test_flags_from_import_and_datetime_now(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import datetime
            from time import monotonic

            stamp = datetime.datetime.now()
            tick = monotonic()
            """,
            select=["RPR002"],
        )
        assert codes(report) == ["RPR002", "RPR002"]

    def test_out_of_scope_tests_tree_is_ignored(self, tmp_path):
        # RPR002's committed scope is src/ and benchmarks/ only.
        report = lint_snippet(
            tmp_path,
            """
            import time

            def test_something():
                return time.perf_counter()
            """,
            rel_path="tests/test_mod.py",
            select=["RPR002"],
        )
        assert report.clean

    def test_simulated_time_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def advance(clock_s, step_s):
                return clock_s + step_s
            """,
            select=["RPR002"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# RPR003 count-based-perf-gates
# ----------------------------------------------------------------------
class TestCountBasedPerfGates:
    def test_flags_wall_time_speedup_gate(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def test_speedup(run_slow, run_fast):
                start = time.perf_counter()
                run_slow()
                slow_s = time.perf_counter() - start
                start = time.perf_counter()
                run_fast()
                fast_s = time.perf_counter() - start
                speedup = slow_s / fast_s
                assert speedup >= 2.0
            """,
            rel_path="benchmarks/test_mod.py",
            select=["RPR003"],
        )
        assert codes(report) == ["RPR003"]
        assert "speedup" in report.findings[0].message

    def test_flags_timed_helper_taint(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def test_gate(fn):
                elapsed_s, result = _timed(fn)
                assert elapsed_s < 1.0
            """,
            rel_path="benchmarks/test_mod.py",
            select=["RPR003"],
        )
        assert codes(report) == ["RPR003"]

    def test_timed_unpack_does_not_taint_result(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def test_gate(fn):
                elapsed_s, result = _timed(fn)
                assert result.mapping == (0, 1)
            """,
            rel_path="benchmarks/test_mod.py",
            select=["RPR003"],
        )
        assert report.clean

    def test_count_gates_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def test_gate(counter):
                sequential_calls = counter()
                batched_calls = counter()
                assert sequential_calls >= 2 * batched_calls
            """,
            rel_path="benchmarks/test_mod.py",
            select=["RPR003"],
        )
        assert report.clean

    def test_modeled_decision_time_is_not_wallclock(self, tmp_path):
        # RuntimeCostModel.decision_time() is a deterministic modeled
        # cost -- a legitimate gate input, not a host-clock read.
        report = lint_snippet(
            tmp_path,
            """
            def test_gate(cost_model):
                cost_500 = cost_model.decision_time({"estimator_queries": 500})
                cost_1500 = cost_model.decision_time({"estimator_queries": 1500})
                assert cost_1500 >= 2.9 * cost_500
            """,
            rel_path="benchmarks/test_mod.py",
            select=["RPR003"],
        )
        assert report.clean

    def test_nested_function_assert_reported_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def test_gate(fn):
                def run():
                    elapsed_s, _ = _timed(fn)
                    assert elapsed_s < 1.0
                run()
            """,
            rel_path="benchmarks/test_mod.py",
            select=["RPR003"],
        )
        assert codes(report) == ["RPR003"]


# ----------------------------------------------------------------------
# RPR004 batch-invariance
# ----------------------------------------------------------------------
class TestBatchInvariance:
    REL = "src/repro/nn/functional.py"

    def test_flags_stacked_gemm(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def score(batch, weight):
                return np.matmul(batch, weight)
            """,
            rel_path=self.REL,
            select=["RPR004"],
        )
        assert codes(report) == ["RPR004"]

    def test_flags_matmul_operator(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def affine(x, weight):
                return x @ weight.T
            """,
            rel_path=self.REL,
            select=["RPR004"],
        )
        assert codes(report) == ["RPR004"]

    def test_flags_batch_axis_reduction(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def normalize(x):
                axes = (0, 2, 3)
                return x.mean(axis=axes, keepdims=True)
            """,
            rel_path=self.REL,
            select=["RPR004"],
        )
        assert codes(report) == ["RPR004"]

    def test_broadcast_expansion_is_evidence(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def per_sample(x, weight):
                return np.matmul(x[:, None, :], weight.T)[:, 0, :]
            """,
            rel_path=self.REL,
            select=["RPR004"],
        )
        assert report.clean

    def test_rowwise_function_and_comment_are_evidence(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def linear_rowwise(x, weight):
                return x @ weight.T

            def conv(w_mat, cols):
                # Per-sample batched GEMM: the shared weight broadcasts.
                return np.matmul(w_mat, cols)
            """,
            rel_path=self.REL,
            select=["RPR004"],
        )
        assert report.clean

    def test_backward_closures_and_feature_axes_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def op(x, weight):
                def backward(grad):
                    return grad @ weight
                return x.sum(axis=1), backward
            """,
            rel_path=self.REL,
            select=["RPR004"],
        )
        assert report.clean

    def test_out_of_scope_training_module_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def loss(x, w):
                return np.matmul(x, w).mean(axis=0)
            """,
            rel_path="src/repro/estimator/training.py",
            select=["RPR004"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# RPR005 canonical-cache-keys
# ----------------------------------------------------------------------
class TestCanonicalCacheKeys:
    def test_flags_inline_signature_in_serving_stack(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def cache_key(names):
                return tuple(sorted(names))
            """,
            rel_path="src/repro/engine.py",
            select=["RPR005"],
        )
        assert codes(report) == ["RPR005"]
        assert "canonical_signature" in report.findings[0].message

    def test_flags_id_and_inline_tuple_keys(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def lookup(cache, workload, names):
                first = cache[id(workload)]
                second = cache.get(tuple(names))
                return first, second
            """,
            select=["RPR005"],
        )
        assert codes(report) == ["RPR005", "RPR005"]

    def test_canonical_helper_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from .workloads.mix import canonical_signature

            def cache_key(cache, names):
                return cache.get(canonical_signature(names))
            """,
            rel_path="src/repro/engine.py",
            select=["RPR005"],
        )
        assert report.clean

    def test_inline_signature_outside_serving_stack_passes(self, tmp_path):
        # tuple(sorted(...)) is only a *mix signature* by construction
        # inside the serving-stack modules.
        report = lint_snippet(
            tmp_path,
            """
            def stable(values):
                return tuple(sorted(values))
            """,
            rel_path="src/repro/sim/mapping.py",
            select=["RPR005"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# RPR006 export-docs-sync
# ----------------------------------------------------------------------
class TestExportDocsSync:
    def _write(self, tmp_path, exports, doc_text):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        names = ", ".join(f'"{name}"' for name in exports)
        (package / "__init__.py").write_text(f"__all__ = [{names}]\n")
        doc = tmp_path / "docs"
        doc.mkdir()
        (doc / "architecture.md").write_text(doc_text)

    def test_flags_undocumented_export(self, tmp_path):
        self._write(
            tmp_path,
            ["Documented", "Orphan"],
            "API rows: `Documented` does things.\n",
        )
        report = run_lint(
            paths=["src"],
            config=LintConfig().with_selection(select=("RPR006",)),
            root=tmp_path,
        )
        assert codes(report) == ["RPR006"]
        assert "Orphan" in report.findings[0].message

    def test_documented_exports_and_exemptions_pass(self, tmp_path):
        self._write(
            tmp_path,
            ["Documented", "__version__"],
            "API rows: `Documented` does things.\n",
        )
        report = run_lint(
            paths=["src"],
            config=LintConfig().with_selection(select=("RPR006",)),
            root=tmp_path,
        )
        assert report.clean

    def test_missing_api_doc_is_a_finding(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text('__all__ = ["Thing"]\n')
        report = run_lint(
            paths=["src"],
            config=LintConfig().with_selection(select=("RPR006",)),
            root=tmp_path,
        )
        assert codes(report) == ["RPR006"]
        assert "missing" in report.findings[0].message


# ----------------------------------------------------------------------
# RPR007 mutable-default-args
# ----------------------------------------------------------------------
class TestMutableDefaultArgs:
    def test_flags_literal_and_constructor_defaults(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def enqueue(item, queue=[]):
                queue.append(item)
                return queue

            def tally(key, *, counts=dict()):
                return counts.setdefault(key, 0)
            """,
            select=["RPR007"],
        )
        assert codes(report) == ["RPR007", "RPR007"]

    def test_none_and_immutable_defaults_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def enqueue(item, queue=None, limit=8, label=""):
                queue = [] if queue is None else queue
                queue.append(item)
                return queue
            """,
            select=["RPR007"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# RPR008 bare-except
# ----------------------------------------------------------------------
class TestBareExcept:
    def test_flags_bare_except(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            select=["RPR008"],
        )
        assert codes(report) == ["RPR008"]

    def test_named_exception_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """,
            select=["RPR008"],
        )
        assert report.clean


# ----------------------------------------------------------------------
# RPR009 serving-path-fault-visibility
# ----------------------------------------------------------------------
class TestServingPathFaultVisibility:
    def test_flags_silent_swallow_in_serving_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drive(jobs):
                try:
                    return search(jobs)
                except RuntimeError:
                    return None
            """,
            rel_path="src/repro/engine.py",
            select=["RPR009"],
        )
        assert codes(report) == ["RPR009"]

    def test_out_of_scope_module_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drive(jobs):
                try:
                    return search(jobs)
                except RuntimeError:
                    return None
            """,
            rel_path="src/repro/evaluation/metrics.py",
            select=["RPR009"],
        )
        assert report.clean

    def test_reraise_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drive(jobs):
                try:
                    return search(jobs)
                except RuntimeError as error:
                    raise ValueError("wrapped") from error
            """,
            rel_path="src/repro/engine.py",
            select=["RPR009"],
        )
        assert report.clean

    def test_record_hook_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drive(self, jobs):
                try:
                    return search(jobs)
                except RuntimeError:
                    self.ladder.record_fault()
                    return None
            """,
            rel_path="src/repro/engine.py",
            select=["RPR009"],
        )
        assert report.clean

    def test_stats_counter_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drive(self, jobs):
                try:
                    return search(jobs)
                except RuntimeError:
                    self._stats.faults_detected += 1
                    return None
            """,
            rel_path="src/repro/slo.py",
            select=["RPR009"],
        )
        assert report.clean

    def test_fallback_counter_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def choose(self, feasible, load):
                try:
                    return self.score(feasible)
                except RuntimeError:
                    self.greedy_fallbacks += 1
                    return self.greedy(feasible, load)
            """,
            rel_path="src/repro/fleet/placement.py",
            select=["RPR009"],
        )
        assert report.clean

    def test_unrelated_counter_still_flags(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drive(self, jobs):
                try:
                    return search(jobs)
                except RuntimeError:
                    self.retries += 1
                    return None
            """,
            rel_path="src/repro/engine.py",
            select=["RPR009"],
        )
        assert codes(report) == ["RPR009"]

    def test_stop_iteration_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def advance(job):
                try:
                    return next(job.gen)
                except StopIteration as stop:
                    return stop.value
            """,
            rel_path="src/repro/engine.py",
            select=["RPR009"],
        )
        assert report.clean

    def test_pragma_suppresses_with_reason(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return parse(path)
                except ValueError:  # repro: lint-ignore[RPR009] -- the swallow is the recovery
                    return None
            """,
            rel_path="src/repro/resilience/checkpoint.py",
            select=["RPR009"],
        )
        assert report.clean
        assert report.suppressed


# ----------------------------------------------------------------------
# RPR010 bounded-serving-caches
# ----------------------------------------------------------------------
class TestBoundedServingCaches:
    def test_flags_dict_literal_cache_in_serving_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Engine:
                def __init__(self):
                    self._decision_cache = {}
            """,
            rel_path="src/repro/engine.py",
            select=["RPR010"],
        )
        assert codes(report) == ["RPR010"]
        assert "ShardedDecisionCache" in report.findings[0].message

    def test_flags_constructor_and_list_caches(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from collections import OrderedDict

            class Service:
                def __init__(self):
                    self._eval_cache = OrderedDict()
                    self.result_cache: dict = dict()
                    reply_cache = []
            """,
            rel_path="src/repro/service.py",
            select=["RPR010"],
        )
        assert codes(report) == ["RPR010", "RPR010", "RPR010"]

    def test_bounded_cache_and_non_cache_names_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.frontdoor import ShardedDecisionCache

            class Engine:
                def __init__(self):
                    self._decision_cache = ShardedDecisionCache(
                        num_shards=4, shard_capacity=128
                    )
                    self._pending = {}
                    self._cache_capacity = 128
            """,
            rel_path="src/repro/engine.py",
            select=["RPR010"],
        )
        assert report.clean

    def test_out_of_scope_module_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Trainer:
                def __init__(self):
                    self._grad_cache = {}
            """,
            rel_path="src/repro/estimator/training.py",
            select=["RPR010"],
        )
        assert report.clean

    def test_pragma_suppresses_with_reason(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Engine:
                def __init__(self):
                    self._probe_cache = {}  # repro: lint-ignore[RPR010] -- bounded by the fixed probe set
            """,
            rel_path="src/repro/engine.py",
            select=["RPR010"],
        )
        assert report.clean
        assert report.suppressed
