"""Tests for the named application and churn scenarios."""

import pytest

from repro.sim import BoardSimulator, Mapping
from repro.workloads.scenarios import SCENARIOS, Scenario, scenario, scenario_names
from repro.workloads import (
    ArrivalTrace,
    Workload,
    churn_scenario,
    churn_scenario_names,
    fleet_scenario,
    fleet_scenario_names,
)


class TestRegistry:
    def test_names_non_empty(self):
        assert len(scenario_names()) >= 4

    def test_lookup(self):
        preset = scenario("ar-headset")
        assert preset.workload.num_dnns == 3

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("toaster")

    def test_all_scenarios_well_formed(self):
        for preset in SCENARIOS.values():
            assert preset.description
            assert len(preset.offered_rates) == preset.workload.num_dnns
            assert all(rate > 0 for rate in preset.offered_rates)

    def test_scenarios_fit_board_residency(self, platform):
        for preset in SCENARIOS.values():
            assert preset.workload.num_dnns <= platform.memory.max_residency


class TestValidation:
    def test_rate_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rates"):
            Scenario(
                name="bad",
                description="x",
                workload=Workload.from_names(["alexnet", "vgg16"]),
                offered_rates=(1.0,),
            )

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Scenario(
                name="bad",
                description="x",
                workload=Workload.from_names(["alexnet"]),
                offered_rates=(0.0,),
            )


class TestSimulation:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_simulates(self, simulator, name):
        preset = scenario(name)
        mapping = Mapping.single_device(preset.workload.models, 0)
        result = simulator.simulate(
            preset.workload.models, mapping, offered_rates=preset.offered_rates
        )
        assert (result.rates > 0).all()
        # Rates never exceed the application's demand.
        for rate, offered in zip(result.rates, preset.offered_rates):
            assert rate <= offered + 1e-9


class TestSLOChurnScenarios:
    """The SLO-layer scenarios: priority-storm and slo-squeeze."""

    NAMES = ("priority-storm", "slo-squeeze")

    def test_registered_for_single_board_and_fleet(self):
        for name in self.NAMES:
            assert name in churn_scenario_names()
            assert name in fleet_scenario_names()
            assert fleet_scenario(name).build_trace is not None

    @pytest.mark.parametrize("name", NAMES)
    def test_seeded_determinism(self, name):
        first = churn_scenario(name, seed=11)
        second = churn_scenario(name, seed=11)
        assert isinstance(first, ArrivalTrace)
        assert first.events == second.events
        assert first.name == name

    @pytest.mark.parametrize("name", NAMES)
    def test_seeds_vary_the_trace(self, name):
        assert (
            churn_scenario(name, seed=0).events
            != churn_scenario(name, seed=1).events
        )

    @pytest.mark.parametrize("name", NAMES)
    def test_fits_board_residency(self, name, platform):
        trace = churn_scenario(name, seed=0)
        assert trace.max_concurrency <= platform.memory.max_residency

    def test_priority_storm_mixes_priorities(self):
        trace = churn_scenario("priority-storm", seed=0)
        priorities = {
            event.priority for event in trace if event.kind == "arrival"
        }
        # Anchors at priority 0 under a storm of priorities 1-3 — the
        # spread preemption needs to have victims AND protected tenants.
        assert 0 in priorities
        assert priorities - {0}
        assert max(priorities) <= 3

    def test_slo_squeeze_is_two_tier(self):
        trace = churn_scenario("slo-squeeze", seed=0)
        by_priority = {}
        for event in trace:
            if event.kind == "arrival":
                by_priority.setdefault(event.priority, set()).add(event.model)
        # Heavy anchors hold the board at priority 0; the latency-
        # sensitive stream arrives entirely at priority 2.
        assert set(by_priority) == {0, 2}
        assert by_priority[2] <= {
            "mobilenet",
            "squeezenet",
            "alexnet",
            "resnet34",
        }

    @pytest.mark.parametrize("name", NAMES)
    def test_fleet_variant_builds_mixes_too(self, name):
        preset = fleet_scenario(name)
        mixes = preset.build_mixes(0)
        assert mixes
        assert [mix.model_names for mix in mixes] == [
            mix.model_names for mix in preset.build_mixes(0)
        ]
