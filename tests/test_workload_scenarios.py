"""Tests for the named application scenarios."""

import pytest

from repro.sim import BoardSimulator, Mapping
from repro.workloads.scenarios import SCENARIOS, Scenario, scenario, scenario_names
from repro.workloads import Workload


class TestRegistry:
    def test_names_non_empty(self):
        assert len(scenario_names()) >= 4

    def test_lookup(self):
        preset = scenario("ar-headset")
        assert preset.workload.num_dnns == 3

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("toaster")

    def test_all_scenarios_well_formed(self):
        for preset in SCENARIOS.values():
            assert preset.description
            assert len(preset.offered_rates) == preset.workload.num_dnns
            assert all(rate > 0 for rate in preset.offered_rates)

    def test_scenarios_fit_board_residency(self, platform):
        for preset in SCENARIOS.values():
            assert preset.workload.num_dnns <= platform.memory.max_residency


class TestValidation:
    def test_rate_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rates"):
            Scenario(
                name="bad",
                description="x",
                workload=Workload.from_names(["alexnet", "vgg16"]),
                offered_rates=(1.0,),
            )

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Scenario(
                name="bad",
                description="x",
                workload=Workload.from_names(["alexnet"]),
                offered_rates=(0.0,),
            )


class TestSimulation:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_simulates(self, simulator, name):
        preset = scenario(name)
        mapping = Mapping.single_device(preset.workload.models, 0)
        result = simulator.simulate(
            preset.workload.models, mapping, offered_rates=preset.offered_rates
        )
        assert (result.rates > 0).all()
        # Rates never exceed the application's demand.
        for rate, offered in zip(result.rates, preset.offered_rates):
            assert rate <= offered + 1e-9
