"""Module system and layer tests."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tensor,
)


class TestModuleRegistration:
    def test_parameters_collected_recursively(self):
        net = Sequential(Conv2d(3, 4, 3), Linear(4, 2))
        # conv w+b, linear w+b
        assert len(net.parameters()) == 4

    def test_named_parameters_have_paths(self):
        net = Sequential(Linear(4, 2))
        names = dict(net.named_parameters())
        assert "layer0.weight" in names
        assert "layer0.bias" in names

    def test_num_parameters_counts_elements(self):
        layer = Linear(4, 2)
        assert layer.num_parameters() == 4 * 2 + 2

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        net = Sequential(BatchNorm2d(3), Sequential(BatchNorm2d(3)))
        net.eval()
        assert all(not module.training for module in net)
        net.train()
        assert all(module.training for module in net)


class TestStateDict:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        source = Sequential(Conv2d(3, 4, 3, rng=rng), Linear(4, 2, rng=rng))
        target = Sequential(Conv2d(3, 4, 3), Linear(4, 2))
        path = str(tmp_path / "weights.npz")
        source.save(path)
        target.load(path)
        for a, b in zip(source.parameters(), target.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_missing_key_rejected(self):
        layer = Linear(3, 2)
        with pytest.raises(KeyError, match="missing"):
            layer.load_state_dict({"weight": np.ones((2, 3))})

    def test_shape_mismatch_rejected(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        state["weight"] = np.ones((5, 5))
        with pytest.raises(ValueError, match="shape"):
            layer.load_state_dict(state)

    def test_buffers_saved(self):
        norm = BatchNorm2d(3)
        norm(Tensor(np.random.default_rng(0).normal(size=(4, 3, 2, 2))))
        state = norm.state_dict()
        assert "running_mean" in state
        assert not np.allclose(state["running_mean"], 0.0)


class TestConv2dLayer:
    def test_output_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias_option(self):
        layer = Conv2d(3, 8, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_deterministic_init_with_rng(self):
        a = Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        b = Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestBatchNorm2dLayer:
    def test_training_updates_running_stats(self):
        norm = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(16, 2, 4, 4)))
        norm(x)
        assert not np.allclose(norm.running_mean, 0.0)
        assert not np.allclose(norm.running_var, 1.0)

    def test_eval_uses_running_stats(self):
        norm = BatchNorm2d(2)
        rng = np.random.default_rng(0)
        for _ in range(20):
            norm(Tensor(rng.normal(1.0, 2.0, size=(16, 2, 4, 4))))
        norm.eval()
        x = Tensor(rng.normal(1.0, 2.0, size=(4, 2, 4, 4)))
        out = norm(x).numpy()
        # Output should be roughly standardized using the running stats.
        assert abs(out.mean()) < 0.3

    def test_eval_is_deterministic_function(self):
        norm = BatchNorm2d(2)
        norm.eval()
        x = Tensor(np.ones((1, 2, 2, 2)))
        np.testing.assert_array_equal(norm(x).numpy(), norm(x).numpy())


class TestSimpleLayers:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [0.0, 2.0])

    def test_gelu_close_to_relu_for_large_values(self):
        out = GELU()(Tensor(np.array([10.0])))
        assert out.numpy()[0] == pytest.approx(10.0, rel=1e-4)

    def test_maxpool_layer(self):
        out = MaxPool2d(2)(Tensor(np.arange(16.0).reshape(1, 1, 4, 4)))
        assert out.shape == (1, 1, 2, 2)

    def test_global_pool_and_flatten(self):
        out = Flatten()(GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4)))))
        assert out.shape == (2, 3)

    def test_sequential_iteration_and_len(self):
        net = Sequential(ReLU(), GELU())
        assert len(net) == 2
        assert len(list(net)) == 2

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.ones(1)))
