"""Tests for pipeline compilation and stage pricing."""

import pytest

from repro.hw import KernelCostModel, hikey970, GPU_ID, BIG_CPU_ID, LITTLE_CPU_ID
from repro.models import build_model
from repro.sim import Mapping, compile_pipelines, layer_latency


@pytest.fixture(scope="module")
def platform():
    return hikey970()


@pytest.fixture(scope="module")
def cost_model():
    return KernelCostModel()


@pytest.fixture(scope="module")
def alexnet():
    return build_model("alexnet")


class TestLayerLatency:
    def test_positive(self, platform, cost_model, alexnet):
        for device in platform.devices:
            for index in range(alexnet.num_layers):
                assert (
                    layer_latency(alexnet, index, device.device_id, platform, cost_model)
                    > 0
                )

    def test_gpu_faster_on_big_conv(self, platform, cost_model, alexnet):
        conv_index = 1  # conv2, clearly compute-bound
        gpu = layer_latency(alexnet, conv_index, GPU_ID, platform, cost_model)
        little = layer_latency(alexnet, conv_index, LITTLE_CPU_ID, platform, cost_model)
        assert gpu < little


class TestCompilePipelines:
    def test_single_stage_no_transfers(self, platform, cost_model, alexnet):
        mapping = Mapping.single_device([alexnet], GPU_ID)
        (plan,) = compile_pipelines([alexnet], mapping, platform, cost_model)
        assert plan.num_stages == 1
        assert plan.total_transfer_time == 0.0
        assert plan.bottleneck_time == plan.total_service_time

    def test_stage_compute_sums_layer_latencies(
        self, platform, cost_model, alexnet
    ):
        mapping = Mapping.single_device([alexnet], BIG_CPU_ID)
        (plan,) = compile_pipelines([alexnet], mapping, platform, cost_model)
        expected = sum(
            layer_latency(alexnet, index, BIG_CPU_ID, platform, cost_model)
            for index in range(alexnet.num_layers)
        )
        assert plan.stages[0].compute_time == pytest.approx(expected)

    def test_split_adds_transfer(self, platform, cost_model, alexnet):
        mapping = Mapping([[GPU_ID] * 4 + [BIG_CPU_ID] * 4])
        (plan,) = compile_pipelines([alexnet], mapping, platform, cost_model)
        assert plan.num_stages == 2
        handoff_bytes = alexnet.layers[3].output_bytes
        expected = platform.transfer_time(GPU_ID, BIG_CPU_ID, handoff_bytes)
        assert plan.stages[1].transfer_time == pytest.approx(expected)
        assert plan.stages[0].transfer_time == 0.0

    def test_work_on_device_partitions_total(self, platform, cost_model, alexnet):
        mapping = Mapping([[GPU_ID] * 3 + [BIG_CPU_ID] * 3 + [LITTLE_CPU_ID] * 2])
        (plan,) = compile_pipelines([alexnet], mapping, platform, cost_model)
        split_sum = sum(
            plan.work_on_device(device.device_id) for device in platform.devices
        )
        assert split_sum == pytest.approx(plan.total_service_time)

    def test_bottleneck_is_max_stage(self, platform, cost_model, alexnet):
        mapping = Mapping([[GPU_ID] * 4 + [LITTLE_CPU_ID] * 4])
        (plan,) = compile_pipelines([alexnet], mapping, platform, cost_model)
        assert plan.bottleneck_time == max(
            stage.service_time for stage in plan.stages
        )

    def test_invalid_mapping_rejected(self, platform, cost_model, alexnet):
        mapping = Mapping([[0] * 4])  # wrong layer count
        with pytest.raises(ValueError):
            compile_pipelines([alexnet], mapping, platform, cost_model)

    def test_multi_dnn_plans_aligned(self, platform, cost_model):
        models = [build_model("alexnet"), build_model("squeezenet")]
        mapping = Mapping.single_device(models, GPU_ID)
        plans = compile_pipelines(models, mapping, platform, cost_model)
        assert [plan.model_name for plan in plans] == ["alexnet", "squeezenet"]
