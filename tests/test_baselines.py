"""Baseline scheduler tests: GPU-only, MOSAIC, GA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GAConfig,
    GeneticScheduler,
    GpuOnlyScheduler,
    LayerLatencyRegression,
    MosaicScheduler,
    SingleDeviceScheduler,
    StaticCostModel,
    merge_redundant_stages,
)
from repro.hw import GPU_ID, cpu_only_board, hikey970
from repro.sim import KernelProfiler
from repro.workloads import Workload


@pytest.fixture(scope="module")
def platform():
    return hikey970()


@pytest.fixture(scope="module")
def mix():
    return Workload.from_names(["alexnet", "vgg19", "mobilenet"])


class TestGpuOnly:
    def test_maps_everything_to_gpu(self, platform, mix):
        decision = GpuOnlyScheduler(platform).schedule(mix)
        assert decision.mapping.devices_used() == (GPU_ID,)
        decision.mapping.validate(mix.models, platform.num_devices)

    def test_zero_decision_cost(self, platform, mix):
        decision = GpuOnlyScheduler(platform).schedule(mix)
        assert decision.cost == {}

    def test_gpu_less_platform_falls_back_to_strongest(self, mix):
        board = cpu_only_board()
        decision = GpuOnlyScheduler(board).schedule(mix)
        strongest = max(board.devices, key=lambda d: d.peak_gflops).device_id
        assert decision.mapping.devices_used() == (strongest,)

    def test_single_device_scheduler_validates(self):
        with pytest.raises(ValueError):
            SingleDeviceScheduler(-1)


class TestMergeRedundantStages:
    def test_noop_below_cap(self):
        assert merge_redundant_stages([0, 0, 1, 1], 3) == [0, 0, 1, 1]

    def test_merges_to_cap(self):
        row = [0, 1, 2, 0, 1]
        merged = merge_redundant_stages(row, 3)
        stages = 1 + sum(1 for a, b in zip(merged, merged[1:]) if a != b)
        assert stages <= 3
        assert len(merged) == len(row)

    def test_cap_one_gives_single_device(self):
        merged = merge_redundant_stages([0, 1, 2, 1, 0, 1], 1)
        assert len(set(merged)) == 1

    def test_preserves_length_always(self):
        row = [2, 0, 0, 1, 2, 2, 1, 0]
        assert len(merge_redundant_stages(row, 2)) == len(row)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            merge_redundant_stages([0, 1], 0)

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=40),
        st.integers(1, 3),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_stage_cap_and_length(self, row, cap):
        merged = merge_redundant_stages(row, cap)
        assert len(merged) == len(row)
        stages = 1 + sum(1 for a, b in zip(merged, merged[1:]) if a != b)
        assert stages <= cap
        assert set(merged) <= set(row)


class TestMosaic:
    @pytest.fixture(scope="class")
    def regression(self, platform):
        from repro.models import build_all_models

        profiler = KernelProfiler(platform)
        return LayerLatencyRegression(platform.num_devices).fit(
            build_all_models(), profiler, repetitions=3, seed=0
        )

    def test_training_points_scale(self, regression):
        from repro.models import build_all_models

        total_layers = sum(model.num_layers for model in build_all_models())
        assert regression.training_points == 3 * total_layers * 3

    def test_fourteen_thousand_points_with_twenty_reps(self, platform):
        """The paper notes MOSAIC is trained on >14,000 data points."""
        from repro.models import build_all_models

        profiler = KernelProfiler(platform)
        regression = LayerLatencyRegression(platform.num_devices).fit(
            build_all_models(), profiler, repetitions=20, seed=0
        )
        assert regression.training_points > 12000

    def test_prediction_positive(self, regression):
        from repro.models import build_model

        model = build_model("vgg19")
        for layer in model.layers:
            for device in range(3):
                assert regression.predict(layer, device) > 0

    def test_predictions_correlate_with_truth(self, regression, platform):
        from repro.models import build_model
        from repro.sim import BoardSimulator

        sim = BoardSimulator(platform)
        model = build_model("vgg16")
        truth = [sim.layer_latency(model, i, 0) for i in range(model.num_layers)]
        predicted = regression.predict_model(model)[0]
        correlation = np.corrcoef(truth, predicted)[0, 1]
        assert correlation > 0.95

    def test_unfitted_regression_rejected(self):
        from repro.models import build_model

        fresh = LayerLatencyRegression(3)
        with pytest.raises(RuntimeError, match="before fit"):
            fresh.predict(build_model("alexnet").layers[0], 0)

    def test_mapping_valid_and_capped(self, regression, platform, mix):
        scheduler = MosaicScheduler(platform, regression)
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, platform.num_devices)
        assert decision.mapping.max_stages <= 3

    def test_deterministic(self, regression, platform, mix):
        scheduler = MosaicScheduler(platform, regression)
        assert scheduler.schedule(mix).mapping == scheduler.schedule(mix).mapping

    def test_splits_heavy_models(self, regression, platform):
        """MOSAIC's point: pipeline-slicing a heavy DNN beats running it
        whole on one device (by its own latency model)."""
        mix = Workload.from_names(["vgg19"])
        decision = MosaicScheduler(platform, regression).schedule(mix)
        assert decision.mapping.num_stages(0) >= 2

    def test_cost_counters(self, regression, platform, mix):
        decision = MosaicScheduler(platform, regression).schedule(mix)
        assert decision.cost["regression_queries"] > 0
        assert decision.cost["training_points"] == regression.training_points


class TestGA:
    @pytest.fixture(scope="class")
    def cost_model(self, platform):
        from repro.models import build_all_models

        table = KernelProfiler(platform).profile(build_all_models(), seed=0)
        return StaticCostModel(platform, table)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)
        with pytest.raises(ValueError):
            GAConfig(generations=0)
        with pytest.raises(ValueError):
            GAConfig(mutation_rate=1.5)
        with pytest.raises(ValueError):
            GAConfig(elite_count=24, population_size=24)

    def test_mapping_valid(self, cost_model, mix):
        scheduler = GeneticScheduler(
            cost_model, GAConfig(population_size=8, generations=4, seed=0)
        )
        decision = scheduler.schedule(mix)
        decision.mapping.validate(mix.models, 3)
        assert decision.mapping.max_stages <= 3

    def test_fitness_evaluation_count(self, cost_model, mix):
        config = GAConfig(population_size=8, generations=4, seed=0)
        decision = GeneticScheduler(cost_model, config).schedule(mix)
        assert decision.cost["fitness_evaluations"] == 8 * 4

    def test_deterministic_under_seed(self, cost_model, mix):
        config = GAConfig(population_size=8, generations=4, seed=5)
        a = GeneticScheduler(cost_model, config).schedule(mix)
        b = GeneticScheduler(cost_model, config).schedule(mix)
        assert a.mapping == b.mapping

    def test_evolution_improves_over_first_generation(self, cost_model, mix):
        short = GeneticScheduler(
            cost_model, GAConfig(population_size=10, generations=1, seed=2)
        ).schedule(mix)
        long = GeneticScheduler(
            cost_model, GAConfig(population_size=10, generations=12, seed=2)
        ).schedule(mix)
        assert long.expected_score >= short.expected_score

    def test_estimate_batch_matches_scalar(self, cost_model, mix):
        import numpy as np

        from repro.workloads.generator import random_contiguous_mapping

        rng = np.random.default_rng(4)
        mappings = [
            random_contiguous_mapping(mix.models, 3, rng) for _ in range(10)
        ]
        batched = cost_model.estimate_batch(mix, mappings)
        scalar = [cost_model.estimate(mix, mapping) for mapping in mappings]
        assert batched.shape == (10,)
        assert list(batched) == scalar

    def test_fitness_cache_is_result_neutral(self, cost_model, mix):
        config = GAConfig(population_size=8, generations=6, seed=3)
        plain = GeneticScheduler(cost_model, config).schedule(mix)
        cached_scheduler = GeneticScheduler(
            cost_model, config, cache_fitness=True
        )
        cached = cached_scheduler.schedule(mix)
        assert cached.mapping == plain.mapping
        assert cached.expected_score == plain.expected_score
        # Elites survive every generation, so memoization must save
        # re-pricings -- and the honest counter reflects only the
        # distinct evaluations performed.
        assert cached.cost["fitness_evaluations"] < plain.cost[
            "fitness_evaluations"
        ]

    def test_static_model_ignores_thrash(self, cost_model):
        """The GA's belief for a heavy GPU-only mapping must be far
        more optimistic than the board's measured outcome -- that bias
        is the paper's criticism of static estimators."""
        from repro.sim import BoardSimulator, Mapping

        heavy = Workload.from_names(["vgg19", "inception_v4", "resnet101"])
        mapping = Mapping.single_device(heavy.models, GPU_ID)
        belief = cost_model.estimate(heavy, mapping)
        actual = (
            BoardSimulator(cost_model.platform)
            .simulate(heavy.models, mapping)
            .average_throughput
        )
        assert belief > 1.5 * actual

    def test_unprofiled_model_rejected(self, platform):
        from repro.sim import LatencyTable, Mapping

        empty_table = LatencyTable(platform_name="x", tables={})
        model = StaticCostModel(platform, empty_table)
        mix = Workload.from_names(["alexnet"])
        with pytest.raises(KeyError, match="profiled"):
            model.estimate(mix, Mapping.single_device(mix.models, 0))
