"""Crash-consistent checkpointing tests: the journal and resume sweeps.

The acceptance bar: a journaled replay SIGKILLed after *any* committed
event group resumes byte-identically to the uninterrupted run — pinned
by resuming from the journal truncated at every group boundary, for
both the single-board engine and a chaos-bearing fleet.
"""

import json
import time

import pytest

from repro.builder import SystemBuilder
from repro.core import MCTSConfig
from repro.fleet import Cluster, FleetService
from repro.online import OnlineConfig
from repro.resilience import (
    JOURNAL_FORMAT,
    FaultPlan,
    ResiliencePolicy,
    TraceJournal,
    trace_fingerprint,
)
from repro.service import SchedulingService
from repro.slo import SLOPolicy
from repro.workloads import ChaosPlan, FailureEvent, churn_scenario

_ESTIMATOR = {"num_training_samples": 40, "epochs": 3}
_MCTS = MCTSConfig(budget=20, seed=13)
_ONLINE = OnlineConfig(warm_patience=20)
_EVENTS = 4
_POLICY = ResiliencePolicy(
    faults=FaultPlan.single("estimator-nan", at_call=2)
)


def _trace(events=_EVENTS):
    return churn_scenario("estimator-brownout").truncated(events)


def _builder(seed=29):
    return (
        SystemBuilder(seed=seed)
        .with_estimator(**_ESTIMATOR)
        .with_mcts_config(_MCTS)
    )


def _service():
    return SchedulingService(_builder(), resilience=_POLICY)


def _canonical(report):
    return json.dumps(report.to_dict(), sort_keys=True)


def _pinned(fn, *args, **kwargs):
    """Call with host timers pinned so reports compare byte-for-byte."""
    real = time.perf_counter
    time.perf_counter = lambda: 0.0
    try:
        return fn(*args, **kwargs)
    finally:
        time.perf_counter = real


def _truncate(journal_path, target, keep_groups):
    """Copy a journal keeping the header plus ``keep_groups`` lines."""
    lines = journal_path.read_text().splitlines(keepends=True)
    target.write_text("".join(lines[: 1 + keep_groups]))


# ----------------------------------------------------------------------
# TraceJournal (pure file-format properties)
# ----------------------------------------------------------------------
class TestTraceJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = TraceJournal.create(path, {"surface": "test", "trace": "x"})
        journal.append_group(0, 2, [{"event": "arrival"}], {"counter": 1})
        journal.append_group(1, 1, [], {"counter": 2})
        journal.close()
        header, entries, _ = TraceJournal.load(path)
        assert header["format"] == JOURNAL_FORMAT
        assert header["surface"] == "test"
        assert [e["position"] for e in entries] == [0, 1]
        assert entries[0]["records"] == [{"event": "arrival"}]
        assert entries[1]["state"] == {"counter": 2}

    def test_closed_journal_rejects_appends(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = TraceJournal.create(path, {})
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append_group(0, 1, [], {})

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = TraceJournal.create(str(path), {"trace": "x"})
        journal.append_group(0, 1, [], {"counter": 1})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "group", "position": 1, "rec')  # SIGKILL
        header, entries, _ = TraceJournal.load(str(path))
        assert len(entries) == 1

    def test_resume_truncates_the_torn_tail_on_disk(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = TraceJournal.create(str(path), {"trace": "x"})
        journal.append_group(0, 1, [], {"counter": 1})
        journal.close()
        good_size = path.stat().st_size
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        resumed, header, entries = TraceJournal.resume(str(path))
        assert path.stat().st_size == good_size
        resumed.append_group(1, 1, [], {"counter": 2})
        resumed.close()
        _, entries, _ = TraceJournal.load(str(path))
        assert [e["position"] for e in entries] == [0, 1]

    def test_interior_corruption_is_an_error(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = TraceJournal.create(str(path), {"trace": "x"})
        journal.append_group(0, 1, [], {})
        journal.append_group(1, 1, [], {})
        journal.close()
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = '{"kind": "group", "pos\n'
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match="corrupt at line 2"):
            TraceJournal.load(str(path))

    def test_missing_header_is_an_error(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text('{"kind": "group", "position": 0}\n')
        with pytest.raises(ValueError, match="no header"):
            TraceJournal.load(str(path))

    def test_format_mismatch_is_an_error(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text('{"kind": "header", "format": 999}\n')
        with pytest.raises(ValueError, match="format"):
            TraceJournal.load(str(path))

    def test_out_of_order_entries_are_an_error(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = TraceJournal.create(str(path), {})
        journal.append_group(0, 1, [], {})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"kind": "group", "position": 5, "events": 1,
                     "records": [], "state": {}}
                )
                + "\n"
            )
        with pytest.raises(ValueError, match="out of order"):
            TraceJournal.load(str(path))

    def test_fingerprint_is_stable_and_content_sensitive(self):
        trace = _trace()
        assert trace_fingerprint(trace) == trace_fingerprint(trace)
        assert trace_fingerprint(trace) != trace_fingerprint(
            trace.truncated(_EVENTS - 1)
        )


# ----------------------------------------------------------------------
# Engine resume sweep (the core acceptance property)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_control(tmp_path_factory):
    """One uninterrupted journaled run: (journal path, canonical report)."""
    root = tmp_path_factory.mktemp("engine-journal")
    path = root / "control.journal"
    report = _pinned(
        _service().run_trace, _trace(), online=_ONLINE, checkpoint=str(path)
    )
    return path, _canonical(report)


class TestEngineResume:
    def test_journaling_does_not_change_the_replay(self, engine_control):
        _, control = engine_control
        report = _pinned(_service().run_trace, _trace(), online=_ONLINE)
        assert _canonical(report) == control

    def test_resume_at_every_group_is_byte_identical(
        self, engine_control, tmp_path
    ):
        journal_path, control = engine_control
        groups = len(journal_path.read_text().splitlines()) - 1
        assert groups >= 2
        for keep in range(groups + 1):
            partial = tmp_path / f"crash-{keep}.journal"
            _truncate(journal_path, partial, keep)
            report = _pinned(
                _service().resume_trace, _trace(), str(partial), online=_ONLINE
            )
            assert _canonical(report) == control, f"diverged at group {keep}"

    def test_resume_rejects_a_different_replay(self, engine_control, tmp_path):
        journal_path, _ = engine_control
        partial = tmp_path / "mismatch.journal"
        _truncate(journal_path, partial, 1)
        with pytest.raises(ValueError, match="different replay"):
            _service().resume_trace(
                _trace(_EVENTS - 1), str(partial), online=_ONLINE
            )

    def test_enforcing_slo_rejects_checkpointing(self, tmp_path):
        slo = SLOPolicy(admission=True, preemption=True)
        with pytest.raises(ValueError, match="enforcement queue"):
            _service().run_trace(
                _trace(),
                online=_ONLINE,
                slo=slo,
                checkpoint=str(tmp_path / "x.journal"),
            )


# ----------------------------------------------------------------------
# Fleet resume sweep (chaos + faults, fresh fleet per resume)
# ----------------------------------------------------------------------
def _fleet():
    cluster = Cluster.from_presets(
        [("edge0", "hikey970"), ("edge1", "hikey970")],
        seed=3,
        estimator=_ESTIMATOR,
        mcts_config=_MCTS,
    )
    return FleetService(cluster, resilience=_POLICY)


def _fleet_chaos():
    return ChaosPlan((FailureEvent(time_s=3.0, board="edge1"),))


@pytest.fixture(scope="module")
def fleet_control(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-journal")
    path = root / "control.journal"
    report = _pinned(
        _fleet().run_trace,
        _trace(),
        online=_ONLINE,
        chaos=_fleet_chaos(),
        checkpoint=str(path),
    )
    return path, _canonical(report)


class TestFleetResume:
    def test_journaling_does_not_change_the_replay(self, fleet_control):
        _, control = fleet_control
        report = _pinned(
            _fleet().run_trace, _trace(), online=_ONLINE, chaos=_fleet_chaos()
        )
        assert _canonical(report) == control

    def test_resume_at_every_group_is_byte_identical(
        self, fleet_control, tmp_path
    ):
        journal_path, control = fleet_control
        groups = len(journal_path.read_text().splitlines()) - 1
        assert groups >= 2
        for keep in range(groups + 1):
            partial = tmp_path / f"crash-{keep}.journal"
            _truncate(journal_path, partial, keep)
            report = _pinned(
                _fleet().resume_trace,
                _trace(),
                str(partial),
                online=_ONLINE,
                chaos=_fleet_chaos(),
            )
            assert _canonical(report) == control, f"diverged at group {keep}"

    def test_resume_rejects_mismatched_chaos(self, fleet_control, tmp_path):
        journal_path, _ = fleet_control
        partial = tmp_path / "mismatch.journal"
        _truncate(journal_path, partial, 1)
        with pytest.raises(ValueError, match="different replay"):
            _fleet().resume_trace(
                _trace(), str(partial), online=_ONLINE, chaos=None
            )

    def test_elastic_rejects_checkpointing(self, tmp_path):
        from repro.fleet import ElasticPolicy

        with pytest.raises(ValueError, match="elastic"):
            _fleet().run_trace(
                _trace(),
                online=_ONLINE,
                elastic=ElasticPolicy(),
                checkpoint=str(tmp_path / "x.journal"),
            )
