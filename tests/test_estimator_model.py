"""ThroughputEstimator wrapper tests: queries, prediction, persistence."""

import numpy as np
import pytest

from repro.estimator import EmbeddingSpace, ThroughputEstimator
from repro.sim import Mapping
from repro.workloads import Workload


@pytest.fixture()
def estimator(embedding):
    return ThroughputEstimator(embedding, rng=np.random.default_rng(3))


@pytest.fixture()
def workload():
    return Workload.from_names(["alexnet", "mobilenet"])


@pytest.fixture()
def mapping(workload):
    return Mapping.single_device(workload.models, 0)


class TestPrediction:
    def test_normalized_prediction_shape(self, estimator, workload, mapping):
        out = estimator.predict_normalized(workload, mapping)
        assert out.shape == (3,)

    def test_batch_prediction_shape(self, estimator, workload, mapping):
        other = Mapping.single_device(workload.models, 1)
        batch = estimator.predict_normalized_batch(
            [(workload, mapping), (workload, other)]
        )
        assert batch.shape == (2, 3)

    def test_prediction_deterministic(self, estimator, workload, mapping):
        a = estimator.predict_normalized(workload, mapping)
        b = estimator.predict_normalized(workload, mapping)
        np.testing.assert_array_equal(a, b)

    def test_physical_prediction_requires_fit(self, estimator, workload, mapping):
        with pytest.raises(RuntimeError, match="before fit"):
            estimator.predict_throughput(workload, mapping)

    def test_physical_prediction_after_fit(self, estimator, workload, mapping):
        targets = np.random.default_rng(0).uniform(0.5, 5.0, size=(50, 3))
        estimator.target_transform.fit(targets)
        out = estimator.predict_throughput(workload, mapping)
        assert out.shape == (3,)
        reward = estimator.reward(workload, mapping)
        assert reward == pytest.approx(out.mean())

    def test_parameter_count_matches_paper(self, estimator):
        assert estimator.num_parameters == 20044


class TestQueryAccounting:
    def test_queries_counted(self, estimator, workload, mapping):
        estimator.reset_query_count()
        estimator.predict_normalized(workload, mapping)
        estimator.predict_normalized_batch([(workload, mapping)] * 3)
        assert estimator.query_count == 4

    def test_reset_returns_previous(self, estimator, workload, mapping):
        estimator.reset_query_count()
        estimator.predict_normalized(workload, mapping)
        assert estimator.reset_query_count() == 1
        assert estimator.query_count == 0


class TestPersistence:
    def test_save_load_round_trip(self, embedding, workload, mapping, tmp_path):
        source = ThroughputEstimator(embedding, rng=np.random.default_rng(1))
        source.target_transform.fit(
            np.random.default_rng(0).uniform(0.5, 5.0, size=(50, 3))
        )
        path = str(tmp_path / "estimator.npz")
        source.save(path)

        clone = ThroughputEstimator(embedding, rng=np.random.default_rng(99))
        clone.load(path)
        np.testing.assert_allclose(
            source.predict_throughput(workload, mapping),
            clone.predict_throughput(workload, mapping),
            rtol=1e-6,
        )

    def test_save_without_fit_loads_without_transform(
        self, embedding, workload, mapping, tmp_path
    ):
        source = ThroughputEstimator(embedding, rng=np.random.default_rng(1))
        path = str(tmp_path / "raw.npz")
        source.save(path)
        clone = ThroughputEstimator(embedding, rng=np.random.default_rng(2))
        clone.load(path)
        assert not clone.target_transform.fitted
        np.testing.assert_allclose(
            source.predict_normalized(workload, mapping),
            clone.predict_normalized(workload, mapping),
            rtol=1e-6,
        )


class TestWithEmbedding:
    """Retraining-free extension (paper contribution iii)."""

    @pytest.fixture(scope="class")
    def reserved_embedding(self, latency_table):
        from repro.models import MODEL_NAMES

        return EmbeddingSpace(
            latency_table, MODEL_NAMES, reserve_layers=64, reserve_models=14
        )

    @pytest.fixture(scope="class")
    def extension_table(self, platform):
        from repro.models import build_model
        from repro.sim import KernelProfiler

        models = [
            build_model(name)
            for name in ("resnet18", "efficientnet_b0", "densenet121")
        ]
        return KernelProfiler(platform).profile(models, seed=77)

    def test_reserved_extension_keeps_geometry(
        self, reserved_embedding, extension_table
    ):
        extended = reserved_embedding.extend(
            extension_table, ["resnet18", "densenet121"]
        )
        assert extended.input_shape == reserved_embedding.input_shape

    def test_predictions_bit_identical_with_reservation(
        self, reserved_embedding, extension_table
    ):
        from repro.workloads import Workload

        estimator = ThroughputEstimator(
            reserved_embedding, rng=np.random.default_rng(3)
        )
        extended = estimator.with_embedding(
            reserved_embedding.extend(extension_table, ["resnet18"])
        )
        workload = Workload.from_names(["vgg19", "alexnet"])
        mapping = Mapping.single_device(workload.models, 1)
        np.testing.assert_array_equal(
            estimator.predict_normalized(workload, mapping),
            extended.predict_normalized(workload, mapping),
        )

    def test_new_model_mix_predicts(self, reserved_embedding, extension_table):
        from repro.workloads import Workload

        estimator = ThroughputEstimator(
            reserved_embedding, rng=np.random.default_rng(3)
        )
        extended = estimator.with_embedding(
            reserved_embedding.extend(
                extension_table, ["resnet18", "efficientnet_b0"]
            )
        )
        workload = Workload.from_names(["resnet18", "efficientnet_b0"])
        mapping = Mapping.single_device(workload.models, 0)
        prediction = extended.predict_normalized(workload, mapping)
        assert prediction.shape == (3,)
        assert np.isfinite(prediction).all()

    def test_backbone_is_shared_not_copied(self, embedding):
        estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(4))
        sibling = estimator.with_embedding(embedding)
        assert sibling.network is estimator.network
        assert sibling.target_transform is estimator.target_transform

    def test_device_mismatch_rejected(self, embedding, platform):
        from repro.hw import cpu_only_board
        from repro.models import build_all_models
        from repro.sim import KernelProfiler

        two_device_table = KernelProfiler(cpu_only_board()).profile(
            build_all_models(["alexnet", "vgg13"]), seed=1
        )
        other = EmbeddingSpace(two_device_table, ["alexnet", "vgg13"])
        estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(5))
        with pytest.raises(ValueError):
            estimator.with_embedding(other)


class TestRewardBatch:
    def test_matches_scalar_reward(self, trained_estimator):
        from repro.baselines.ga import random_contiguous_mapping

        workload = Workload.from_names(["alexnet", "mobilenet"])
        rng = np.random.default_rng(2)
        pairs = [
            (workload, random_contiguous_mapping(workload.models, 3, rng))
            for _ in range(8)
        ]
        batched = trained_estimator.reward_batch(pairs)
        scalars = np.array(
            [trained_estimator.reward(w, m) for w, m in pairs]
        )
        np.testing.assert_allclose(batched, scalars, rtol=1e-6)

    def test_counts_queries(self, trained_estimator):
        from repro.baselines.ga import random_contiguous_mapping

        workload = Workload.from_names(["alexnet"])
        rng = np.random.default_rng(3)
        pairs = [
            (workload, random_contiguous_mapping(workload.models, 3, rng))
            for _ in range(5)
        ]
        before = trained_estimator.query_count
        trained_estimator.reward_batch(pairs)
        assert trained_estimator.query_count == before + 5
