"""Target transform tests (standardize + normalize, paper Section V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimator import TargetTransform


@pytest.fixture()
def targets():
    rng = np.random.default_rng(0)
    return rng.gamma(2.0, 2.0, size=(100, 3))


class TestFitTransform:
    def test_training_data_lands_in_unit_interval(self, targets):
        transform = TargetTransform().fit(targets)
        normalized = transform.transform(targets)
        assert normalized.min() >= -1e-9
        assert normalized.max() <= 1.0 + 1e-9

    def test_inverse_round_trip(self, targets):
        transform = TargetTransform().fit(targets)
        recovered = transform.inverse(transform.transform(targets))
        np.testing.assert_allclose(recovered, targets, rtol=1e-9, atol=1e-9)

    def test_unseen_data_can_exceed_unit_interval(self, targets):
        """Validation targets outside the training range are not
        clipped -- they map outside [0, 1], and inverse still works."""
        transform = TargetTransform().fit(targets)
        extreme = np.full((1, 3), targets.max() * 2)
        normalized = transform.transform(extreme)
        assert normalized.max() > 1.0
        np.testing.assert_allclose(
            transform.inverse(normalized), extreme, rtol=1e-9
        )

    def test_use_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="before fit"):
            TargetTransform().transform(np.ones((2, 3)))
        with pytest.raises(RuntimeError, match="before fit"):
            TargetTransform().inverse(np.ones((2, 3)))

    def test_fit_shape_validation(self):
        with pytest.raises(ValueError):
            TargetTransform().fit(np.ones(5))
        with pytest.raises(ValueError):
            TargetTransform().fit(np.ones((1, 3)))

    def test_constant_column_does_not_crash(self):
        targets = np.ones((10, 3))
        targets[:, 1] = np.linspace(0, 1, 10)
        transform = TargetTransform().fit(targets)
        normalized = transform.transform(targets)
        assert np.isfinite(normalized).all()

    def test_state_dict_round_trip(self, targets):
        source = TargetTransform().fit(targets)
        clone = TargetTransform()
        clone.load_state_dict(source.state_dict())
        probe = targets[:5]
        np.testing.assert_allclose(
            source.transform(probe), clone.transform(probe)
        )


class TestProperties:
    @given(
        st.lists(
            st.lists(st.floats(0.0, 100.0), min_size=3, max_size=3),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, rows):
        targets = np.asarray(rows)
        transform = TargetTransform().fit(targets)
        recovered = transform.inverse(transform.transform(targets))
        np.testing.assert_allclose(recovered, targets, atol=1e-6)

    @given(st.floats(1.0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance_of_normalized_range(self, scale):
        rng = np.random.default_rng(4)
        targets = rng.uniform(0.0, 1.0, size=(30, 3)) * scale
        transform = TargetTransform().fit(targets)
        normalized = transform.transform(targets)
        assert normalized.min() >= -1e-6
        assert normalized.max() <= 1.0 + 1e-6
