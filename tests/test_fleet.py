"""Fleet subsystem tests: cluster, placement, fan-out, equivalence.

The acceptance bar: a ``FleetService`` over a *single* board must be
indistinguishable from a plain ``SchedulingService`` — byte-identical
mappings and scores for the same request sequence (>= 8 mixes, with
repeats) and identical ``ServiceStats`` counters — because the
placement layer short-circuits a one-candidate fleet without touching
any estimator.
"""

import dataclasses

import pytest

from repro import SchedulingService, SystemBuilder, Workload
from repro.core import MCTSConfig, ScheduleRequest
from repro.engine import SchedulingEngine
from repro.fleet import (
    BOARD_PRESETS,
    Board,
    BoardPlacement,
    Cluster,
    FleetPlacer,
    FleetResponse,
    FleetService,
    FleetStats,
    PlacementError,
)
from repro.fleet.placement import reference_mapping
from repro.online import OnlineConfig
from repro.workloads import (
    ArrivalEvent,
    ArrivalTrace,
    fleet_scenario,
    fleet_scenario_names,
)

#: Same shape as tests/test_service.py: >= 8 mixes with an exact
#: repeat (#4 of #0), a permuted repeat (#5 of #0), an exact repeat
#: (#6 of #1).
MIX_NAMES = [
    ["alexnet", "mobilenet", "squeezenet"],
    ["vgg19", "resnet50", "alexnet"],
    ["mobilenet", "vgg16", "inception_v3"],
    ["squeezenet", "resnet34", "vgg13"],
    ["alexnet", "mobilenet", "squeezenet"],
    ["mobilenet", "alexnet", "squeezenet"],
    ["vgg19", "resnet50", "alexnet"],
    ["resnet50", "vgg19", "inception_v4"],
    ["alexnet", "resnet101", "mobilenet"],
]

_ESTIMATOR = {"num_training_samples": 40, "epochs": 3}
_MCTS = MCTSConfig(budget=50, seed=13)


def _requests():
    return [
        ScheduleRequest(workload=Workload.from_names(names), request_id=str(i))
        for i, names in enumerate(MIX_NAMES)
    ]


def _one_board_fleet() -> FleetService:
    cluster = Cluster.from_presets(
        {"solo": "hikey970"}, seed=29, estimator=_ESTIMATOR, mcts_config=_MCTS
    )
    return FleetService(cluster)


def _plain_service() -> SchedulingService:
    builder = (
        SystemBuilder(seed=29)
        .with_estimator(**_ESTIMATOR)
        .with_mcts_config(_MCTS)
    )
    return SchedulingService(builder)


@pytest.fixture(scope="module")
def three_board_fleet():
    cluster = Cluster.from_presets(
        {
            "edge0": "hikey970",
            "edge1": "hikey970_with_npu",
            "edge2": "cpu_only_board",
        },
        seed=0,
        estimator=_ESTIMATOR,
        mcts_config=MCTSConfig(budget=40, seed=13),
    )
    return FleetService(cluster)


class TestFleetOfOneEquivalence:
    """The tentpole guarantee: one board behind the fleet == the service."""

    @pytest.fixture(scope="class")
    def pair(self):
        requests = _requests()
        fleet = _one_board_fleet()
        fleet_responses = fleet.schedule_many(requests)
        plain = _plain_service()
        plain_responses = plain.schedule_many(requests)
        return fleet, fleet_responses, plain, plain_responses

    def test_at_least_eight_mixes(self, pair):
        _, fleet_responses, _, _ = pair
        assert len(fleet_responses) >= 8

    def test_mappings_and_scores_identical(self, pair):
        _, fleet_responses, _, plain_responses = pair
        for fleet_response, plain_response in zip(
            fleet_responses, plain_responses
        ):
            assert not fleet_response.split
            assert fleet_response.board == "solo"
            assert fleet_response.mapping == plain_response.mapping
            assert (
                fleet_response.expected_score
                == plain_response.expected_score
            )
            assert (
                fleet_response.response.cache_status
                == plain_response.cache_status
            )

    def test_service_stats_counters_identical(self, pair):
        fleet, _, plain, _ = pair
        board_stats = fleet.stats().per_board["solo"]
        plain_stats = plain.stats()
        # Latency sums are host-measured (never equal across runs);
        # every discrete counter must match exactly.
        for field in dataclasses.fields(board_stats):
            if field.name == "wait_s_by_priority":
                continue
            assert getattr(board_stats, field.name) == getattr(
                plain_stats, field.name
            ), field.name

    def test_no_placement_evaluations_spent(self, pair):
        fleet, _, _, _ = pair
        stats = fleet.stats()
        assert stats.placements == len(MIX_NAMES)
        assert stats.placement_evaluations == 0
        assert stats.scored_placements == 0
        assert stats.split_requests == 0


class TestCluster:
    def test_presets_cover_the_heterogeneous_boards(self):
        for name in ("hikey970", "hikey970_with_npu", "cpu_only_board"):
            assert name in BOARD_PRESETS

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown board preset"):
            Cluster.from_presets({"edge0": "raspberry-pi"})

    def test_duplicate_board_names_rejected(self):
        board = Board(name="a", source=SystemBuilder())
        other = Board(name="a", source=SystemBuilder())
        with pytest.raises(ValueError, match="duplicate board name"):
            Cluster([board, other])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="at least one board"):
            Cluster([])

    def test_board_requires_builder_or_system(self):
        with pytest.raises(TypeError):
            Board(name="a", source=object())

    def test_boards_get_distinct_seed_lanes(self):
        cluster = Cluster.from_presets(
            [("a", "hikey970"), ("b", "hikey970")], seed=7
        )
        seeds = [board.source.seed for board in cluster]
        assert seeds[0] == 7  # first board keeps the fleet seed verbatim
        assert len(set(seeds)) == 2

    def test_lookup_and_order(self):
        cluster = Cluster.from_presets(
            {"b0": "hikey970", "b1": "cpu_only_board"}
        )
        assert cluster.board_names == ("b0", "b1")
        assert cluster.board("b1").preset == "cpu_only_board"
        assert "b0" in cluster and "nope" not in cluster
        with pytest.raises(KeyError):
            cluster.board("nope")


class TestPlacement:
    def test_reference_mapping_stripes_whole_models(self):
        workload = Workload.from_names(["alexnet", "mobilenet", "vgg13"])
        mapping = reference_mapping(workload, 2)
        for index, (model, row) in enumerate(
            zip(workload.models, mapping.assignments)
        ):
            assert len(set(row)) == 1  # whole model on one device
            assert row[0] == index % 2
            assert len(row) == model.num_layers

    def test_greedy_load_prefers_least_loaded(self):
        placer = FleetPlacer(None, order=("a", "b"), mode="greedy-load")
        workload = Workload.from_names(["alexnet", "mobilenet"])
        parts = placer.place(
            workload, load={"a": 3, "b": 0}, capacity={"a": 5, "b": 5}
        )
        assert [p.board for p in parts] == ["b"]
        assert parts[0].indices == (0, 1)

    def test_blocked_models_exclude_a_board(self):
        placer = FleetPlacer(None, order=("a", "b"), mode="greedy-load")
        workload = Workload.from_names(["alexnet"])
        parts = placer.place(
            workload,
            load={"a": 0, "b": 2},
            capacity={"a": 5, "b": 5},
            blocked={"a": {"alexnet"}},
        )
        assert parts[0].board == "b"

    def test_oversized_mix_splits_across_distinct_boards(self):
        placer = FleetPlacer(None, order=("a", "b"), mode="greedy-load")
        workload = fleet_scenario("heavy-split").build_mixes(0)[0]
        assert workload.num_dnns == 7
        parts = placer.place(
            workload, load={}, capacity={"a": 5, "b": 5}
        )
        assert len(parts) == 2
        assert {p.board for p in parts} == {"a", "b"}
        covered = sorted(i for p in parts for i in p.indices)
        assert covered == list(range(7))
        for part in parts:
            assert part.workload.model_names == tuple(
                workload.models[i].name for i in part.indices
            )
        assert placer.split_mixes == 1

    def test_unplaceable_mix_raises(self):
        placer = FleetPlacer(None, order=("a",), mode="greedy-load")
        workload = Workload.from_names(["alexnet", "mobilenet", "vgg13"])
        with pytest.raises(PlacementError, match="cannot host"):
            placer.place(workload, load={}, capacity={"a": 2})

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            FleetPlacer(None, order=("a",), mode="round-robin")


class TestFleetServing:
    def test_burst_spreads_across_boards(self, three_board_fleet):
        mixes = fleet_scenario("request-burst").build_mixes(0)
        responses = three_board_fleet.schedule_many(mixes)
        boards = {response.board for response in responses}
        assert len(boards) >= 2  # the load discount spreads the burst
        for mix, response in zip(mixes, responses):
            assert not response.split
            response.mapping.validate(
                mix.models,
                three_board_fleet.cluster.board(
                    response.board
                ).platform.num_devices,
            )

    def test_fleet_decisions_match_per_board_sequential(
        self, three_board_fleet
    ):
        """Pooled fan-out == the same per-board shares served one at a
        time on a twin fleet (identical seeds): the pooling changes
        estimator call counts, never mappings or scores."""
        mixes = fleet_scenario("request-burst").build_mixes(1)
        pooled = three_board_fleet.schedule_many(mixes)
        twin = FleetService(
            Cluster.from_presets(
                {
                    "edge0": "hikey970",
                    "edge1": "hikey970_with_npu",
                    "edge2": "cpu_only_board",
                },
                seed=0,
                estimator=_ESTIMATOR,
                mcts_config=MCTSConfig(budget=40, seed=13),
            )
        )
        # Replay the SAME placement one request at a time: submitting
        # straight to each pooled response's board preserves every
        # board's share and its relative order.
        for mix, pooled_response in zip(mixes, pooled):
            solo_response = twin.engine(pooled_response.board).submit(mix)
            assert pooled_response.mapping == solo_response.mapping
            assert (
                pooled_response.expected_score
                == solo_response.expected_score
            )

    def test_split_request_covers_the_whole_mix(self, three_board_fleet):
        heavy = fleet_scenario("heavy-split").build_mixes(0)[0]
        response = three_board_fleet.submit(heavy)
        assert response.split
        boards = [placement.board for placement, _ in response.parts]
        assert len(set(boards)) == len(boards)  # distinct boards
        covered = sorted(
            i for placement, _ in response.parts for i in placement.indices
        )
        assert covered == list(range(heavy.num_dnns))
        assert response.aggregate_score > 0
        with pytest.raises(ValueError, match="split"):
            response.mapping

    def test_stats_rollup_combines_boards(self, three_board_fleet):
        stats = three_board_fleet.stats()
        assert isinstance(stats, FleetStats)
        combined = stats.combined
        assert combined.requests_served == sum(
            board.requests_served for board in stats.per_board.values()
        )
        assert combined.pooled_eval_batches > 0
        assert "placements" in stats.summary()

    def test_unknown_board_engine_lookup(self, three_board_fleet):
        assert isinstance(
            three_board_fleet.engine("edge0"), SchedulingEngine
        )
        with pytest.raises(KeyError):
            three_board_fleet.engine("edge9")

    def test_rejects_non_cluster(self):
        with pytest.raises(TypeError, match="Cluster"):
            FleetService(SystemBuilder())


class TestFleetTrace:
    @pytest.fixture(scope="class")
    def trace_run(self):
        cluster = Cluster.from_presets(
            {"edge0": "hikey970", "edge1": "hikey970"},
            seed=3,
            estimator=_ESTIMATOR,
            mcts_config=MCTSConfig(budget=30, seed=13),
        )
        service = FleetService(cluster)
        trace = fleet_scenario("fleet-churn").build_trace(0)
        report = service.run_trace(trace, online=OnlineConfig(warm_patience=20))
        return service, trace, report

    def test_records_cover_all_events_in_order(self, trace_run):
        _, trace, report = trace_run
        assert len(report.records) >= len(trace)
        assert [r.index for r in report.records] == list(
            range(len(report.records))
        )

    def test_records_carry_board_attribution(self, trace_run):
        _, _, report = trace_run
        assert set(report.boards) <= {"edge0", "edge1"}
        assert all(record.board for record in report.records)
        for board in report.boards:
            sub = report.for_board(board)
            assert all(record.board == board for record in sub.records)

    def test_boards_replan_warm(self, trace_run):
        service, _, report = trace_run
        stats = service.stats()
        warm = sum(
            board.trace_warm_reschedules
            for board in stats.per_board.values()
        )
        assert warm > 0
        assert report.warm_fraction > 0

    def test_per_priority_wait_rollup(self, trace_run):
        """`combined` is the complete per-priority service-level view:
        every board's wait and request counters sum into it, and the
        fleet summary surfaces the mean-wait-by-priority rollup."""
        service, _, _ = trace_run
        stats = service.stats()
        combined = stats.combined
        assert combined.requests_by_priority
        board_priorities = {
            priority
            for board in stats.per_board.values()
            for priority in board.requests_by_priority
        }
        assert set(combined.requests_by_priority) == board_priorities
        for priority in board_priorities:
            assert combined.requests_by_priority[priority] == sum(
                board.requests_by_priority.get(priority, 0)
                for board in stats.per_board.values()
            )
            assert combined.wait_s_by_priority[priority] == pytest.approx(
                sum(
                    board.wait_s_by_priority.get(priority, 0.0)
                    for board in stats.per_board.values()
                )
            )
            assert combined.mean_wait_s(priority) >= 0.0
        assert "mean wait by priority" in stats.summary()

    def test_departure_triggers_migration_records(self, trace_run):
        service, trace, report = trace_run
        stats = service.stats()
        if stats.migrations == 0:
            pytest.skip("trace never left the fleet imbalanced")
        # A migration appends a departure/arrival pair beyond the
        # trace's own events.
        assert len(report.records) == len(trace) + 2 * stats.migrations

    def test_residency_caps_respected_throughout(self, trace_run):
        _, _, report = trace_run
        for record in report.records:
            assert len(record.active_models) <= 5

    def test_online_config_reaches_every_board(self):
        """The `online` knob must govern the per-board re-searches —
        `warm=False` forces cold re-planning fleet-wide."""
        cluster = Cluster.from_presets(
            {"edge0": "hikey970", "edge1": "hikey970"},
            seed=5,
            estimator=_ESTIMATOR,
            mcts_config=MCTSConfig(budget=20, seed=13),
        )
        service = FleetService(cluster)
        trace = fleet_scenario("fleet-churn").build_trace(0).truncated(8)
        report = service.run_trace(trace, online=OnlineConfig(warm=False))
        planned = [r for r in report.records if r.mode != "idle"]
        assert planned
        assert all(record.mode == "cold" for record in planned)

    def test_run_trace_is_reentrant(self):
        """Each replay starts from an empty fleet: two runs of the same
        trace on one service produce identical outcomes."""
        cluster = Cluster.from_presets(
            {"edge0": "hikey970", "edge1": "hikey970"},
            seed=7,
            estimator=_ESTIMATOR,
            mcts_config=MCTSConfig(budget=20, seed=13),
        )
        service = FleetService(cluster)
        trace = fleet_scenario("fleet-churn").build_trace(1).truncated(8)
        online = OnlineConfig(warm_patience=15)
        first = service.run_trace(trace, online=online)
        second = service.run_trace(trace, online=online)
        assert len(first.records) == len(second.records)
        for record_a, record_b in zip(first.records, second.records):
            assert record_a.board == record_b.board
            assert record_a.mode == record_b.mode
            assert record_a.expected_score == record_b.expected_score
            assert record_a.evaluations == record_b.evaluations

    def test_single_event_trace_records_one_arrival(self):
        cluster = Cluster.from_presets(
            {"edge0": "hikey970"},
            seed=3,
            estimator=_ESTIMATOR,
            mcts_config=MCTSConfig(budget=20, seed=13),
        )
        service = FleetService(cluster)
        trace = ArrivalTrace(
            [ArrivalEvent(0.0, "arrival", "t0", "alexnet")]
        )
        report = service.run_trace(trace)
        assert len(report.records) == 1
        assert report.records[0].board == "edge0"
        assert report.records[0].mode == "cold"


class TestFleetScenarios:
    def test_names_and_lookup(self):
        names = fleet_scenario_names()
        assert "request-burst" in names
        assert "fleet-churn" in names
        assert "heavy-split" in names
        with pytest.raises(KeyError):
            fleet_scenario("nope")

    def test_request_burst_is_deterministic_and_distinct(self):
        first = fleet_scenario("request-burst").build_mixes(5)
        second = fleet_scenario("request-burst").build_mixes(5)
        assert [m.model_names for m in first] == [
            m.model_names for m in second
        ]
        assert len(first) == 8
        signatures = {tuple(sorted(m.model_names)) for m in first}
        assert len(signatures) == 8

    def test_fleet_churn_exceeds_single_board_depth(self):
        trace = fleet_scenario("fleet-churn").build_trace(0)
        assert trace.max_concurrency > 5

    def test_heavy_split_leads_with_an_oversized_mix(self):
        mixes = fleet_scenario("heavy-split").build_mixes(0)
        assert mixes[0].num_dnns > 5
