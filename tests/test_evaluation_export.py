"""Tests for CSV/JSON evaluation exports."""

import csv
import json

import pytest

from repro.baselines import GpuOnlyScheduler, SingleDeviceScheduler
from repro.evaluation import EvaluationHarness, RuntimeCostModel
from repro.evaluation.export import (
    comparison_to_dict,
    comparison_to_rows,
    runtime_to_rows,
    write_comparison_csv,
    write_comparison_json,
    write_runtime_csv,
)
from repro.hw import BIG_CPU_ID
from repro.workloads import Workload


@pytest.fixture(scope="module")
def table(simulator, platform):
    harness = EvaluationHarness(
        simulator,
        [GpuOnlyScheduler(platform), SingleDeviceScheduler(BIG_CPU_ID, name="big")],
        baseline_name="Baseline",
    )
    mixes = [
        Workload.from_names(["alexnet", "mobilenet"]),
        Workload.from_names(["vgg16", "squeezenet"]),
    ]
    return harness.evaluate_mixes(mixes)


class TestComparisonExport:
    def test_rows_structure(self, table):
        rows = comparison_to_rows(table)
        assert rows[0] == ["mix", "Baseline", "big"]
        assert rows[-1][0] == "Average"
        assert len(rows) == 4  # header + 2 mixes + average

    def test_baseline_column_is_one(self, table):
        rows = comparison_to_rows(table)
        for row in rows[1:]:
            assert row[1] == pytest.approx(1.0)

    def test_csv_round_trip(self, table, tmp_path):
        path = str(tmp_path / "fig5.csv")
        write_comparison_csv(table, path)
        with open(path) as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["mix", "Baseline", "big"]
        assert float(parsed[1][1]) == pytest.approx(1.0)

    def test_dict_contains_costs_and_models(self, table):
        data = comparison_to_dict(table)
        assert data["schedulers"] == ["Baseline", "big"]
        first = data["mixes"][0]
        assert first["models"] == ["alexnet", "mobilenet"]
        assert "average_throughput" in first["results"]["Baseline"]

    def test_json_file_valid(self, table, tmp_path):
        path = str(tmp_path / "fig5.json")
        write_comparison_json(table, path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["averages"]["Baseline"] == pytest.approx(1.0)


class TestRuntimeExport:
    def test_rows_and_csv(self, table, tmp_path):
        report = RuntimeCostModel().report(table.evaluations)
        rows = runtime_to_rows(report)
        assert rows[0][0] == "scheduler"
        assert len(rows) == 1 + len(report.rows)
        path = str(tmp_path / "runtime.csv")
        write_runtime_csv(report, path)
        with open(path) as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0][0] == "scheduler"
