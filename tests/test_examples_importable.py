"""Every example must import cleanly (API-drift canary).

Examples are executable scripts guarded by ``if __name__ == "__main__"``,
so importing them runs no training; what it does catch is any example
referencing a renamed or removed public API.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[path.stem for path in EXAMPLE_FILES]
)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Examples live outside the package; make sibling imports (none
    # currently) and repro itself resolvable.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert hasattr(module, "main"), f"{path.name} must define main()"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLE_FILES}
    required = {
        "quickstart",
        "motivation_sweep",
        "train_estimator",
        "schedule_mix",
        "budget_sweep",
        "trace_timeline",
        "custom_model",
        "application_scenarios",
        "energy_tradeoff",
        "new_model_no_retrain",
        "make_figures",
    }
    missing = required - names
    assert not missing, f"examples missing: {sorted(missing)}"
