"""Evaluation-layer tests: metrics, space sizes, harness, runtime, reports."""

import numpy as np
import pytest

from repro.baselines import GpuOnlyScheduler, SingleDeviceScheduler
from repro.evaluation import (
    ComparisonTable,
    EvaluationHarness,
    RuntimeCostModel,
    average_throughput,
    contiguous_mappings_per_model,
    format_comparison,
    format_runtime_report,
    format_table,
    geometric_mean,
    normalized,
    paper_combination_estimate,
    speedup,
    total_contiguous_mappings,
    unrestricted_mappings,
)
from repro.hw import BIG_CPU_ID
from repro.models import build_model
from repro.workloads import Workload


class TestMetrics:
    def test_average_throughput(self):
        assert average_throughput([1.0, 2.0, 3.0]) == 2.0

    def test_average_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            average_throughput([])
        with pytest.raises(ValueError):
            average_throughput([1.0, -1.0])

    def test_normalized(self):
        assert normalized(3.0, 2.0) == 1.5
        assert speedup(4.0, 2.0) == 2.0
        with pytest.raises(ValueError):
            normalized(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestSpaceSize:
    def test_paper_motivation_number(self):
        """Section II: C(84, 3) ~= 95,000 for the 4-DNN example."""
        estimate = paper_combination_estimate(84, 3)
        assert 90_000 < estimate < 100_000

    def test_contiguous_single_stage(self):
        assert contiguous_mappings_per_model(5, 3, max_stages=1) == 3

    def test_contiguous_two_stage_count(self):
        # 4 split points x 3*2 ordered device pairs + 3 single-stage.
        assert contiguous_mappings_per_model(5, 3, max_stages=2) == 3 + 4 * 6

    def test_total_is_product(self):
        models = [build_model("alexnet"), build_model("mobilenet")]
        total = total_contiguous_mappings(models, 3, 3)
        per_model = [
            contiguous_mappings_per_model(model.num_layers, 3, 3)
            for model in models
        ]
        assert total == per_model[0] * per_model[1]

    def test_design_space_reaches_millions(self):
        """Section II: the combined space is 'in the order of millions'
        -- even the stage-capped contiguous space of one 4-DNN mix."""
        models = [
            build_model(name)
            for name in ("alexnet", "mobilenet", "vgg19", "squeezenet")
        ]
        assert total_contiguous_mappings(models, 3, 3) > 1e6

    def test_unrestricted_dominates_contiguous(self):
        models = [build_model("alexnet")]
        assert unrestricted_mappings(models, 3) >= total_contiguous_mappings(
            models, 3, 3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            contiguous_mappings_per_model(0, 3, 3)
        with pytest.raises(ValueError):
            contiguous_mappings_per_model(5, 0, 3)
        with pytest.raises(ValueError):
            contiguous_mappings_per_model(5, 3, 0)


@pytest.fixture(scope="module")
def harness(simulator, platform):
    schedulers = [
        GpuOnlyScheduler(platform),
        SingleDeviceScheduler(BIG_CPU_ID, name="big-only"),
    ]
    return EvaluationHarness(simulator, schedulers, baseline_name="Baseline")


class TestHarness:
    def test_baseline_normalizes_to_one(self, harness):
        mix = Workload.from_names(["alexnet", "vgg16", "mobilenet"])
        evaluation = harness.evaluate_mix(mix)
        assert evaluation.outcome("Baseline").normalized_throughput == pytest.approx(
            1.0
        )

    def test_all_schedulers_present(self, harness):
        mix = Workload.from_names(["alexnet", "mobilenet"])
        evaluation = harness.evaluate_mix(mix)
        assert evaluation.scheduler_names == ("Baseline", "big-only")
        with pytest.raises(KeyError):
            evaluation.outcome("nope")

    def test_comparison_table_aggregation(self, harness):
        mixes = [
            Workload.from_names(["alexnet", "mobilenet"]),
            Workload.from_names(["vgg16", "squeezenet"]),
        ]
        table = harness.evaluate_mixes(mixes)
        assert len(table.evaluations) == 2
        assert table.average("Baseline") == pytest.approx(1.0)
        series = table.normalized_series("big-only")
        assert len(series) == 2
        averages = table.averages()
        assert set(averages) == {"Baseline", "big-only"}

    def test_relative_gain(self, harness):
        mixes = [Workload.from_names(["alexnet", "mobilenet"])]
        table = harness.evaluate_mixes(mixes)
        gain = table.relative_gain("big-only", "Baseline")
        assert gain == pytest.approx(table.average("big-only"))

    def test_duplicate_scheduler_names_rejected(self, simulator, platform):
        with pytest.raises(ValueError, match="unique"):
            EvaluationHarness(
                simulator,
                [GpuOnlyScheduler(platform), GpuOnlyScheduler(platform)],
            )

    def test_baseline_must_exist(self, simulator, platform):
        with pytest.raises(ValueError, match="missing"):
            EvaluationHarness(
                simulator,
                [GpuOnlyScheduler(platform)],
                baseline_name="OmniBoost",
            )

    def test_measurement_seed_makes_runs_repeatable(self, simulator, platform):
        harness = EvaluationHarness(
            simulator, [GpuOnlyScheduler(platform)], measurement_seed=77
        )
        mix = Workload.from_names(["alexnet", "vgg16"])
        first = harness.evaluate_mix(mix)
        second = harness.evaluate_mix(mix)
        assert (
            first.outcome("Baseline").average_throughput
            == second.outcome("Baseline").average_throughput
        )


class TestRuntimeModel:
    def test_decision_time_composition(self):
        model = RuntimeCostModel(
            ga_evaluation_s=0.5, estimator_query_s=0.06, regression_query_s=1.0
        )
        assert model.decision_time({"fitness_evaluations": 600}) == pytest.approx(
            300.0
        )
        assert model.decision_time({"estimator_queries": 500}) == pytest.approx(30.0)
        assert model.decision_time({"regression_queries": 40}) == pytest.approx(1.0)
        assert model.decision_time({}) == 0.0

    def test_paper_magnitudes(self):
        """Sec. V-B: GA ~ 5 min, OmniBoost ~ 30 s, MOSAIC ~ 1 s."""
        model = RuntimeCostModel()
        ga = model.decision_time({"fitness_evaluations": 600})
        omni = model.decision_time({"estimator_queries": 500})
        mosaic = model.decision_time({"regression_queries": 10})
        assert ga == pytest.approx(300, rel=0.2)
        assert omni == pytest.approx(30, rel=0.2)
        assert mosaic == pytest.approx(1.0, rel=0.2)
        assert ga > omni > mosaic

    def test_one_time_cost(self):
        model = RuntimeCostModel(training_point_s=0.01)
        assert model.one_time_cost({"training_points": 14000}) == pytest.approx(140.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            RuntimeCostModel(ga_evaluation_s=-1.0)

    def test_report_rows(self, harness):
        mixes = [Workload.from_names(["alexnet", "mobilenet"])]
        evaluations = [harness.evaluate_mix(mix) for mix in mixes]
        report = RuntimeCostModel().report(evaluations)
        assert len(report.rows) == 2  # 2 schedulers x 1 mix
        assert report.scheduler_names() == ["Baseline", "big-only"]
        assert report.mean_decision_time("Baseline") == 0.0
        with pytest.raises(KeyError):
            report.mean_decision_time("nope")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "longer" in lines[3]

    def test_format_comparison_has_average_row(self, harness):
        mixes = [Workload.from_names(["alexnet", "mobilenet"])]
        table = harness.evaluate_mixes(mixes)
        text = format_comparison(table, title="Fig. X")
        assert "Fig. X" in text
        assert "Average" in text
        assert "mix-1" in text

    def test_format_runtime_report(self, harness):
        mixes = [Workload.from_names(["alexnet", "mobilenet"])]
        report = RuntimeCostModel().report(
            [harness.evaluate_mix(mix) for mix in mixes]
        )
        text = format_runtime_report(report)
        assert "Baseline" in text
        assert "board decision" in text
