"""Tests for ranking-fidelity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimator.quality import (
    RankingReport,
    ranking_report,
    spearman_rho,
    top_k_regret,
)


class TestSpearman:
    def test_perfect_correlation(self):
        truth = [1.0, 2.0, 3.0, 4.0]
        assert spearman_rho(truth, [10.0, 20.0, 30.0, 40.0]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        truth = [1.0, 2.0, 3.0, 4.0]
        assert spearman_rho(truth, [4.0, 3.0, 2.0, 1.0]) == pytest.approx(-1.0)

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(0)
        truth = rng.uniform(0, 10, 50)
        assert spearman_rho(truth, np.exp(truth)) == pytest.approx(1.0)

    def test_ties_handled(self):
        rho = spearman_rho([1.0, 1.0, 2.0], [1.0, 1.0, 2.0])
        assert rho == pytest.approx(1.0)

    def test_constant_input_returns_zero(self):
        assert spearman_rho([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_rho([1.0], [1.0])
        with pytest.raises(ValueError):
            spearman_rho([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(3)
        truth = rng.normal(size=80)
        predicted = truth + rng.normal(size=80)
        ours = spearman_rho(truth, predicted)
        reference = spearmanr(truth, predicted).statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=40, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_bounded_property(self, values):
        rng = np.random.default_rng(0)
        predicted = rng.permutation(values)
        rho = spearman_rho(values, predicted)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


class TestTopKRegret:
    def test_zero_when_top_pick_correct(self):
        truth = [1.0, 3.0, 2.0]
        predicted = [0.1, 0.9, 0.5]
        assert top_k_regret(truth, predicted, k=1) == 0.0

    def test_regret_of_wrong_pick(self):
        truth = [4.0, 2.0, 1.0]
        predicted = [0.0, 1.0, 0.5]  # predictor prefers index 1 (true 2.0)
        assert top_k_regret(truth, predicted, k=1) == pytest.approx(0.5)

    def test_larger_k_never_increases_regret(self):
        rng = np.random.default_rng(2)
        truth = rng.uniform(1, 10, 30)
        predicted = truth + rng.normal(0, 3, 30)
        regrets = [top_k_regret(truth, predicted, k=k) for k in (1, 3, 10, 30)]
        assert all(a >= b - 1e-12 for a, b in zip(regrets, regrets[1:]))
        assert regrets[-1] == 0.0  # shortlist of everything has no regret

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_regret([1.0, 2.0], [1.0, 2.0], k=0)
        with pytest.raises(ValueError):
            top_k_regret([0.0, 0.0], [1.0, 2.0], k=1)


class TestReport:
    def test_fields(self):
        rng = np.random.default_rng(4)
        truth = rng.uniform(1, 10, 40)
        predicted = truth + rng.normal(0, 1, 40)
        report = ranking_report(truth, predicted)
        assert isinstance(report, RankingReport)
        assert report.num_samples == 40
        assert report.rho > 0.5
        assert 0.0 <= report.regret_top1 <= 1.0
        assert report.regret_top5 <= report.regret_top1 + 1e-12
        assert report.mae > 0
