"""Documentation checks: code fences parse, cross-references resolve.

The docs CI job runs this module (plus the examples-importable canary)
so README/docs drift is caught the same way API drift is: every
``python`` fence must be syntactically valid, fences must be balanced
and language-tagged, and `file:line` anchors in the architecture doc
must point inside real files.
"""

import ast
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "PAPER.md", *sorted((ROOT / "docs").glob("*.md"))]
)

FENCE_RE = re.compile(r"^```(\S*)\s*$")


def _fences(path):
    """Yield (language, first_line_number, code) per fence in a doc."""
    language = None
    start = 0
    body = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = FENCE_RE.match(line)
        if match is None:
            if language is not None:
                body.append(line)
            continue
        if language is None:
            language, start, body = match.group(1), number, []
        else:
            yield language, start, "\n".join(body)
            language = None
    assert language is None, f"{path.name}: unclosed fence opened at line {start}"


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(ROOT)) for p in DOC_FILES]
)
def test_fences_are_tagged_and_parse(path):
    for language, line, code in _fences(path):
        assert language, (
            f"{path.name}:{line}: fence needs a language tag "
            "(```python, ```bash, ```text, ...)"
        )
        if language == "python":
            try:
                ast.parse(code)
            except SyntaxError as error:  # pragma: no cover - failure path
                pytest.fail(f"{path.name}:{line}: python fence: {error}")
        elif language == "bash":
            assert code.strip(), f"{path.name}:{line}: empty bash fence"
            # Line continuations must not dangle past the fence.
            assert not code.rstrip().endswith("\\\\"), (
                f"{path.name}:{line}: trailing continuation"
            )


ANCHOR_RE = re.compile(r"`((?:src|tests|benchmarks|examples|docs)/[\w./]+):(\d+)`")
PATH_RE = re.compile(r"`((?:src|tests|benchmarks|examples|docs)/[\w./]+\.(?:py|md))`")
LINK_RE = re.compile(r"\[[^\]]+\]\((?!https?://)([^)#]+)\)")


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(ROOT)) for p in DOC_FILES]
)
def test_file_line_anchors_resolve(path):
    text = path.read_text()
    for target, line in ANCHOR_RE.findall(text):
        file = ROOT / target
        assert file.is_file(), f"{path.name}: anchor to missing file {target}"
        total = len(file.read_text().splitlines())
        assert int(line) <= total, (
            f"{path.name}: anchor {target}:{line} is past end of file ({total})"
        )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(ROOT)) for p in DOC_FILES]
)
def test_referenced_paths_exist(path):
    text = path.read_text()
    for target in PATH_RE.findall(text):
        assert (ROOT / target).is_file(), (
            f"{path.name}: reference to missing file {target}"
        )
    for target in LINK_RE.findall(text):
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{path.name}: broken relative link {target}"


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "examples.md").is_file()
    assert "## Abstract" in (ROOT / "PAPER.md").read_text()
