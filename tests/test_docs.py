"""Documentation checks: code fences parse, cross-references resolve.

The docs CI job runs this module (plus the examples-importable canary)
so README/docs drift is caught the same way API drift is: every
``python`` fence must be syntactically valid, fences must be balanced
and language-tagged, and `file:line` anchors in the architecture doc
must point inside real files.
"""

import ast
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "PAPER.md", *sorted((ROOT / "docs").glob("*.md"))]
)

FENCE_RE = re.compile(r"^```(\S*)\s*$")


def _fences(path):
    """Yield (language, first_line_number, code) per fence in a doc."""
    language = None
    start = 0
    body = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = FENCE_RE.match(line)
        if match is None:
            if language is not None:
                body.append(line)
            continue
        if language is None:
            language, start, body = match.group(1), number, []
        else:
            yield language, start, "\n".join(body)
            language = None
    assert language is None, f"{path.name}: unclosed fence opened at line {start}"


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(ROOT)) for p in DOC_FILES]
)
def test_fences_are_tagged_and_parse(path):
    for language, line, code in _fences(path):
        assert language, (
            f"{path.name}:{line}: fence needs a language tag "
            "(```python, ```bash, ```text, ...)"
        )
        if language == "python":
            try:
                ast.parse(code)
            except SyntaxError as error:  # pragma: no cover - failure path
                pytest.fail(f"{path.name}:{line}: python fence: {error}")
        elif language == "bash":
            assert code.strip(), f"{path.name}:{line}: empty bash fence"
            # Line continuations must not dangle past the fence.
            assert not code.rstrip().endswith("\\\\"), (
                f"{path.name}:{line}: trailing continuation"
            )


ANCHOR_RE = re.compile(r"`((?:src|tests|benchmarks|examples|docs)/[\w./]+):(\d+)`")
PATH_RE = re.compile(r"`((?:src|tests|benchmarks|examples|docs)/[\w./]+\.(?:py|md))`")
LINK_RE = re.compile(r"\[[^\]]+\]\((?!https?://)([^)#]+)\)")


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(ROOT)) for p in DOC_FILES]
)
def test_file_line_anchors_resolve(path):
    text = path.read_text()
    for target, line in ANCHOR_RE.findall(text):
        file = ROOT / target
        assert file.is_file(), f"{path.name}: anchor to missing file {target}"
        total = len(file.read_text().splitlines())
        assert int(line) <= total, (
            f"{path.name}: anchor {target}:{line} is past end of file ({total})"
        )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(ROOT)) for p in DOC_FILES]
)
def test_referenced_paths_exist(path):
    text = path.read_text()
    for target in PATH_RE.findall(text):
        assert (ROOT / target).is_file(), (
            f"{path.name}: reference to missing file {target}"
        )
    for target in LINK_RE.findall(text):
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{path.name}: broken relative link {target}"


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "examples.md").is_file()
    assert (ROOT / "docs" / "online.md").is_file()
    assert "## Abstract" in (ROOT / "PAPER.md").read_text()


def test_online_guide_is_linked():
    """The online operations guide is reachable from the entry docs."""
    assert "docs/online.md" in (ROOT / "README.md").read_text()
    assert "online.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_fleet_guide_is_linked():
    """The fleet operations guide is reachable from the entry docs."""
    assert (ROOT / "docs" / "fleet.md").is_file()
    assert "docs/fleet.md" in (ROOT / "README.md").read_text()
    assert "fleet.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_fleet_surface_is_pinned():
    """The fleet subcommand and core exports stay documented by name."""
    assert "fleet-serve" in _cli_subcommands()
    readme = (ROOT / "README.md").read_text()
    assert "fleet-serve" in readme
    import repro

    for export in ("Cluster", "FleetService", "FleetStats", "fleet_scenario"):
        assert export in repro.__all__, export


def test_slo_guide_is_linked():
    """The SLO operations guide is reachable from the entry docs."""
    assert (ROOT / "docs" / "slo.md").is_file()
    assert "docs/slo.md" in (ROOT / "README.md").read_text()
    assert "slo.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_slo_surface_is_pinned():
    """The SLO flags and core exports stay documented by name."""
    readme = (ROOT / "README.md").read_text()
    for flag in ("--slo", "--slo-latency-ms", "--slo-observe"):
        assert flag in readme, f"README.md does not mention {flag!r}"
    import repro

    for export in (
        "SLOPolicy",
        "SLOTarget",
        "AdmissionController",
        "AdmissionDecision",
        "slo",
    ):
        assert export in repro.__all__, export
    # The dedicated scenarios stay registered and documented.
    from repro.workloads import churn_scenario_names, fleet_scenario_names

    corpus = "\n".join(path.read_text() for path in DOC_FILES)
    for name in ("priority-storm", "slo-squeeze"):
        assert name in churn_scenario_names(), name
        assert name in fleet_scenario_names(), name
        assert name in corpus, f"scenario {name!r} undocumented"


def test_elastic_guide_is_linked():
    """The elastic operations guide is reachable from the entry docs."""
    assert (ROOT / "docs" / "elastic.md").is_file()
    assert "docs/elastic.md" in (ROOT / "README.md").read_text()
    assert "elastic.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_elastic_surface_is_pinned():
    """The chaos/elastic flags and core exports stay documented by name."""
    readme = (ROOT / "README.md").read_text()
    for flag in ("--chaos", "--elastic", "--elastic-preset", "--elastic-max-boards"):
        assert flag in readme, f"README.md does not mention {flag!r}"
    import repro

    for export in (
        "Autoscaler",
        "ChaosPlan",
        "ElasticPolicy",
        "FailureEvent",
        "cloud_tier",
    ):
        assert export in repro.__all__, export
    # The dedicated scenarios stay registered and documented.
    from repro.workloads import fleet_scenario_names

    corpus = "\n".join(path.read_text() for path in DOC_FILES)
    for name in ("board-failure", "flash-crowd"):
        assert name in fleet_scenario_names(), name
        assert name in corpus, f"scenario {name!r} undocumented"


def test_resilience_guide_is_linked():
    """The resilience operations guide is reachable from the entry docs."""
    assert (ROOT / "docs" / "resilience.md").is_file()
    assert "docs/resilience.md" in (ROOT / "README.md").read_text()
    assert "resilience.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_resilience_surface_is_pinned():
    """The fault/journal flags and core exports stay documented by name."""
    readme = (ROOT / "README.md").read_text()
    for flag in ("--faults", "--journal", "--resume"):
        assert flag in readme, f"README.md does not mention {flag!r}"
    import repro

    for export in (
        "EstimatorFault",
        "FaultPlan",
        "FaultSpec",
        "ResiliencePolicy",
        "resilience",
    ):
        assert export in repro.__all__, export
    # The drill scenario stays registered and documented, and every
    # fault kind is named in the guide.
    from repro.resilience import FAULT_KINDS
    from repro.workloads import churn_scenario_names

    corpus = "\n".join(path.read_text() for path in DOC_FILES)
    assert "estimator-brownout" in churn_scenario_names()
    assert "estimator-brownout" in corpus
    for kind in FAULT_KINDS:
        assert kind in corpus, f"fault kind {kind!r} undocumented"


def test_linting_guide_is_linked():
    """The doctrine-linter guide is reachable from the entry docs."""
    assert (ROOT / "docs" / "linting.md").is_file()
    assert "docs/linting.md" in (ROOT / "README.md").read_text()
    assert "linting.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_lint_surface_is_pinned():
    """The lint subcommand, exports, and rule catalog stay documented."""
    assert "lint" in _cli_subcommands()
    import repro

    for export in ("analysis", "canonical_signature"):
        assert export in repro.__all__, export
    # Every registered rule appears in the guide's catalog table by
    # code and name -- adding a rule without documenting it fails here.
    from repro.analysis import ALL_RULES

    guide = (ROOT / "docs" / "linting.md").read_text()
    assert len(ALL_RULES) >= 9
    for rule in ALL_RULES:
        assert rule.code in guide, rule.code
        assert rule.name in guide, rule.name


# ----------------------------------------------------------------------
# Drift pinning: CLI subcommands and public exports must be documented
# ----------------------------------------------------------------------
def _cli_subcommands():
    import argparse

    from repro.cli import build_parser

    action = next(
        a
        for a in build_parser()._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return sorted(action.choices)


def test_every_cli_subcommand_documented_in_readme():
    """Every `python -m repro` subcommand (including serve-trace) must
    appear in the README — both the CLI table and the quickstart stay
    honest as commands are added."""
    readme = (ROOT / "README.md").read_text()
    for command in _cli_subcommands():
        assert re.search(rf"\b{re.escape(command)}\b", readme), (
            f"README.md does not mention CLI subcommand {command!r}"
        )


def test_every_public_export_documented():
    """Every name in `repro.__all__` must appear somewhere in the docs
    (README or docs/*.md) — the architecture doc carries a full API
    index, so an undocumented export fails here, not in review."""
    import repro

    corpus = "\n".join(path.read_text() for path in DOC_FILES)
    missing = [
        name
        for name in repro.__all__
        if name != "__version__"
        and not re.search(rf"\b{re.escape(name)}\b", corpus)
    ]
    assert not missing, f"exports missing from the docs: {missing}"


# ----------------------------------------------------------------------
# Module docstrings of the online subsystem carry runnable snippets
# ----------------------------------------------------------------------
NARRATIVE_MODULES = [
    "src/repro/online/__init__.py",
    "src/repro/online/scheduler.py",
    "src/repro/workloads/trace.py",
    "src/repro/service.py",
    "src/repro/fleet/__init__.py",
    "src/repro/fleet/service.py",
]


@pytest.mark.parametrize("module_path", NARRATIVE_MODULES)
def test_module_docstring_has_runnable_snippet(module_path):
    """The narrative module docstrings each carry a doctest-style
    snippet, and every statement in it must compile."""
    import doctest

    source = (ROOT / module_path).read_text()
    docstring = ast.get_docstring(ast.parse(source))
    assert docstring, f"{module_path} has no module docstring"
    examples = doctest.DocTestParser().get_examples(docstring)
    assert examples, f"{module_path}: docstring has no >>> snippet"
    for example in examples:
        try:
            compile(example.source, f"<{module_path} docstring>", "exec")
        except SyntaxError as error:  # pragma: no cover - failure path
            pytest.fail(f"{module_path}: docstring snippet: {error}")
