"""Zoo tests: every architecture against its published footprint.

FLOP counts use the 2*MACs convention; expected values are the widely
published ones with a tolerance for our block-encapsulation
approximations (documented in repro/models/zoo/inception.py).
"""

import pytest

from repro.models import (
    MODEL_NAMES,
    ModelGraph,
    TensorShape,
    available_models,
    build_all_models,
    build_model,
    max_layer_count,
    register_model,
)

#: name -> (partition units, GFLOPs (2xMACs), weight MB), tolerances below.
EXPECTED = {
    "alexnet": (8, 2.27, 250),
    "mobilenet": (28, 1.14, 17),
    "resnet34": (18, 7.3, 87),
    "resnet50": (18, 8.2, 102),
    "resnet101": (35, 15.6, 178),
    "vgg13": (13, 22.6, 532),
    "vgg16": (16, 31.0, 553),
    "vgg19": (19, 39.3, 575),
    "squeezenet": (18, 1.7, 5),
    "inception_v3": (17, 12.2, 119),
    "inception_v4": (23, 25.8, 199),
}


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestPerModel:
    def test_unit_count(self, name):
        units, _, _ = EXPECTED[name]
        assert build_model(name).num_layers == units

    def test_gflops_near_published(self, name):
        _, gflops, _ = EXPECTED[name]
        actual = build_model(name).total_flops / 1e9
        assert actual == pytest.approx(gflops, rel=0.15)

    def test_weight_megabytes_near_published(self, name):
        _, _, weight_mb = EXPECTED[name]
        actual = build_model(name).total_weight_bytes / 1e6
        assert actual == pytest.approx(weight_mb, rel=0.15)

    def test_classifier_output(self, name):
        assert build_model(name).output_shape == TensorShape(1000)

    def test_shapes_chain(self, name):
        graph = build_model(name)
        for prev, nxt in zip(graph.layers, graph.layers[1:]):
            assert prev.output_shape == nxt.input_shape

    def test_layer_names_unique(self, name):
        graph = build_model(name)
        names = [layer.name for layer in graph.layers]
        assert len(names) == len(set(names))

    def test_every_layer_costs_something(self, name):
        graph = build_model(name)
        for layer in graph.layers:
            assert layer.flops > 0 or layer.bytes_moved > 0


class TestCrossModel:
    def test_vgg_family_ordering(self):
        assert (
            build_model("vgg13").total_flops
            < build_model("vgg16").total_flops
            < build_model("vgg19").total_flops
        )

    def test_resnet_family_ordering(self):
        assert (
            build_model("resnet34").num_layers
            < build_model("resnet101").num_layers
        )
        assert (
            build_model("resnet50").total_flops
            < build_model("resnet101").total_flops
        )

    def test_squeezenet_is_tiny(self):
        """SqueezeNet's selling point: AlexNet accuracy at 50x fewer
        parameters."""
        squeezenet = build_model("squeezenet").total_weight_bytes
        alexnet = build_model("alexnet").total_weight_bytes
        assert squeezenet * 30 < alexnet

    def test_max_layer_count_is_resnet101(self):
        assert max_layer_count() == build_model("resnet101").num_layers

    def test_build_all_models_returns_paper_order(self):
        graphs = build_all_models()
        assert [graph.name for graph in graphs] == list(MODEL_NAMES)


class TestRegistry:
    def test_available_models_superset_of_paper_set(self):
        assert set(MODEL_NAMES) <= set(available_models())

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("lenet")

    def test_cache_returns_same_object(self):
        assert build_model("alexnet") is build_model("alexnet")

    def test_register_custom_model(self):
        from repro.models import ModelBuilder

        def tiny() -> ModelGraph:
            b = ModelBuilder("tiny_test_net", TensorShape(3, 8, 8))
            b.conv("c", 4).fc("fc", 10)
            return b.build()

        register_model("tiny_test_net", tiny)
        assert build_model("tiny_test_net").num_layers == 2
        with pytest.raises(ValueError, match="already registered"):
            register_model("tiny_test_net", tiny)


#: Extension models: (units, GFLOPs (2xMACs), weight MB).
EXPECTED_EXTENSIONS = {
    "resnet18": (10, 3.6, 47),
    "densenet121": (63, 5.7, 32),
    "efficientnet_b0": (19, 0.78, 21),
}


@pytest.mark.parametrize("name", sorted(EXPECTED_EXTENSIONS))
class TestExtensionModels:
    """The three networks outside the paper's dataset (contribution iii)."""

    def test_not_in_paper_dataset(self, name):
        from repro.models import EXTENSION_MODEL_NAMES

        assert name in EXTENSION_MODEL_NAMES
        assert name not in MODEL_NAMES
        assert name in available_models()

    def test_unit_count(self, name):
        units, _, _ = EXPECTED_EXTENSIONS[name]
        assert build_model(name).num_layers == units

    def test_gflops_near_published(self, name):
        _, gflops, _ = EXPECTED_EXTENSIONS[name]
        actual = build_model(name).total_flops / 1e9
        assert actual == pytest.approx(gflops, rel=0.15)

    def test_weight_megabytes_near_published(self, name):
        _, _, weight_mb = EXPECTED_EXTENSIONS[name]
        actual = build_model(name).total_weight_bytes / 1e6
        assert actual == pytest.approx(weight_mb, rel=0.15)

    def test_shapes_chain(self, name):
        graph = build_model(name)
        for previous, current in zip(graph.layers, graph.layers[1:]):
            assert previous.output_shape == current.input_shape

    def test_classifier_is_last(self, name):
        graph = build_model(name)
        assert graph.layers[-1].role == "fc"
        assert graph.layers[-1].output_shape == TensorShape(1000)


class TestDenseNetGrowth:
    def test_activation_grows_within_block(self):
        """Dense connectivity: the handoff cost of a split grows along
        each block, unlike any dataset model."""
        graph = build_model("densenet121")
        block1 = [
            layer for layer in graph.layers if layer.name.startswith("dense1.")
        ]
        sizes = [layer.output_shape.channels for layer in block1]
        assert sizes == sorted(sizes)
        assert sizes[0] == 64 + 32
        assert sizes[-1] == 64 + 6 * 32


class TestEfficientNetBlocks:
    def test_depthwise_heavy(self):
        """MBConv blocks make EfficientNet depthwise-dominated, the
        kernel class mobile GPUs are weak at (like MobileNet)."""
        graph = build_model("efficientnet_b0")
        kinds = [
            kernel.kind
            for layer in graph.layers
            for kernel in layer.kernels
        ]
        assert kinds.count("depthwise_conv") == 16

    def test_se_gemms_present(self):
        graph = build_model("efficientnet_b0")
        se_kernels = [
            kernel.name
            for layer in graph.layers
            for kernel in layer.kernels
            if ".se." in kernel.name
        ]
        # 16 blocks x (global pool + reduce GEMM + expand GEMM + scale)
        assert len(se_kernels) == 64
