"""Cross-module property-based invariants (hypothesis).

Each property here is a *theorem about the implementation* rather than
a unit behaviour: MCTS anytime monotonicity, the simulator's
permutation equivariance over mix order (paper IV-C: "the order of
DNNs ... is not important"), contention monotonicity under added load,
and conservation of attributed throughput.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MCTSConfig, MonteCarloTreeSearch, SchedulingEnv
from repro.models import build_model
from repro.sim import BoardSimulator, Mapping
from repro.workloads import Workload
from repro.workloads.generator import random_contiguous_mapping

#: Small models keep environments tiny enough for hundreds of searches.
_SMALL_MODELS = ("alexnet", "squeezenet", "mobilenet")


class TestMCTSAnytimeMonotonicity:
    """Budget monotonicity: incumbent reward never decreases."""

    @given(
        seed=st.integers(0, 2**16),
        budget_small=st.integers(5, 60),
        budget_extra=st.integers(1, 120),
        reward_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_larger_budget_never_worse(
        self, seed, budget_small, budget_extra, reward_seed
    ):
        env = SchedulingEnv(Workload.from_names(["alexnet"]), 3)
        rng = np.random.default_rng(reward_seed)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        small = MonteCarloTreeSearch(
            env, reward, MCTSConfig(budget=budget_small, seed=seed)
        ).search()
        large = MonteCarloTreeSearch(
            env,
            reward,
            MCTSConfig(budget=budget_small + budget_extra, seed=seed),
        ).search()
        assert large.reward >= small.reward - 1e-12
        # And incumbent_at reproduces the small run exactly.
        mapping, incumbent = large.incumbent_at(budget_small)
        assert incumbent == small.reward
        assert mapping == small.mapping

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_improvements_sorted_and_strict(self, seed):
        env = SchedulingEnv(Workload.from_names(["squeezenet"]), 3)
        rng = np.random.default_rng(seed)
        table = {}

        def reward(mapping):
            if mapping not in table:
                table[mapping] = float(rng.uniform())
            return table[mapping]

        result = MonteCarloTreeSearch(
            env, reward, MCTSConfig(budget=80, seed=seed)
        ).search()
        iterations = [when for when, _, _ in result.improvements]
        rewards = [value for _, value, _ in result.improvements]
        assert iterations == sorted(iterations)
        assert all(b > a for a, b in zip(rewards, rewards[1:]))


@pytest.fixture(scope="module")
def property_simulator(platform):
    return BoardSimulator(platform)


class TestSimulatorPermutationEquivariance:
    """Paper IV-C: mix order must not matter (models run concurrently)."""

    @given(
        seed=st.integers(0, 2**16),
        order_seed=st.integers(0, 2**16),
        size=st.integers(2, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_rates_permute_with_mix(
        self, property_simulator, seed, order_seed, size
    ):
        rng = np.random.default_rng(seed)
        names = list(
            rng.choice(_SMALL_MODELS, size=size, replace=True)
        )
        models = [build_model(name) for name in names]
        mapping = random_contiguous_mapping(models, 3, rng, max_stages=3)

        permutation = np.random.default_rng(order_seed).permutation(size)
        permuted_models = [models[i] for i in permutation]
        permuted_mapping = Mapping(
            [mapping.assignments[i] for i in permutation]
        )

        original = property_simulator.simulate(models, mapping)
        permuted = property_simulator.simulate(
            permuted_models, permuted_mapping
        )
        np.testing.assert_allclose(
            original.rates[permutation], permuted.rates, rtol=1e-9
        )
        np.testing.assert_allclose(
            original.device_throughput,
            permuted.device_throughput,
            rtol=1e-9,
        )


class TestContentionMonotonicity:
    """Adding a co-resident DNN can only hurt the incumbents."""

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_added_dnn_never_helps(self, property_simulator, seed):
        rng = np.random.default_rng(seed)
        names = list(rng.choice(_SMALL_MODELS, size=2, replace=True))
        models = [build_model(name) for name in names]
        mapping = random_contiguous_mapping(models, 3, rng, max_stages=3)
        alone = property_simulator.simulate(models, mapping)

        extra = build_model("vgg13")
        extended_models = models + [extra]
        extended_mapping = Mapping(
            list(mapping.assignments)
            + list(
                random_contiguous_mapping(
                    [extra], 3, rng, max_stages=3
                ).assignments
            )
        )
        together = property_simulator.simulate(
            extended_models, extended_mapping
        )
        assert (together.rates[:2] <= alone.rates + 1e-9).all()


class TestThroughputConservation:
    """Attributed per-device throughput sums to the aggregate rate."""

    @given(seed=st.integers(0, 2**16), size=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_attribution_sums(self, property_simulator, seed, size):
        rng = np.random.default_rng(seed)
        names = list(rng.choice(_SMALL_MODELS, size=size, replace=True))
        models = [build_model(name) for name in names]
        mapping = random_contiguous_mapping(models, 3, rng, max_stages=3)
        result = property_simulator.simulate(models, mapping)
        assert result.device_throughput.sum() == pytest.approx(
            result.rates.sum(), rel=1e-9
        )
        assert (result.rates > 0).all()
        assert (result.device_utilization <= 1.0 + 1e-9).all()

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_measurement_noise_bounded(self, property_simulator, seed):
        models = [build_model("alexnet"), build_model("mobilenet")]
        mapping = Mapping.single_device(models, 0)
        exact = property_simulator.simulate(models, mapping)
        noisy = property_simulator.measure(
            models, mapping, rng=np.random.default_rng(seed)
        )
        ratio = noisy.rates / exact.rates
        # The clip in measure() bounds multiplicative noise to [0.5, 1.5].
        assert (ratio >= 0.5 - 1e-9).all()
        assert (ratio <= 1.5 + 1e-9).all()


class TestMappingRoundTrips:
    """Stage compilation invariants under random mappings."""

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_stages_partition_layers(self, seed):
        rng = np.random.default_rng(seed)
        model = build_model("mobilenet")
        mapping = random_contiguous_mapping([model], 3, rng)
        stages = mapping.stages(0)
        assert stages[0].start == 0
        assert stages[-1].end == model.num_layers
        for before, after in zip(stages, stages[1:]):
            assert before.end == after.start
            assert before.device_id != after.device_id
        rebuilt = []
        for stage in stages:
            rebuilt.extend([stage.device_id] * stage.num_layers)
        assert rebuilt == list(mapping.assignments[0])
