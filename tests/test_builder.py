"""SystemBuilder tests: laziness, stage caching, shim equivalence."""

import numpy as np
import pytest

from repro import build_system
from repro.builder import SystemBuilder
from repro.core import MCTSConfig
from repro.workloads import Workload


def _small_builder(seed=21):
    return SystemBuilder(seed=seed).with_estimator(
        num_training_samples=40, epochs=2
    )


class TestLaziness:
    def test_construction_builds_nothing(self):
        builder = _small_builder()
        assert builder.built_stages == ()

    def test_baseline_scheduler_never_trains(self):
        """The GPU-only baseline needs the platform only -- pulling it
        must not profile the zoo or train the estimator."""
        builder = _small_builder()
        scheduler = builder.build_scheduler("baseline")
        assert scheduler.name == "Baseline"
        assert builder.built("platform")
        assert not builder.built("latency_table")
        assert not builder.built("trained")

    def test_no_training_until_first_schedule(self):
        """Satellite acceptance: a service over the builder does no
        design-time work until the first request forces it."""
        from repro.service import SchedulingService

        builder = _small_builder()
        service = SchedulingService(builder)
        assert not builder.built("trained")
        response = service.submit(Workload.from_names(["alexnet", "mobilenet"]))
        assert builder.built("trained")
        response.mapping.validate(
            Workload.from_names(["alexnet", "mobilenet"]).models, 3
        )

    def test_artifacts_are_cached(self):
        builder = _small_builder()
        assert builder.latency_table is builder.latency_table
        assert builder.estimator is builder.estimator
        assert builder.build_scheduler("omniboost") is builder.build_scheduler(
            "omniboost"
        )

    def test_train_false_skips_training(self):
        builder = SystemBuilder(seed=21).with_estimator(train=False)
        estimator = builder.estimator
        assert builder.training_history is None
        assert builder.built("trained")  # stage ran, produced no history
        assert estimator.num_parameters == 20044


class TestConfigurationGuards:
    def test_reconfigure_after_build_raises(self):
        builder = _small_builder()
        builder.platform
        with pytest.raises(RuntimeError, match="already built"):
            builder.with_platform(builder.platform)

    def test_seed_change_after_artifacts_raises(self):
        builder = _small_builder()
        builder.platform
        with pytest.raises(RuntimeError):
            builder.with_seed(5)

    def test_models_change_after_table_raises(self):
        builder = _small_builder()
        builder.latency_table
        with pytest.raises(RuntimeError):
            builder.with_models(["alexnet"])

    def test_models_change_after_generator_raises(self):
        """The generator samples from the configured names too — a
        later rename must not leave it stale."""
        builder = _small_builder()
        builder.generator
        with pytest.raises(RuntimeError):
            builder.with_models(["alexnet"])

    def test_fluent_chaining_returns_builder(self):
        builder = SystemBuilder()
        assert builder.with_seed(3) is builder
        assert builder.with_mcts_config(MCTSConfig(seed=1)) is builder


class TestShimEquivalence:
    """build_system() must stay a byte-identical front for the builder."""

    @pytest.fixture(scope="class")
    def pair(self):
        shim = build_system(num_training_samples=40, epochs=2, seed=21)
        built = _small_builder().build()
        return shim, built

    def test_latency_tables_identical(self, pair):
        shim, built = pair
        for name, table in shim.latency_table.tables.items():
            np.testing.assert_array_equal(table, built.latency_table.tables[name])

    def test_trained_weights_identical(self, pair):
        shim, built = pair
        for old, new in zip(
            shim.estimator.network.parameters(),
            built.estimator.network.parameters(),
        ):
            np.testing.assert_array_equal(old.data, new.data)

    def test_training_histories_identical(self, pair):
        shim, built = pair
        assert shim.training_history.val_losses == built.training_history.val_losses

    def test_decisions_identical(self, pair):
        shim, built = pair
        mix = Workload.from_names(["alexnet", "mobilenet", "squeezenet"])
        assert (
            shim.omniboost.schedule(mix).mapping
            == built.omniboost.schedule(mix).mapping
        )

    def test_comparison_set_identical(self, pair):
        shim, built = pair
        assert [s.name for s in shim.schedulers] == [
            s.name for s in built.schedulers
        ]

    def test_checkpoint_roundtrip(self, tmp_path, pair):
        shim, _ = pair
        path = str(tmp_path / "est.npz")
        shim.estimator.save(path)
        loaded = SystemBuilder(seed=21).from_checkpoint(path)
        assert not loaded.built("trained")
        for old, new in zip(
            shim.estimator.network.parameters(),
            loaded.estimator.network.parameters(),
        ):
            np.testing.assert_array_equal(old.data, new.data)
        assert loaded.training_history is None
