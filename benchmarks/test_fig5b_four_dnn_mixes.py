"""FIG5b -- five random 4-DNN mixes (paper Fig. 5b).

The headline regime: a fourth concurrent network pushes the GPU-only
baseline (and MOSAIC, which also overloads the GPU) past the working
set it can serve, while the GA and OmniBoost distribute the workload.
Paper numbers: OmniBoost x4.6 vs the baseline, x2.83 vs MOSAIC, +23%
vs the GA.
"""

from fig5_common import paper_mixes, run_comparison


def test_fig5b_four_dnn_mixes(benchmark, paper_system):
    mixes = paper_mixes(4)
    table = benchmark.pedantic(
        run_comparison, args=(paper_system, mixes, "FIG5b"), rounds=1, iterations=1
    )

    averages = table.averages()
    omni_vs_mosaic = table.relative_gain("OmniBoost", "MOSAIC")
    omni_vs_ga = table.relative_gain("OmniBoost", "GA")
    print(f"\n[FIG5b] averages: {averages}")
    print(f"[FIG5b] OmniBoost vs MOSAIC = x{omni_vs_mosaic:.2f} (paper x2.83), "
          f"vs GA = x{omni_vs_ga:.2f} (paper x1.23)")
    print("[FIG5b] paper: OmniBoost x4.6 vs baseline")

    # Shape: this is the collapse regime -- OmniBoost's average gain
    # over the baseline is the largest of the three mix sizes (the
    # cross-figure bench asserts the ordering) and sits in the band of
    # the strongest competitor.  With the bounded thrash model the
    # collapse factor is x1.5-2+ rather than the paper's x4.6
    # (DESIGN.md deviation 4); our GA baseline is also stronger than
    # the paper's (deviation 5).
    assert averages["OmniBoost"] > 1.5
    assert averages["OmniBoost"] >= averages["MOSAIC"] * 0.85
    assert averages["OmniBoost"] >= averages["GA"] * 0.6
    assert averages["GA"] > 1.5  # distributors beat the baseline by a lot


def test_fig5b_baseline_saturates_gpu(benchmark, paper_system):
    """The mechanism behind the gap: on a heavy 4-mix the baseline
    saturates (and thrashes) the GPU while OmniBoost spreads load."""
    from repro import Workload
    from repro.hw import GPU_ID

    mix = Workload.from_names(["vgg19", "inception_v4", "resnet101", "vgg16"])
    baseline = paper_system.baseline.schedule(mix)
    result = benchmark.pedantic(
        paper_system.simulator.simulate,
        args=(mix.models, baseline.mapping),
        rounds=1,
        iterations=1,
    )
    print(f"\n[FIG5b] baseline GPU utilization={result.device_utilization[GPU_ID]:.2f}, "
          f"GPU slowdown factor={result.device_scale[GPU_ID]:.1f}x")
    assert result.device_utilization[GPU_ID] > 0.99
    assert result.device_scale[GPU_ID] > 2.0

    # OmniBoost spreads the load and clearly beats the saturated
    # baseline even on this mix -- the single heaviest (2.0 GB) in the
    # evaluation and the worst case for the latency-only estimator,
    # whose byte-driven effects it can only infer indirectly.  A
    # simulator-oracle search reaches ~x2.9 here; the estimator-driven
    # scheduler must keep a solid fraction of that.
    omni = paper_system.omniboost.schedule(mix)
    spread = paper_system.simulator.simulate(mix.models, omni.mapping)
    assert len(omni.mapping.devices_used()) >= 2
    assert spread.average_throughput > 1.25 * result.average_throughput
