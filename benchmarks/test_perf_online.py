"""PERF-ONLINE -- warm-started re-scheduling vs cold search under churn.

The online subsystem's claim: after a tenancy change, re-planning by
warm-starting MCTS from the previous decision's retained rows (seeded
incumbent + convergence patience) costs a fraction of a cold search at
the same configured budget, without giving up estimated throughput.

This bench measures exactly the acceptance gate: on three churn
scenarios, replay the trace to a single departure whose surviving mix
still has >= 3 DNNs, re-plan it warm (greedy seed refinement +
patience 80, budget 500), and compare against a cold full search of
the identical post-departure mix at the identical budget and seed:

* the warm re-search must spend <= half the estimator evaluations
  (the decision loop's dominant cost, Section V-B);
* its estimated throughput must be equal or better -- the refined
  seed settles as the search's incumbent, so the result can never
  fall below it, and the budgeted loop shares the cold search's
  trajectory, so everything the cold search finds before the
  patience stop is inherited too.

Wall-clock is reported for context; the gate is on evaluations, which
are deterministic for the seeded search.
"""

import time

import pytest

from repro.core import MCTSConfig, OmniBoostScheduler
from repro.models import MODEL_NAMES
from repro.online import OnlineConfig, OnlineScheduler
from repro.slo import preemption_victims
from repro.workloads import ArrivalEvent, churn_scenario

BUDGET = 500
PATIENCE = 80
SCENARIOS = ("bursty", "diurnal", "steady-drain")


def _replay_to_departure(trace, min_survivors: int = 3):
    """Index of the first departure leaving >= ``min_survivors`` tenants."""
    active = 0
    for index, event in enumerate(trace):
        if event.kind == "arrival":
            active += 1
        else:
            if active - 1 >= min_survivors:
                return index
            active -= 1
    raise AssertionError(
        f"trace {trace.name!r} has no departure with {min_survivors} survivors"
    )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_perf_warm_restart_after_departure(benchmark, paper_system, scenario):
    trace = churn_scenario(scenario, seed=0)
    departure_index = _replay_to_departure(trace)

    config = MCTSConfig(budget=BUDGET, seed=5)
    online = OnlineScheduler(
        OmniBoostScheduler(paper_system.estimator, config=config),
        OnlineConfig(warm_patience=PATIENCE),
    )
    for event in trace.events[:departure_index]:
        online.apply(event)
    # One full-budget plan of the pre-departure mix establishes the
    # retained rows every production deployment would already hold.
    pre = online.plan()
    assert pre.mode == "cold"

    online.apply(trace.events[departure_index])
    post_workload = online.current_workload()
    assert post_workload.num_dnns >= 3

    cold_scheduler = OmniBoostScheduler(paper_system.estimator, config=config)

    def run():
        warm_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        warm = online.plan()
        warm_s = time.perf_counter() - warm_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        cold_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        cold = cold_scheduler.schedule(post_workload)
        cold_s = time.perf_counter() - cold_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        return warm, warm_s, cold, cold_s

    warm, warm_s, cold, cold_s = benchmark.pedantic(run, rounds=1, iterations=1)

    warm_evals = warm.decision.cost["estimator_queries"]
    cold_evals = cold.cost["estimator_queries"]
    eval_speedup = cold_evals / warm_evals
    print(
        f"\n[PERF-ONLINE] {scenario}: departure #{departure_index} leaves "
        f"{post_workload.num_dnns} DNNs; warm {warm_evals:.0f} evals "
        f"({warm_s:.2f}s, score {warm.expected_score:.3f}) vs cold "
        f"{cold_evals:.0f} evals ({cold_s:.2f}s, score "
        f"{cold.expected_score:.3f}) -- {eval_speedup:.1f}x fewer "
        f"evaluations, {cold_s / warm_s:.1f}x wall-clock"
    )

    assert warm.mode == "warm"
    assert warm.stopped_early
    # The acceptance gate: >= 2x fewer estimator evaluations at equal
    # budget, at equal-or-better estimated throughput.
    assert eval_speedup >= 2.0
    assert warm.expected_score >= cold.expected_score


def test_perf_preemptive_warm_replan(benchmark, paper_system):
    """SLO preemption re-plans warm: evict one, admit one, search cheap.

    The enforcement path (:mod:`repro.slo`) turns a high-priority
    arrival into evict-lowest + re-plan.  That replacement is a
    retained-row warm start over the survivors, so it must spend
    strictly fewer estimator forwards than a cold search of the
    identical post-preemption mix at the same budget and seed -- the
    count-based gate behind the docs/slo.md claim that preemption
    costs a fraction of a cold search.
    """
    trace = churn_scenario("priority-storm", seed=0)
    config = MCTSConfig(budget=BUDGET, seed=5)
    online = OnlineScheduler(
        OmniBoostScheduler(paper_system.estimator, config=config),
        OnlineConfig(warm_patience=PATIENCE),
    )
    for event in trace:
        if event.kind == "arrival" and len(online.active) < 4:
            online.apply(event)
        if len(online.active) == 4:
            break
    assert len(online.active) == 4
    pre = online.plan()
    assert pre.mode == "cold"

    # A priority-3 arrival finds the board full: the enforcement loop
    # names the lowest-priority resident and swaps it out.
    victims = preemption_victims(online.active, incoming_priority=3)
    assert victims, "priority-storm anchors must be preemptible"
    victim_id, _, victim_priority = victims[0]
    assert victim_priority < 3
    resident_models = {model for model, _ in online.active.values()}
    incoming_model = next(
        name for name in MODEL_NAMES if name not in resident_models
    )
    stamp = trace.events[-1].time_s
    online.apply(ArrivalEvent(stamp, "departure", victim_id, "", 0))
    online.apply(
        ArrivalEvent(stamp, "arrival", "preempt-in", incoming_model, 3)
    )
    post_workload = online.current_workload()
    assert post_workload.num_dnns == 4

    cold_scheduler = OmniBoostScheduler(paper_system.estimator, config=config)

    def run():
        warm_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        warm = online.plan()
        warm_s = time.perf_counter() - warm_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        cold_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        cold = cold_scheduler.schedule(post_workload)
        cold_s = time.perf_counter() - cold_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        return warm, warm_s, cold, cold_s

    warm, warm_s, cold, cold_s = benchmark.pedantic(run, rounds=1, iterations=1)

    warm_evals = warm.decision.cost["estimator_queries"]
    cold_evals = cold.cost["estimator_queries"]
    print(
        f"\n[PERF-ONLINE] preemption: evicted {victim_id!r} "
        f"(priority {victim_priority}) for {incoming_model!r}; warm "
        f"{warm_evals:.0f} evals ({warm_s:.2f}s, score "
        f"{warm.expected_score:.3f}) vs cold {cold_evals:.0f} evals "
        f"({cold_s:.2f}s, score {cold.expected_score:.3f}) -- "
        f"{cold_evals / warm_evals:.1f}x fewer evaluations"
    )

    assert warm.mode == "warm"
    # The gate: strictly fewer estimator forwards than a cold re-plan
    # of the same post-preemption mix at equal budget (count-based).
    assert warm_evals < cold_evals
