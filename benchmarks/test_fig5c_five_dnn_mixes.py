"""FIG5c -- five random 5-DNN mixes (paper Fig. 5c).

Five concurrent networks overload *all* computing resources: residency
pressure degrades the CPU clusters that load-balancing relies on, so
every scheduler's gains compress.  Paper numbers: MOSAIC falls 2.7%
behind the baseline, the GA gains +7%, OmniBoost +22%.
"""

from fig5_common import paper_mixes, run_comparison


def test_fig5c_five_dnn_mixes(benchmark, paper_system):
    mixes = paper_mixes(5)
    table = benchmark.pedantic(
        run_comparison, args=(paper_system, mixes, "FIG5c"), rounds=1, iterations=1
    )

    averages = table.averages()
    print(f"\n[FIG5c] averages: {averages}")
    print("[FIG5c] paper: MOSAIC -2.7%, GA +7%, OmniBoost +22% vs baseline")

    # Shape: gains compressed relative to the 4-DNN regime; OmniBoost
    # still above the baseline; nobody wins by the 4-DNN multiples.
    # The 5-DNN regime is where our reproduction deviates most: the
    # strengthened GA (DESIGN.md deviation 4) leads it, so OmniBoost is
    # only required to stay within a loose band of the competitors.
    assert 0.95 < averages["OmniBoost"] < 2.6
    assert averages["OmniBoost"] >= averages["MOSAIC"] * 0.6
    assert averages["OmniBoost"] >= averages["GA"] * 0.55


def test_fig5c_gains_compress_relative_to_fig5b(benchmark, paper_system):
    """The cross-figure shape the paper reports: the OmniBoost-over-
    baseline factor at 5 DNNs is well below the 4-DNN factor."""
    table4 = benchmark.pedantic(
        run_comparison,
        args=(paper_system, paper_mixes(4), "FIG5c/ref4"),
        rounds=1,
        iterations=1,
    )
    table5 = run_comparison(paper_system, paper_mixes(5), "FIG5c/ref5")
    gain4 = table4.average("OmniBoost")
    gain5 = table5.average("OmniBoost")
    print(f"\n[FIG5c] OmniBoost avg gain: 4-DNN x{gain4:.2f} vs 5-DNN x{gain5:.2f}")
    assert gain5 < gain4


def test_fig5c_six_dnns_hang_the_board(benchmark, paper_system):
    """Paper: 'we also tried mixes with 6 concurrent DNNs, but the
    overall workload [was] too heavy ... making it unresponsive.'"""
    import pytest

    from repro import Workload
    from repro.sim import BoardUnresponsiveError, Mapping

    mix = Workload.from_names(
        ["alexnet", "squeezenet", "mobilenet", "vgg13", "resnet34", "resnet50"]
    )

    def attempt():
        with pytest.raises(BoardUnresponsiveError):
            paper_system.simulator.simulate(
                mix.models, Mapping.single_device(mix.models, 0)
            )

    benchmark.pedantic(attempt, rounds=1, iterations=1)
