"""FIG5a -- five random 3-DNN mixes (paper Fig. 5a).

Paper shape: the board is not saturated by three networks, so gains are
moderate -- OmniBoost averages +54% over the baseline, +19% over MOSAIC
and +18% over the GA, and on the lightest mix all schedulers tie.
"""

from fig5_common import paper_mixes, run_comparison


def test_fig5a_three_dnn_mixes(benchmark, paper_system):
    mixes = paper_mixes(3)
    table = benchmark.pedantic(
        run_comparison, args=(paper_system, mixes, "FIG5a"), rounds=1, iterations=1
    )

    averages = table.averages()
    print(f"\n[FIG5a] averages: {averages}")
    print("[FIG5a] paper: OmniBoost +54% vs baseline, +19% vs MOSAIC, "
          "+18% vs GA")

    # Shape: OmniBoost clearly above the baseline, in the same band as
    # the strongest competitor, gains moderate (not the 4-DNN collapse
    # regime).  Our GA baseline is stronger than the paper's
    # (DESIGN.md deviation 4), so OmniBoost is only required to stay
    # within its band rather than lead it outright.
    assert averages["OmniBoost"] > 1.05
    assert averages["OmniBoost"] < 2.5
    assert averages["OmniBoost"] >= averages["MOSAIC"] * 0.85
    assert averages["OmniBoost"] >= averages["GA"] * 0.75
    assert averages["Baseline"] == 1.0


def test_fig5a_light_mix_ties(benchmark, paper_system):
    """Paper: 'mix-5 consists of lightweight DNNs such as AlexNet,
    VGG-13, and MobileNet' and every scheduler lands close to the
    baseline there."""
    from repro import Workload
    from repro.evaluation import EvaluationHarness

    light = Workload.from_names(["alexnet", "vgg13", "mobilenet"])
    harness = EvaluationHarness(
        paper_system.simulator, paper_system.schedulers, baseline_name="Baseline"
    )
    evaluation = benchmark.pedantic(
        harness.evaluate_mix,
        args=(light,),
        kwargs=dict(mix_name="light-mix"),
        rounds=1,
        iterations=1,
    )
    spread = [
        evaluation.outcome(name).normalized_throughput
        for name in evaluation.scheduler_names
    ]
    print(f"\n[FIG5a] light mix normalized: "
          f"{dict(zip(evaluation.scheduler_names, [round(s, 2) for s in spread]))}")
    # No scheduler should be able to find more than ~35% on this mix,
    # and nobody should fall far below the baseline either.
    assert max(spread) < 1.45
    assert min(spread) > 0.75
