"""ABL-STAGES -- the pipeline-stage cap (paper Section IV-C).

The paper labels mappings with more pipeline stages than computing
components as *losing states* "to avoid redundant pipeline stages,
thus minimizing data transfers and undesired performance delays".
This ablation measures both enforcement modes and the cost of lifting
the cap entirely.
"""

import numpy as np

from repro.core import MCTSConfig, OmniBoostScheduler
from repro.evaluation import format_table
from repro.workloads import WorkloadGenerator


def test_ablation_stage_cap(benchmark, paper_system):
    generator = WorkloadGenerator(seed=808)
    mixes = [generator.sample_mix(4) for _ in range(3)]
    simulator = paper_system.simulator

    variants = {
        "cap=3 (masked)": dict(stage_cap=3, mask_illegal=True),
        "cap=3 (losing states)": dict(stage_cap=3, mask_illegal=False),
        "cap=8 (virtually uncapped)": dict(stage_cap=8, mask_illegal=True),
    }

    def run():
        results = {}
        for label, kwargs in variants.items():
            throughputs = []
            stage_counts = []
            losing = 0
            for mix in mixes:
                scheduler = OmniBoostScheduler(
                    paper_system.estimator,
                    config=MCTSConfig(budget=500, seed=29),
                    **kwargs,
                )
                decision = scheduler.schedule(mix)
                measured = simulator.simulate(mix.models, decision.mapping)
                throughputs.append(measured.average_throughput)
                stage_counts.append(decision.mapping.max_stages)
                losing += int(decision.cost["losing_rollouts"])
            results[label] = (
                float(np.mean(throughputs)),
                max(stage_counts),
                losing,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, f"{throughput:.2f}", stages, losing]
        for label, (throughput, stages, losing) in results.items()
    ]
    print()
    print(
        format_table(
            ["variant", "mean T (inf/s)", "max stages", "losing rollouts"], rows
        )
    )

    masked_throughput, masked_stages, masked_losing = results["cap=3 (masked)"]
    losing_throughput, losing_stages, losing_rollouts = results[
        "cap=3 (losing states)"
    ]
    uncapped_throughput, uncapped_stages, _ = results["cap=8 (virtually uncapped)"]

    # Both enforcement modes respect the cap; masking wastes no budget.
    assert masked_stages <= 3
    assert losing_stages <= 3
    assert masked_losing == 0
    assert losing_rollouts > 0
    # Masking converts losing rollouts into evaluations, so it should
    # never be substantially worse than the losing-state formulation.
    assert masked_throughput >= losing_throughput * 0.9
    # Lifting the cap cannot help much: extra stages mean extra
    # transfers (this is the paper's justification for the rule).
    assert masked_throughput >= uncapped_throughput * 0.85
