"""ABL-EVAL -- CNN estimator vs. a board-oracle evaluator.

DESIGN.md calls out the estimator as the component to ablate: how much
throughput is lost by evaluating MCTS rollouts with the learned CNN
instead of (infeasibly slow) live board measurements?  The paper argues
the estimator is accurate enough for scheduling; here we quantify the
gap on the same searches.
"""

import numpy as np

from repro.core import MCTSConfig, MonteCarloTreeSearch, SchedulingEnv
from repro.evaluation import format_table
from repro.workloads import WorkloadGenerator


def test_ablation_estimator_vs_oracle(benchmark, paper_system):
    generator = WorkloadGenerator(seed=707)
    mixes = [generator.sample_mix(4) for _ in range(3)]
    simulator = paper_system.simulator

    def run():
        rows = []
        for mix in mixes:
            env = SchedulingEnv(mix, simulator.platform.num_devices)
            oracle_search = MonteCarloTreeSearch(
                env,
                lambda mapping, mix=mix: simulator.simulate(
                    mix.models, mapping
                ).average_throughput,
                MCTSConfig(budget=500, seed=23),
            )
            oracle_mapping = oracle_search.search().mapping
            oracle_throughput = simulator.simulate(
                mix.models, oracle_mapping
            ).average_throughput

            estimator_search = MonteCarloTreeSearch(
                env,
                lambda mapping, mix=mix: paper_system.estimator.reward(
                    mix, mapping
                ),
                MCTSConfig(budget=500, seed=23),
            )
            estimator_mapping = estimator_search.search().mapping
            estimator_throughput = simulator.simulate(
                mix.models, estimator_mapping
            ).average_throughput
            rows.append((mix.name, oracle_throughput, estimator_throughput))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = [
        [name[:40], f"{oracle:.2f}", f"{est:.2f}", f"{est / oracle:.2f}"]
        for name, oracle, est in rows
    ]
    print()
    print(
        format_table(
            ["mix", "oracle T", "estimator T", "retention"], table_rows
        )
    )

    retention = np.mean([est / oracle for _, oracle, est in rows])
    print(f"\n[ABL-EVAL] mean retention = {retention:.2f} "
          "(1.0 = estimator as good as live measurement)")
    # The learned estimator must retain most of the oracle's quality --
    # that is the premise of the whole framework.
    assert retention > 0.6
    # And it cannot (systematically) beat the oracle.
    assert retention < 1.15
