"""FIG4 -- estimator training behaviour (paper Section V, Fig. 4).

The paper's exact design-time regimen: 500 random workloads of 1-5
concurrent DNNs measured on the board, 400/100 train/validation split,
the 20,044-parameter CNN trained with L1 loss for 100 epochs (training
took under a minute on a discrete GPU; a numpy backprop engine on a
host CPU takes a couple of minutes).

Paper shape: training loss falls from ~0.35 to ~0.1 and the validation
curve tracks it without divergence.
"""

import numpy as np
import pytest

from repro import hikey970
from repro.estimator import (
    EmbeddingSpace,
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    ThroughputEstimator,
)
from repro.models import MODEL_NAMES, build_all_models
from repro.sim import BoardSimulator, KernelProfiler
from repro.workloads import WorkloadGenerator

SAMPLES = 500
TRAIN_SIZE = 400
EPOCHS = 100
SEED = 0


@pytest.fixture(scope="module")
def dataset_and_estimator():
    platform = hikey970()
    simulator = BoardSimulator(platform)
    table = KernelProfiler(platform).profile(build_all_models(), seed=SEED)
    embedding = EmbeddingSpace(table, MODEL_NAMES)
    estimator = ThroughputEstimator(
        embedding, rng=np.random.default_rng(SEED + 1)
    )
    generator = WorkloadGenerator(seed=SEED + 2)
    dataset = EstimatorDatasetBuilder(simulator, generator, estimator).build(
        num_samples=SAMPLES, measurement_seed=SEED + 3
    )
    return dataset, estimator


def test_fig4_estimator_training(benchmark, dataset_and_estimator):
    dataset, estimator = dataset_and_estimator
    trainer = EstimatorTrainer(estimator, loss="l1")

    history = benchmark.pedantic(
        trainer.train,
        kwargs=dict(dataset=dataset, epochs=EPOCHS, train_size=TRAIN_SIZE, seed=SEED),
        rounds=1,
        iterations=1,
    )

    print(f"\n[FIG4] estimator parameters = {estimator.num_parameters} "
          "(paper: 20,044)")
    print("[FIG4] epoch  train    val")
    for epoch, train, val in history.rows()[:: max(1, EPOCHS // 10)]:
        print(f"[FIG4] {epoch:>5}  {train:.4f}  {val:.4f}")
    print(f"[FIG4] final train={history.final_train_loss:.4f} "
          f"val={history.final_val_loss:.4f} "
          f"(paper: ~0.35 -> ~0.10); wall={history.wall_time_s:.0f}s")

    assert estimator.num_parameters == 20044
    # Shape: losses start high, converge to ~0.1, validation tracks.
    assert history.train_losses[0] > 0.18
    assert history.final_train_loss < 0.12
    assert history.final_val_loss < 0.15
    assert history.final_val_loss < history.val_losses[0]
    # No divergence: the final validation loss sits at (or within 15%
    # of) its best value over the run -- the curve keeps tracking, it
    # never turns upward.  (Training loss falls further than validation
    # under the cosine-decayed tail; that generalization gap is not
    # divergence.)
    assert history.final_val_loss <= history.best_val_loss * 1.15


def test_fig4_l2_is_worse_or_equal(benchmark, dataset_and_estimator):
    """Paper: 'We also trained our model using L2-loss function, but it
    proved to be too aggressive in some cases, thus resulting in
    sub-optimal model weights.'  We verify L1's final validation L1
    error is at least as good as what L2 training achieves."""
    dataset, _ = dataset_and_estimator
    embedding = dataset_and_estimator[1].embedding

    def train_with(loss):
        estimator = ThroughputEstimator(
            embedding, rng=np.random.default_rng(SEED + 1)
        )
        trainer = EstimatorTrainer(estimator, loss=loss)
        trainer.train(dataset, epochs=30, train_size=TRAIN_SIZE, seed=SEED)
        # Evaluate both under the same L1 criterion.
        l1_trainer = EstimatorTrainer(estimator, loss="l1")
        from repro.nn.data import TensorDataset

        normalized = estimator.target_transform.transform(dataset.targets)
        _, val = TensorDataset(dataset.inputs, normalized).split(TRAIN_SIZE)
        return l1_trainer.evaluate(val)

    l1_val = benchmark.pedantic(train_with, args=("l1",), rounds=1, iterations=1)
    l2_val = train_with("l2")
    print(f"\n[FIG4] val L1-error: trained with L1 = {l1_val:.4f}, "
          f"with L2 = {l2_val:.4f}")
    assert l1_val <= l2_val * 1.25
