"""PERF-FLEET -- cross-request pooled scheduling vs sequential per board.

The fleet's serving claim: after placement fans a burst out to the
boards, each board answers its whole share in ONE pooled
``schedule_many`` drive — every in-flight search's leaf evaluations
priced in shared ``predict_throughput_batch`` calls — instead of one
full sequential search per request.  Per-sample batch invariance makes
the pooled decisions byte-identical to the sequential loop, so the
batching is purely an amortization win; this bench gates its size.

Setup: an 8-request burst (the ``request-burst`` fleet scenario)
across a three-board heterogeneous cluster.  Two identically seeded
fleets serve it — one pooled (``FleetService.schedule_many``), one
sequentially (each request submitted alone to the SAME board the
pooled placement chose, preserving every board's share and order).
Estimator *forward calls* are counted per board by wrapping
``predict_throughput_batch`` after the boards materialize; the count
is deterministic for the seeded searches, so the gate is robust on a
single-core box (wall-time is reported for context only).

Gates:

* the pooled fleet spends >= 2x fewer estimator forward calls than
  the sequential loop (the pooled arm's count *includes* its
  placement-scoring calls; the sequential arm pays none, which only
  makes the gate harder);
* equal-or-better total expected score, and byte-identical mappings
  (the pooling must never change a decision).

The second bench gates the elastic drain path: retiring a board by
*warm-migrating* its residents (each hop a warm-started re-search on
the destination) must spend >= 2x fewer estimator forward calls than
cold re-placement of the same residents (a full-budget search per
hop).  Wall-time is informational only — the counts are the gate.
"""

import time

import pytest

from repro.core import MCTSConfig, ScheduleRequest
from repro.fleet import Cluster, FleetService
from repro.online import OnlineConfig
from repro.workloads import ArrivalEvent, ArrivalTrace, fleet_scenario

BOARDS = {
    "edge0": "hikey970",
    "edge1": "hikey970_with_npu",
    "edge2": "cpu_only_board",
}
ESTIMATOR = {"num_training_samples": 60, "epochs": 5}
BUDGET = 200
SEED = 0


def _fleet() -> FleetService:
    cluster = Cluster.from_presets(
        BOARDS,
        seed=SEED,
        estimator=ESTIMATOR,
        mcts_config=MCTSConfig(budget=BUDGET, seed=SEED + 5),
    )
    return FleetService(cluster)


def _count_forward_calls(service: FleetService) -> dict:
    """Materialize every board, then count its estimator forward calls."""
    counter = {"calls": 0}
    for name in service.cluster.board_names:
        estimator = service.engine(name).scheduler.estimator
        original = estimator.predict_throughput_batch

        def wrapped(pairs, _original=original):
            counter["calls"] += 1
            return _original(pairs)

        estimator.predict_throughput_batch = wrapped
    return counter


def test_perf_fleet_pooled_burst_vs_sequential(benchmark):
    mixes = fleet_scenario("request-burst").build_mixes(SEED)
    requests = [
        ScheduleRequest(workload=mix, request_id=str(index))
        for index, mix in enumerate(mixes)
    ]

    pooled_fleet = _fleet()
    pooled_counter = _count_forward_calls(pooled_fleet)
    sequential_fleet = _fleet()
    sequential_counter = _count_forward_calls(sequential_fleet)

    def run():
        pooled_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        pooled = pooled_fleet.schedule_many(requests)
        pooled_s = time.perf_counter() - pooled_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        # Sequential arm: same placement (each request straight to the
        # board the pooled run chose, preserving per-board order), one
        # full search at a time.
        sequential_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        sequential = [
            sequential_fleet.engine(response.board).submit(request)
            for request, response in zip(requests, pooled)
        ]
        sequential_s = time.perf_counter() - sequential_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        return pooled, pooled_s, sequential, sequential_s

    pooled, pooled_s, sequential, sequential_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    pooled_calls = pooled_counter["calls"]
    sequential_calls = sequential_counter["calls"]
    call_reduction = sequential_calls / pooled_calls
    per_board = {
        name: pooled_fleet.stats().per_board[name].requests_served
        for name in BOARDS
    }
    pooled_total = sum(r.expected_score for r in pooled)
    sequential_total = sum(r.expected_score for r in sequential)
    print(
        f"\n[PERF-FLEET] 8-request burst over {per_board}: pooled "
        f"{pooled_calls} estimator forward calls ({pooled_s:.2f}s, "
        f"total score {pooled_total:.3f}) vs sequential "
        f"{sequential_calls} calls ({sequential_s:.2f}s, total score "
        f"{sequential_total:.3f}) -- {call_reduction:.1f}x fewer calls"
    )

    # Every board served >= 2 requests: the burst genuinely pooled.
    assert all(count >= 2 for count in per_board.values())
    # The acceptance gate: >= 2x fewer estimator forward calls via
    # cross-request pooling, at equal-or-better total score.
    assert call_reduction >= 2.0
    assert pooled_total >= sequential_total - 1e-12
    # And the pooling never changed a decision.
    for pooled_response, sequential_response in zip(pooled, sequential):
        assert pooled_response.mapping == sequential_response.mapping
        assert (
            pooled_response.expected_score
            == sequential_response.expected_score
        )


def test_perf_fleet_warm_drain_vs_cold_replacement(benchmark):
    """Drain-and-retire must ride the warm-migration discount.

    Two identically seeded two-board fleets host the same four
    residents (greedy-load spreads them 2/2); each then drains
    ``edge0``.  The warm fleet replayed its trace with warm re-search
    enabled, so every migration hop re-plans the destination from its
    warm tree; the cold fleet replayed with ``warm=False``, so every
    hop pays a full-budget search.  Counters are installed *after* the
    populate phase — they price only the drain.
    """
    trace = ArrivalTrace(
        [
            ArrivalEvent(0.0, "arrival", "t0", "alexnet"),
            ArrivalEvent(1.0, "arrival", "t1", "mobilenet"),
            ArrivalEvent(2.0, "arrival", "t2", "vgg13"),
            ArrivalEvent(3.0, "arrival", "t3", "squeezenet"),
        ]
    )

    def build() -> FleetService:
        cluster = Cluster.from_presets(
            {"edge0": "hikey970", "edge1": "hikey970"},
            seed=SEED,
            estimator=ESTIMATOR,
            mcts_config=MCTSConfig(budget=BUDGET, seed=SEED + 5),
        )
        return FleetService(cluster, placement="greedy-load")

    warm_fleet = build()
    warm_fleet.run_trace(trace, online=OnlineConfig(warm_patience=60))
    cold_fleet = build()
    cold_fleet.run_trace(trace, online=OnlineConfig(warm=False))
    residents = set(warm_fleet._tenants["edge0"])
    assert len(residents) >= 2
    assert set(cold_fleet._tenants["edge0"]) == residents

    warm_counter = _count_forward_calls(warm_fleet)
    cold_counter = _count_forward_calls(cold_fleet)

    def run():
        warm_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        warm_records = warm_fleet.drain_board("edge0", time_s=10.0)
        warm_s = time.perf_counter() - warm_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        cold_started = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        cold_records = cold_fleet.drain_board("edge0", time_s=10.0)
        cold_s = time.perf_counter() - cold_started  # repro: lint-ignore[RPR002] -- informational host timing, not gated
        return warm_records, warm_s, cold_records, cold_s

    warm_records, warm_s, cold_records, cold_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    warm_calls = warm_counter["calls"]
    cold_calls = cold_counter["calls"]
    assert warm_calls > 0
    call_reduction = cold_calls / warm_calls
    print(
        f"\n[PERF-FLEET] drain of {len(residents)} residents: warm "
        f"migration {warm_calls} estimator forward calls ({warm_s:.2f}s) "
        f"vs cold re-placement {cold_calls} calls ({cold_s:.2f}s) -- "
        f"{call_reduction:.1f}x fewer calls"
    )

    # Both arms conserved every resident on the survivor...
    for fleet in (warm_fleet, cold_fleet):
        assert fleet.cluster.board_names == ("edge1",)
        assert residents <= set(fleet._tenants["edge1"])
    migration_pairs = 2 * len(residents)
    assert len(warm_records) == migration_pairs + 1  # + retirement marker
    assert len(cold_records) == migration_pairs + 1
    # ...and the warm path is the acceptance gate: >= 2x fewer
    # estimator forward calls than cold re-placement.
    assert call_reduction >= 2.0
