"""Shared machinery for the Fig.-5 throughput-comparison benches.

Each subplot uses five seeded random mixes of a fixed size (the paper
"constructed multiple random mixes"), runs the four schedulers through
the evaluation harness and prints the normalized rows the figure plots.
"""

from __future__ import annotations

from typing import List

from repro import Workload
from repro.evaluation import ComparisonTable, EvaluationHarness, format_comparison
from repro.workloads import WorkloadGenerator

#: Seeds chosen once for the three subplots (any seed works; these are
#: fixed so the benches are reproducible run to run).
MIX_SEEDS = {3: 101, 4: 202, 5: 303}
NUM_MIXES = 5


def paper_mixes(size: int, count: int = NUM_MIXES) -> List[Workload]:
    """Five random size-``size`` mixes, as in Section V-A."""
    generator = WorkloadGenerator(seed=MIX_SEEDS[size])
    return [generator.sample_mix(size) for _ in range(count)]


def run_comparison(system, mixes: List[Workload], label: str) -> ComparisonTable:
    """Evaluate all four schedulers over ``mixes`` and print the table."""
    harness = EvaluationHarness(
        system.simulator, system.schedulers, baseline_name="Baseline"
    )
    table = harness.evaluate_mixes(mixes)
    print()
    print(format_comparison(table, title=f"[{label}] normalized average throughput"))
    for evaluation in table.evaluations:
        names = ", ".join(evaluation.workload.model_names)
        print(f"[{label}] {evaluation.mix_name}: {names}")
    return table
