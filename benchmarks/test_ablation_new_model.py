"""ABL-NEWMODEL -- robustness to new DNNs (paper contribution iii).

The paper claims OmniBoost "is designed to be robust to new DNN models
added on top of the existing dataset" and that kernel-based profiling
"offers greater adaptability when incorporating new DNN models".  This
bench tests the claim end to end: three networks the estimator never
saw at design time (ResNet-18, DenseNet-121, EfficientNet-B0) are
kernel-profiled, appended to the embedding tensor on its frozen scale,
and scheduled inside heavy mixes -- with ZERO retraining.

Two deployments are compared:

* ``reserved_system`` -- the production recipe: the design-time tensor
  reserved spare columns, so adding models keeps the input geometry
  and every existing prediction bit-identical.
* the plain ``paper_system`` -- naive geometry growth, which dilutes
  the backbone's globally pooled features; reported for contrast.
"""

import numpy as np

from repro import Workload
from repro.evaluation import format_table
from repro.models import EXTENSION_MODEL_NAMES, build_model
from repro.sim import KernelProfiler, Mapping

#: Dataset companions forming a heavy mix around each newcomer.
COMPANIONS = ("vgg19", "resnet50", "inception_v3")


def _extended_scheduler(system, profiler_seed=97):
    """Profile the extension models and extend the system's estimator."""
    from repro.core import MCTSConfig, OmniBoostScheduler

    profiler = KernelProfiler(system.platform)
    models = [build_model(name) for name in EXTENSION_MODEL_NAMES]
    table = profiler.profile(models, seed=profiler_seed)
    embedding = system.embedding.extend(table, EXTENSION_MODEL_NAMES)
    estimator = system.estimator.with_embedding(embedding)
    scheduler = OmniBoostScheduler(estimator, config=MCTSConfig(seed=11))
    return scheduler


def test_ablation_new_model_no_retraining(benchmark, reserved_system):
    system = reserved_system
    scheduler = _extended_scheduler(system)
    # Geometry must be unchanged: that is what the reservation buys.
    assert (
        scheduler.estimator.embedding.input_shape
        == system.embedding.input_shape
    )

    def run():
        rows = []
        for newcomer in EXTENSION_MODEL_NAMES:
            mix = Workload.from_names([newcomer, *COMPANIONS])
            baseline = system.simulator.simulate(
                mix.models, Mapping.single_device(mix.models, 0)
            ).average_throughput
            decision = scheduler.schedule(mix)
            measured = system.simulator.simulate(mix.models, decision.mapping)
            rows.append(
                (newcomer, baseline, measured.average_throughput)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["newcomer", "baseline T", "OmniBoost T", "normalized"],
            [
                [name, f"{base:.2f}", f"{omni:.2f}", f"{omni / base:.2f}"]
                for name, base, omni in rows
            ],
        )
    )
    # The scheduler must keep beating the GPU-only baseline on heavy
    # mixes built around a network it has never been trained on.
    for name, base, omni in rows:
        assert omni >= base * 1.15, f"no gain over baseline with {name}"


def test_ablation_new_model_geometry_dilution(benchmark, paper_system):
    """Contrast: extending WITHOUT reserved capacity grows the tensor
    and shifts every prediction.  The scheduler still works, but the
    reserved recipe is the one that keeps design-time behaviour
    intact -- this test quantifies the difference that motivates it."""
    system = paper_system
    scheduler = _extended_scheduler(system)
    # Naive growth: geometry changed (13-14 columns, possibly taller).
    assert (
        scheduler.estimator.embedding.input_shape
        != system.embedding.input_shape
    )

    mix = Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])
    rng = np.random.default_rng(5)
    from repro.baselines.ga import random_contiguous_mapping

    def drift():
        before, after = [], []
        for _ in range(20):
            mapping = random_contiguous_mapping(mix.models, 3, rng)
            before.append(system.estimator.reward(mix, mapping))
            after.append(scheduler.estimator.reward(mix, mapping))
        return np.asarray(before), np.asarray(after)

    before, after = benchmark.pedantic(drift, rounds=1, iterations=1)
    correlation = float(np.corrcoef(before, after)[0, 1])
    shift = float(np.mean(np.abs(after - before) / np.abs(before)))
    print(
        f"\n[ABL-NEWMODEL] naive growth: reward correlation {correlation:.3f}, "
        f"mean relative shift {shift:.1%} on dataset-only mixes"
    )
    # The drift is real (that is the point of the reserved recipe) but
    # not a total scramble.
    assert correlation > 0.2
    assert shift > 0.01
