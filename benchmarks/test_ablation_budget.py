"""ABL-BUDGET -- why 500 MCTS iterations (paper Section V-B).

The paper fixes the computational budget at 500 and notes it can be
tuned per use case.  This ablation sweeps the budget and reports the
quality/latency trade-off.

Two spaces must not be conflated:

* **Estimator space** -- the reward MCTS actually optimizes.  Because
  the search keeps the best complete trajectory and its RNG stream does
  not depend on the budget, incumbent reward is *provably* monotone in
  the budget (asserted exactly, per run).
* **Board space** -- the measured throughput of the returned mapping.
  It rises quickly and then flattens: past a few hundred queries the
  extra estimator reward is mostly estimator error (winner's curse), so
  500 sits on the flat part while decision cost keeps growing linearly.

One search per (mix, seed) at the largest budget supplies every smaller
budget through :meth:`MCTSResult.incumbent_at` -- each row of the table
is exactly what that budget would have returned.
"""

import math

import numpy as np

from repro.core import MCTSConfig, OmniBoostScheduler
from repro.evaluation import RuntimeCostModel, format_table
from repro.workloads import WorkloadGenerator

BUDGETS = (25, 100, 500, 1500)
SEEDS = (17, 18, 19)


def test_ablation_mcts_budget(benchmark, paper_system):
    generator = WorkloadGenerator(seed=606)
    mixes = [generator.sample_mix(4) for _ in range(3)]
    cost_model = RuntimeCostModel()

    def sweep():
        boards = {budget: [] for budget in BUDGETS}
        rewards = {budget: [] for budget in BUDGETS}
        for mix in mixes:
            for seed in SEEDS:
                scheduler = OmniBoostScheduler(
                    paper_system.estimator,
                    config=MCTSConfig(budget=max(BUDGETS), seed=seed),
                )
                scheduler.schedule(mix)
                result = scheduler.last_result
                for budget in BUDGETS:
                    mapping, reward = result.incumbent_at(budget)
                    assert mapping is not None, "no winning rollout in budget"
                    measured = paper_system.simulator.simulate(mix.models, mapping)
                    boards[budget].append(measured.average_throughput)
                    rewards[budget].append(reward)
        return boards, rewards

    boards, rewards = benchmark.pedantic(sweep, rounds=1, iterations=1)

    board_mean = {b: float(np.mean(boards[b])) for b in BUDGETS}
    reward_mean = {b: float(np.mean(rewards[b])) for b in BUDGETS}
    rows = [
        [
            budget,
            f"{board_mean[budget]:.2f}",
            f"{reward_mean[budget]:.2f}",
            f"{cost_model.decision_time({'estimator_queries': budget}):.0f}",
        ]
        for budget in BUDGETS
    ]
    print()
    print(
        format_table(
            ["budget", "board T (inf/s)", "estimator reward", "decision (s)"],
            rows,
        )
    )

    # Estimator-space reward is monotone in the budget for every single
    # run -- the incumbent property, exact by construction.
    num_runs = len(rewards[BUDGETS[0]])
    for run in range(num_runs):
        for small, large in zip(BUDGETS, BUDGETS[1:]):
            assert rewards[large][run] >= rewards[small][run]

    # The search is not starved at the paper's budget: estimator reward
    # at 500 clearly exceeds the 25-iteration incumbent.
    assert reward_mean[500] >= reward_mean[25] * 1.05

    # Board space: quality at 500 sits on the flat part -- within 10% of
    # the best budget in the sweep, and no budget collapses below the
    # starved search.
    best_board = max(board_mean.values())
    assert board_mean[500] >= best_board * 0.90
    assert math.isfinite(board_mean[1500])

    # Decision cost grows linearly with the budget while quality has
    # flattened -- the paper's trade-off argument for stopping at 500.
    cost_500 = cost_model.decision_time({"estimator_queries": 500})
    cost_1500 = cost_model.decision_time({"estimator_queries": 1500})
    assert cost_1500 >= 2.9 * cost_500
    assert board_mean[1500] <= board_mean[500] * 1.25
