"""PERF-FRONTDOOR -- full-forward accounting of the distilled fast path.

The deal PR 10's fast path offers: spend the paper's 500-query
decision budget as a *wide* exploration (``explore_factor`` more
candidates, scored by a tiny distilled student) and let only the best
of each evaluation batch pay a real estimator forward, plus a final
re-certification batch.  The gates, all **count-based** (RPR003; the
counts are deterministic for the pinned seeds + committed estimator
checkpoint):

* every fast-path decision pays at most ``budget / 5`` full-estimator
  forwards -- the issue's ">= 5x fewer forwards" bar (measured: ~88 of
  500 on every Fig.-5 mix);
* across the fifteen Fig.-5 mixes (sizes 3/4/5) the fast path's mean
  chosen score is **equal-or-better** than exact-500 MCTS, and no
  single mix falls below 0.9x its exact score.  The suite-aggregate
  form mirrors the Fig.-5 benches, which gate banded *averages*: MCTS
  is chaotic enough that +-5% per-mix swings survive even a perfect
  proxy (tiny reward deltas flip argmaxes early in the tree), while
  the aggregate is stable;
* a service restarted onto the same ``cache_dir`` replays every
  previously-decided mix with **zero** full-estimator forwards.

The student's distillation corpus is a one-time bill (~500 teacher
forwards, amortized across every decision of the process lifetime) and
is therefore warmed before the ledger starts.
"""

import os

from conftest import CACHE_DIR, DEPLOY_EPOCHS, DEPLOY_SAMPLES, SYSTEM_SEED
from fig5_common import paper_mixes

from repro import SystemBuilder
from repro.core import MCTSConfig, ScheduleRequest
from repro.estimator import FastPathPolicy
from repro.service import SchedulingService

BUDGET = 500
CHECKPOINT = os.path.join(
    CACHE_DIR,
    f"estimator_s{DEPLOY_SAMPLES}_e{DEPLOY_EPOCHS}_seed{SYSTEM_SEED}.npz",
)


def _service(**kwargs) -> SchedulingService:
    builder = (
        SystemBuilder(seed=SYSTEM_SEED)
        .with_mcts_config(MCTSConfig(budget=BUDGET, seed=SYSTEM_SEED))
        .with_estimator(train=False)
    )
    service = SchedulingService(builder, **kwargs)
    service._scheduler_instance().estimator.load(CHECKPOINT)
    return service


def _suite_mixes():
    return paper_mixes(3) + paper_mixes(4) + paper_mixes(5)


def test_fast_path_forward_counts_and_scores(benchmark, paper_system):
    """>= 5x fewer full forwards per decision, equal-or-better scores."""
    del paper_system  # requested to guarantee the checkpoint exists
    mixes = _suite_mixes()

    exact = _service(cache_decisions=False)
    fast = _service(cache_decisions=False, fast_path=FastPathPolicy())
    fast_estimator = fast._scheduler_instance().estimator
    fast._student_instance(fast_estimator)  # one-time distillation bill
    fast_estimator.reset_query_count()

    def run():
        rows = []
        for mix in mixes:
            exact_score = exact.submit(mix).expected_score
            before = fast_estimator.query_count
            fast_score = fast.submit(mix).expected_score
            forwards = fast_estimator.query_count - before
            rows.append((mix, exact_score, fast_score, forwards))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n[FRONTDOOR] budget {BUDGET}, gate <= {BUDGET // 5} forwards")
    for mix, exact_score, fast_score, forwards in rows:
        names = "+".join(mix.model_names)
        print(
            f"[FRONTDOOR] {names}: exact {exact_score:.4f} "
            f"fast {fast_score:.4f} ({forwards} full forwards)"
        )
    exact_mean = sum(row[1] for row in rows) / len(rows)
    fast_mean = sum(row[2] for row in rows) / len(rows)
    print(
        f"[FRONTDOOR] suite means: exact {exact_mean:.4f}, "
        f"fast {fast_mean:.4f}"
    )

    for mix, exact_score, fast_score, forwards in rows:
        # The >=5x count gate, per decision.
        assert forwards <= BUDGET // 5
        # Per-mix floor: MCTS chaos allows small losses on individual
        # mixes; none may be large.
        assert fast_score >= exact_score * 0.9
    # Equal-or-better on the suite aggregate (the Fig.-5 gate form).
    assert fast_mean >= exact_mean
    # The stats ledger agrees with the external counter.
    stats = fast.stats()
    assert stats.distilled_pruned > 0
    assert stats.estimator_queries_actual == sum(row[3] for row in rows)


def test_persistent_replay_pays_zero_forwards(
    benchmark, paper_system, tmp_path
):
    """Cross-restart cache reuse: a previously-decided trace replays
    with zero full-estimator forwards."""
    del paper_system
    cache_dir = str(tmp_path / "decisions")
    requests = [
        ScheduleRequest(workload=mix, request_id=str(index))
        for index, mix in enumerate(paper_mixes(3))
    ]

    first = _service(cache_dir=cache_dir, fast_path=FastPathPolicy())
    cold = first.schedule_many(requests)
    assert first.stats().cache_persisted > 0

    second = _service(cache_dir=cache_dir, fast_path=FastPathPolicy())
    second_estimator = second._scheduler_instance().estimator
    second_estimator.reset_query_count()
    warm = benchmark.pedantic(
        second.schedule_many, args=(requests,), rounds=1, iterations=1
    )

    stats = second.stats()
    print(
        f"\n[FRONTDOOR] replay: {stats.cache_hits} hits, "
        f"{second_estimator.query_count} full forwards"
    )
    assert stats.cache_hits == len(requests)
    assert second_estimator.query_count == 0  # the zero-forward gate
    for warm_response, cold_response in zip(warm, cold):
        assert warm_response.mapping == cold_response.mapping
        assert warm_response.expected_score == cold_response.expected_score
