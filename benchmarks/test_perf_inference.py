"""PERF-INFER -- wall-clock of the compiled estimator inference engine.

The estimator forward is the single hottest path in the system: every
scheduling decision pays ~500 queries (Section V-B), and PRs 1-3
funneled every scheduler, the service and the online re-planner
through ``predict_throughput_batch``.  This bench measures what the
ahead-of-time :class:`~repro.nn.inference.InferencePlan` (BN folding,
conv+GELU fusion, padding folded into the gather, preallocated
arenas) buys over the autograd interpreter (``use_compiled=False``,
bit-for-bit the historical path).

Three measurements:

* batch-64 ``predict_throughput_batch`` calls, compiled vs
  interpreted -- gated at >= 3x, with outputs matching within rtol
  1e-5 and rows bitwise invariant to batch composition;
* the paper's pinned 500-query MCTS decision (sequential
  ``eval_batch_size=1`` semantics) end to end -- gated at >= 1.5x
  with the *identical* selected mapping;
* the 4-DNN paper-scale mix, reported for context (Python tree
  bookkeeping, not evaluation, bounds the win there).

No estimator training is needed -- inference speed is independent of
the weights -- so this module builds its own lightweight deployment
and runs in CI (the ``perf-smoke`` job uploads the timing JSON).
``PERF_GATE_SCALE`` scales every speedup gate: 1.0 (default) is the
local/tier-1 acceptance strength; CI sets 0.5 because shared runners
make hard wall-clock ratios intermittently noisy -- the scaled gate
still catches a broken fast path while the equivalence asserts stay
exact.
"""

import os
import time

import numpy as np
import pytest

from repro.core import MCTSConfig, OmniBoostScheduler
from repro.estimator import EmbeddingSpace, ThroughputEstimator
from repro.hw import hikey970
from repro.models import MODEL_NAMES, build_all_models
from repro.sim import KernelProfiler
from repro.workloads import Workload
from repro.workloads.generator import random_contiguous_mapping

#: Gate headroom for noisy environments (see module docstring).
GATE_SCALE = float(os.environ.get("PERF_GATE_SCALE", "1.0"))


def _timed(fn):
    start = time.perf_counter()  # repro: lint-ignore[RPR002] -- this bench's subject IS wall time (PERF_GATE_SCALE guards CI)
    result = fn()
    return time.perf_counter() - start, result  # repro: lint-ignore[RPR002] -- this bench's subject IS wall time (PERF_GATE_SCALE guards CI)


@pytest.fixture(scope="module")
def estimator():
    """An untrained-but-fitted estimator (speed is weight-independent)."""
    platform = hikey970()
    table = KernelProfiler(platform).profile(build_all_models(), seed=0)
    embedding = EmbeddingSpace(table, MODEL_NAMES)
    est = ThroughputEstimator(embedding, rng=np.random.default_rng(3))
    targets = np.random.default_rng(0).uniform(0.5, 5.0, size=(50, 3))
    est.target_transform.fit(targets)
    return est


def test_perf_compiled_batch64(benchmark, estimator):
    """64-query batches through the compiled plan, >= 3x and equivalent."""
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    rng = np.random.default_rng(11)
    pairs = [
        (mix, random_contiguous_mapping(mix.models, 3, rng)) for _ in range(64)
    ]
    rounds = 5

    def query_loop():
        for _ in range(rounds):
            out = estimator.predict_throughput_batch(pairs)
        return out

    estimator.use_compiled = True
    query_loop()  # warm-up: compile the plan, allocate arenas, BLAS init
    estimator.use_compiled = False
    query_loop()  # warm-up: allocator, caches

    def run():
        # Paired reps: each rep times both paths back-to-back, so
        # machine-load noise hits the pair together and the per-rep
        # ratio cancels it; the median ratio is the robust gate.
        ratios, interpreted_times, compiled_times = [], [], []
        for _ in range(7):
            estimator.use_compiled = False
            interpreted_s, interpreted = _timed(query_loop)
            estimator.use_compiled = True
            compiled_s, compiled = _timed(query_loop)
            ratios.append(interpreted_s / compiled_s)
            interpreted_times.append(interpreted_s)
            compiled_times.append(compiled_s)
        return (
            float(np.median(ratios)),
            min(interpreted_times),
            min(compiled_times),
            interpreted,
            compiled,
        )

    speedup, interpreted_s, compiled_s, interpreted, compiled = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print(
        f"\n[PERF-INFER] predict_throughput_batch, {rounds} x 64 queries: "
        f"interpreted {interpreted_s / rounds * 1000:.1f}ms/batch, compiled "
        f"{compiled_s / rounds * 1000:.1f}ms/batch (median paired "
        f"speedup {speedup:.2f}x)"
    )
    # Same predictions within rtol 1e-5, and row i of a compiled batch
    # is bitwise identical no matter how the batch is composed.
    np.testing.assert_allclose(compiled, interpreted, rtol=1e-5, atol=1e-6)
    lone = estimator.predict_throughput_batch([pairs[17]])
    np.testing.assert_array_equal(compiled[17], lone[0])
    assert speedup >= 3.0 * GATE_SCALE


def test_perf_compiled_mcts_500_queries(benchmark, estimator):
    """The paper's 500-budget sequential MCTS decision, end to end."""
    mix = Workload.from_names(["alexnet", "mobilenet", "squeezenet"])
    config = MCTSConfig(budget=500, seed=17, eval_batch_size=1)

    def decide():
        return OmniBoostScheduler(estimator, config=config).schedule(mix)

    estimator.use_compiled = True
    decide()  # warm-up

    def run():
        # Median of paired reps, like the batch-64 gate: each rep
        # times both paths back-to-back so load noise cancels.
        ratios = []
        for _ in range(3):
            estimator.use_compiled = False
            interpreted_s, slow = _timed(decide)
            estimator.use_compiled = True
            compiled_s, fast = _timed(decide)
            ratios.append(interpreted_s / compiled_s)
        return float(np.median(ratios)), interpreted_s, compiled_s, slow, fast

    speedup, interpreted_s, compiled_s, slow, fast = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n[PERF-INFER] MCTS budget=500 on {mix.name}: interpreted "
        f"{interpreted_s:.2f}s, compiled {compiled_s:.2f}s "
        f"(median paired speedup {speedup:.2f}x)"
    )
    # Tolerances are tight enough that the pinned-seed search walks the
    # same trajectory and selects the identical mapping.
    assert fast.mapping == slow.mapping
    assert fast.cost["estimator_queries"] == slow.cost["estimator_queries"]
    assert speedup >= 1.5 * GATE_SCALE


def test_perf_compiled_mcts_paper_mix(benchmark, estimator):
    """Context: the 4-DNN paper mix, where rollout bookkeeping
    (selection/expansion/playout Python) bounds the achievable win."""
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    config = MCTSConfig(budget=500, seed=5, eval_batch_size=1)

    def decide():
        return OmniBoostScheduler(estimator, config=config).schedule(mix)

    estimator.use_compiled = True
    decide()  # warm-up

    def run():
        ratios = []
        for _ in range(3):
            estimator.use_compiled = False
            interpreted_s, slow = _timed(decide)
            estimator.use_compiled = True
            compiled_s, fast = _timed(decide)
            ratios.append(interpreted_s / compiled_s)
        return float(np.median(ratios)), interpreted_s, compiled_s, slow, fast

    speedup, interpreted_s, compiled_s, slow, fast = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n[PERF-INFER] MCTS budget=500 on 4-DNN mix: interpreted "
        f"{interpreted_s:.2f}s, compiled {compiled_s:.2f}s "
        f"(median paired speedup {speedup:.2f}x)"
    )
    assert fast.mapping == slow.mapping
    assert speedup >= 1.2 * GATE_SCALE
