"""Shared fixtures for the benchmark harness.

``paper_system`` assembles the full deployment the evaluation section
uses.  Estimator training is the expensive step (minutes), so the
trained weights are cached on disk under ``benchmarks/.cache/`` keyed
by the training configuration; delete the directory to force a fresh
design-time run.

Scale note (documented in EXPERIMENTS.md): the deployed estimator is
trained on 2,500 measured workloads instead of the paper's 500.  On
the physical board each measurement costs wall-clock minutes, which is
what capped the authors at 500; our simulated board profiles three
orders of magnitude faster, and the larger campaign measurably improves
the estimator's ranking fidelity.  The Fig.-4 benchmark itself uses the
paper's exact 500-sample / 400-100 split / 100-epoch regimen.
"""

from __future__ import annotations

import os

import pytest

from repro import SystemBuilder
from repro.core import MCTSConfig

CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")

#: Deployed-system training scale (see module docstring).
DEPLOY_SAMPLES = 2500
DEPLOY_EPOCHS = 80
SYSTEM_SEED = 0


@pytest.fixture(scope="session")
def paper_system():
    """The full OmniBoost deployment used by the Fig.-5 benches."""
    cache_key = f"estimator_s{DEPLOY_SAMPLES}_e{DEPLOY_EPOCHS}_seed{SYSTEM_SEED}.npz"
    cache_path = os.path.join(CACHE_DIR, cache_key)
    builder = SystemBuilder(seed=SYSTEM_SEED).with_mcts_config(
        MCTSConfig(seed=SYSTEM_SEED + 5)
    )
    if os.path.exists(cache_path):
        builder.with_estimator(train=False)
        system = builder.build()
        system.estimator.load(cache_path)
    else:
        builder.with_estimator(
            num_training_samples=DEPLOY_SAMPLES,
            epochs=DEPLOY_EPOCHS,
            measurement_repetitions=5,
        )
        system = builder.build()
        os.makedirs(CACHE_DIR, exist_ok=True)
        system.estimator.save(cache_path)
    return system


#: Reserved-capacity deployment (new-model robustness bench).  Smaller
#: training campaign than the main deployment: the larger input
#: geometry makes each epoch ~2.3x more expensive.
RESERVED_SAMPLES = 1500
RESERVED_EPOCHS = 60
RESERVED_LAYERS = 64
RESERVED_MODELS = 14


@pytest.fixture(scope="session")
def reserved_system():
    """A deployment whose embedding tensor reserves capacity for new DNNs.

    Used by the new-model robustness bench: late-arriving networks fill
    reserved zero columns, so the input geometry (and therefore every
    existing prediction) is unchanged -- the production recipe for the
    paper's "robust to new DNN models" claim.
    """
    cache_key = (
        f"reserved_s{RESERVED_SAMPLES}_e{RESERVED_EPOCHS}"
        f"_l{RESERVED_LAYERS}m{RESERVED_MODELS}_seed{SYSTEM_SEED}.npz"
    )
    cache_path = os.path.join(CACHE_DIR, cache_key)
    builder = SystemBuilder(seed=SYSTEM_SEED).with_mcts_config(
        MCTSConfig(seed=SYSTEM_SEED + 5)
    )
    if os.path.exists(cache_path):
        builder.with_estimator(
            train=False,
            reserve_layers=RESERVED_LAYERS,
            reserve_models=RESERVED_MODELS,
        )
        system = builder.build()
        system.estimator.load(cache_path)
    else:
        builder.with_estimator(
            num_training_samples=RESERVED_SAMPLES,
            epochs=RESERVED_EPOCHS,
            measurement_repetitions=5,
            reserve_layers=RESERVED_LAYERS,
            reserve_models=RESERVED_MODELS,
        )
        system = builder.build()
        os.makedirs(CACHE_DIR, exist_ok=True)
        system.estimator.save(cache_path)
    return system
