"""ABL-ENERGY -- the pluggable-objective extension (DESIGN.md §5).

The paper optimizes throughput only but positions OmniBoost as
extensible; the natural extension on a battery-powered board is an
energy-aware objective.  This ablation swaps the MCTS reward for
predicted inferences-per-joule (same estimator, same budget, zero extra
queries) and checks the mechanical effect: the returned mappings draw
less board power, trading some throughput for efficiency.
"""

import numpy as np

from repro.core import EnergyAwareObjective, MCTSConfig, OmniBoostScheduler
from repro.evaluation import format_table
from repro.hw import hikey970_power
from repro.workloads import WorkloadGenerator

SEEDS = (31, 32)


def test_ablation_energy_objective(benchmark, paper_system):
    power_model = hikey970_power()
    generator = WorkloadGenerator(seed=909)
    mixes = [generator.sample_mix(4) for _ in range(3)]
    energy_objective = EnergyAwareObjective(
        power_model, paper_system.platform, paper_system.latency_table
    )

    def compare():
        outcomes = {"throughput": [], "energy-aware": []}
        for mix in mixes:
            for seed in SEEDS:
                for label, objective in (
                    ("throughput", None),
                    ("energy-aware", energy_objective),
                ):
                    scheduler = OmniBoostScheduler(
                        paper_system.estimator,
                        config=MCTSConfig(seed=seed),
                        objective=objective,
                    )
                    decision = scheduler.schedule(mix)
                    measured = paper_system.simulator.simulate(
                        mix.models, decision.mapping
                    )
                    report = power_model.report(paper_system.platform, measured)
                    outcomes[label].append(
                        (
                            measured.average_throughput,
                            report.total_w,
                            report.inferences_per_joule,
                        )
                    )
        return outcomes

    outcomes = benchmark.pedantic(compare, rounds=1, iterations=1)

    summary = {}
    for label, rows in outcomes.items():
        throughput, power, efficiency = (np.mean([r[i] for r in rows]) for i in range(3))
        summary[label] = (throughput, power, efficiency)
    print()
    print(
        format_table(
            ["objective", "T (inf/s)", "board power (W)", "inf/J"],
            [
                [label, f"{t:.2f}", f"{p:.2f}", f"{e:.3f}"]
                for label, (t, p, e) in summary.items()
            ],
        )
    )

    throughput_mode = summary["throughput"]
    energy_mode = summary["energy-aware"]
    # Measured space: the energy objective holds its own on efficiency
    # and does not collapse on throughput.  (In the inferences-per-joule
    # regime the two objectives nearly coincide -- the idle floor
    # dominates predicted power -- so differences sit inside estimator
    # noise; the sharp mechanism check is below.)
    assert energy_mode[2] >= throughput_mode[2] * 0.90
    assert energy_mode[0] >= throughput_mode[0] * 0.45

    # Mechanism check, exact and deterministic: over one fixed candidate
    # set, the mapping the energy objective prefers never has a higher
    # predicted power than the one the throughput objective prefers.
    from repro.core import ThroughputObjective
    from repro.workloads.generator import random_contiguous_mapping

    throughput_objective = ThroughputObjective()
    rng = np.random.default_rng(42)
    for mix in mixes:
        candidates = [
            random_contiguous_mapping(mix.models, 3, rng, max_stages=3)
            for _ in range(40)
        ]
        predictions = [
            paper_system.estimator.predict_throughput(mix, mapping)
            for mapping in candidates
        ]
        energy_pick = max(
            range(len(candidates)),
            key=lambda i: energy_objective.score(
                mix, candidates[i], predictions[i]
            ),
        )
        throughput_pick = max(
            range(len(candidates)),
            key=lambda i: throughput_objective.score(
                mix, candidates[i], predictions[i]
            ),
        )
        energy_power = energy_objective.predicted_power_w(
            mix, candidates[energy_pick], predictions[energy_pick]
        )
        throughput_power = energy_objective.predicted_power_w(
            mix, candidates[throughput_pick], predictions[throughput_pick]
        )
        assert energy_power <= throughput_power + 1e-9


def test_ablation_energy_tradeoff_direction(benchmark, paper_system):
    """Weighted mode: raising the power exchange rate monotonically
    trades measured board power down (allowing small estimator noise)."""
    power_model = hikey970_power()
    mix = WorkloadGenerator(seed=910).sample_mix(4)

    def sweep():
        powers = []
        for tradeoff in (0.0, 0.2, 1.0):
            objective = EnergyAwareObjective(
                power_model,
                paper_system.platform,
                paper_system.latency_table,
                mode="weighted",
                tradeoff_w=tradeoff,
            )
            scheduler = OmniBoostScheduler(
                paper_system.estimator,
                config=MCTSConfig(seed=5),
                objective=objective,
            )
            decision = scheduler.schedule(mix)
            measured = paper_system.simulator.simulate(mix.models, decision.mapping)
            report = power_model.report(paper_system.platform, measured)
            powers.append(report.total_w)
        return powers

    powers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n[ABL-ENERGY] board power at tradeoff 0/0.2/1.0: "
          f"{', '.join(f'{p:.2f} W' for p in powers)}")
    # The strongest power weighting must not draw more than the pure
    # throughput objective.
    assert powers[-1] <= powers[0] * 1.02
