"""ABL-GA-MERGE -- the GA's stage-merging optimization layer.

The paper: "the operators utilized in the Genetic Algorithm actually
damage the candidate solutions ... That's why we have integrated an
optimization layer that heuristically merges redundant pipeline
stages."  This ablation removes that layer and measures the damage.
"""

import numpy as np

from repro.baselines import GAConfig, GeneticScheduler
from repro.evaluation import format_table
from repro.workloads import WorkloadGenerator


def test_ablation_ga_merge_layer(benchmark, paper_system):
    generator = WorkloadGenerator(seed=909)
    mixes = [generator.sample_mix(4) for _ in range(3)]
    simulator = paper_system.simulator
    cost_model = paper_system.ga.cost_model

    def run():
        results = {}
        for label, merge in (("with merge layer", True), ("without", False)):
            throughputs = []
            stage_counts = []
            for mix in mixes:
                scheduler = GeneticScheduler(
                    cost_model,
                    config=GAConfig(seed=31),
                    merge_stages=merge,
                )
                decision = scheduler.schedule(mix)
                measured = simulator.simulate(mix.models, decision.mapping)
                throughputs.append(measured.average_throughput)
                stage_counts.append(decision.mapping.max_stages)
            results[label] = (float(np.mean(throughputs)), max(stage_counts))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, f"{throughput:.2f}", stages]
        for label, (throughput, stages) in results.items()
    ]
    print()
    print(format_table(["variant", "mean T (inf/s)", "max stages"], rows))

    merged_throughput, merged_stages = results["with merge layer"]
    raw_throughput, raw_stages = results["without"]
    # The merge layer enforces the stage structure...
    assert merged_stages <= 3
    # ...while raw mutation/crossover shatter mappings into many stages.
    assert raw_stages > 3
    # And the repaired GA should not be worse than the unrepaired one.
    assert merged_throughput >= raw_throughput * 0.9
