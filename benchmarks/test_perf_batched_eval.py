"""PERF-BATCH -- estimator-call accounting of the batched evaluation path.

The paper budgets 500 estimator queries per scheduling decision
(Section V-B); this bench measures what the batched evaluation path
and the MCTS transposition cache buy on exactly that workload shape,
against the unbatched/uncached sequential path the seed implemented
(``eval_batch_size=1``, ``use_eval_cache=False``; batch size 1 is
still the default, the cache now defaults on because it is
result-identical for the deterministic estimator).

Three measurements:

* a 500-query random search, sequential vs. batched estimator calls
  (pure vectorization win, no cache effects);
* a 500-budget MCTS on a small mix whose rollouts revisit leaves
  often, unbatched/uncached vs. batched+cached (vectorization + the
  transposition cache);
* a 500-budget MCTS on a paper-scale 4-DNN mix (same accounting; the
  *wall* win is smaller there because rollout bookkeeping dominates,
  but the forward-call ledger is identical in shape).

The acceptance gates are **forward-call counts** -- the number of
``predict_throughput_batch`` invocations each arm pays -- not wall
time.  The counts are deterministic for the seeded searches, so the
gates are robust on a single-core CI box; wall time is still measured
and printed, for context only.

Both sides run on the autograd *interpreter* (``use_compiled=False``):
this module's subject is what call-site batching buys over the seed's
sequential loop, so the inference backend is held at the historical
one.  The compiled inference engine (``repro.nn.inference``) has since
shrunk per-query cost ~6x on both sides — which narrows the wall-time
ratio — and carries its own gates in ``benchmarks/test_perf_inference.py``.
"""

import time

import pytest

from repro import Workload
from repro.core import MCTSConfig, OmniBoostScheduler, RandomSearchScheduler


def _timed(fn):
    """Informational wall timing; the gates below are count-based."""
    start = time.perf_counter()  # repro: lint-ignore[RPR002] -- informational host timing, not gated
    result = fn()
    elapsed = time.perf_counter() - start  # repro: lint-ignore[RPR002] -- informational host timing, not gated
    return elapsed, result


@pytest.fixture()
def interpreted_estimator(paper_system):
    """The deployment's estimator pinned to the interpreter backend."""
    estimator = paper_system.estimator
    prior = estimator.use_compiled
    estimator.use_compiled = False
    yield estimator
    estimator.use_compiled = prior


@pytest.fixture()
def forward_counter(interpreted_estimator):
    """Count estimator forward calls by wrapping the batch entry point.

    Every evaluation -- scalar or chunked -- funnels through
    ``predict_throughput_batch``, so the call count is exactly the
    number of forward passes the search pays (the same idiom as
    ``benchmarks/test_perf_fleet.py``).
    """
    estimator = interpreted_estimator
    counter = {"calls": 0}
    original = estimator.predict_throughput_batch

    def wrapped(pairs, _original=original):
        counter["calls"] += 1
        return _original(pairs)

    estimator.predict_throughput_batch = wrapped
    yield counter
    estimator.predict_throughput_batch = original


def _drain(counter):
    """Read-and-reset, so each arm's calls are accounted separately."""
    calls = counter["calls"]
    counter["calls"] = 0
    return calls


def test_perf_batched_random_search(
    benchmark, interpreted_estimator, forward_counter
):
    """500 estimator queries, scalar loop vs. vectorized chunks."""
    estimator = interpreted_estimator
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    sequential = RandomSearchScheduler(
        estimator, num_samples=500, seed=7, eval_batch_size=1
    )
    batched = RandomSearchScheduler(
        estimator, num_samples=500, seed=7, eval_batch_size=64
    )
    sequential.schedule(mix)  # warm-up: BLAS init, allocator, caches
    _drain(forward_counter)

    def run():
        sequential_s, slow = _timed(lambda: sequential.schedule(mix))
        sequential_calls = _drain(forward_counter)
        batched_s, fast = _timed(lambda: batched.schedule(mix))
        batched_calls = _drain(forward_counter)
        return sequential_calls, batched_calls, sequential_s, batched_s, slow, fast

    sequential_calls, batched_calls, sequential_s, batched_s, slow, fast = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print(
        f"\n[PERF-BATCH] random search, 500 queries: "
        f"sequential {sequential_calls} forwards ({sequential_s:.2f}s), "
        f"batched {batched_calls} forwards ({batched_s:.2f}s)"
    )
    # Identical search, identical accounting -- only the batching moves.
    assert fast.mapping == slow.mapping
    assert fast.cost["estimator_queries"] == 500
    # One forward per query vs. ceil(500 / 64) chunked forwards.
    assert sequential_calls == 500
    assert batched_calls <= 8


def test_perf_batched_cached_mcts(
    benchmark, interpreted_estimator, forward_counter
):
    """The paper's 500-iteration MCTS through the batched+cached path."""
    estimator = interpreted_estimator
    mix = Workload.from_names(["alexnet"])
    unbatched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=1, use_eval_cache=False
        ),
    )
    batched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=32, use_eval_cache=True
        ),
    )
    unbatched.schedule(mix)  # warm-up
    _drain(forward_counter)

    def run():
        unbatched_s, _ = _timed(lambda: unbatched.schedule(mix))
        unbatched_calls = _drain(forward_counter)
        batched_s, _ = _timed(lambda: batched.schedule(mix))
        batched_calls = _drain(forward_counter)
        return unbatched_calls, batched_calls, unbatched_s, batched_s

    unbatched_calls, batched_calls, unbatched_s, batched_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    result = batched.last_result
    print(
        f"\n[PERF-BATCH] MCTS budget=500 on {mix.name}: "
        f"unbatched {unbatched_calls} forwards ({unbatched_s:.2f}s), "
        f"batched+cached {batched_calls} forwards ({batched_s:.2f}s); "
        f"cache {result.cache_hits} hits / {result.cache_misses} misses "
        f"in {result.eval_batches} batches"
    )
    # The cache accounting must reconcile with the budget.
    assert result.evaluations == result.cache_hits + result.cache_misses
    assert result.evaluations + result.losing_rollouts == 500
    assert result.cache_hits > 0
    # Vectorization + the transposition cache shed >= 2x of the forwards.
    assert unbatched_calls >= 2 * batched_calls


def test_perf_batched_mcts_paper_mix(
    benchmark, interpreted_estimator, forward_counter
):
    """A 4-DNN paper-scale mix: same forward-call ledger at full scale
    (the wall-time win is smaller here -- rollout bookkeeping dominates
    -- which is exactly why the gate counts forwards instead)."""
    estimator = interpreted_estimator
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    unbatched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=1, use_eval_cache=False
        ),
    )
    batched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=32, use_eval_cache=True
        ),
    )
    unbatched.schedule(mix)  # warm-up
    _drain(forward_counter)

    def run():
        unbatched_s, _ = _timed(lambda: unbatched.schedule(mix))
        unbatched_calls = _drain(forward_counter)
        batched_s, _ = _timed(lambda: batched.schedule(mix))
        batched_calls = _drain(forward_counter)
        return unbatched_calls, batched_calls, unbatched_s, batched_s

    unbatched_calls, batched_calls, unbatched_s, batched_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print(
        f"\n[PERF-BATCH] MCTS budget=500 on 4-DNN mix: "
        f"unbatched {unbatched_calls} forwards ({unbatched_s:.2f}s), "
        f"batched {batched_calls} forwards ({batched_s:.2f}s)"
    )
    assert unbatched_calls >= 2 * batched_calls
