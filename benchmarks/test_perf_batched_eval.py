"""PERF-BATCH -- wall-clock of the batched evaluation subsystem.

The paper budgets 500 estimator queries per scheduling decision
(Section V-B); this bench measures what the batched evaluation path
and the MCTS transposition cache buy on exactly that workload shape,
against the unbatched/uncached sequential path the seed implemented
(``eval_batch_size=1``, ``use_eval_cache=False``; batch size 1 is
still the default, the cache now defaults on because it is
result-identical for the deterministic estimator).

Three measurements:

* a 500-query random search, sequential vs. batched estimator calls
  (pure vectorization win, no cache effects);
* a 500-budget MCTS on a small mix whose rollouts revisit leaves
  often, unbatched/uncached vs. batched+cached (vectorization + the
  transposition cache);
* a 500-budget MCTS on a paper-scale 4-DNN mix, reported for context
  (rollout bookkeeping, not evaluation, dominates there, so the
  speedup is real but smaller).

The >= 2x acceptance gate applies to the first two.

Both sides run on the autograd *interpreter* (``use_compiled=False``):
this module's subject is what call-site batching buys over the seed's
sequential loop, so the inference backend is held at the historical
one.  The compiled inference engine (``repro.nn.inference``) has since
shrunk per-query cost ~6x on both sides — which narrows *this* ratio —
and carries its own gates in ``benchmarks/test_perf_inference.py``.
"""

import time

import pytest

from repro import Workload
from repro.core import MCTSConfig, OmniBoostScheduler, RandomSearchScheduler


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@pytest.fixture()
def interpreted_estimator(paper_system):
    """The deployment's estimator pinned to the interpreter backend."""
    estimator = paper_system.estimator
    prior = estimator.use_compiled
    estimator.use_compiled = False
    yield estimator
    estimator.use_compiled = prior


def test_perf_batched_random_search(benchmark, interpreted_estimator):
    """500 estimator queries, scalar loop vs. vectorized chunks."""
    estimator = interpreted_estimator
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    sequential = RandomSearchScheduler(
        estimator, num_samples=500, seed=7, eval_batch_size=1
    )
    batched = RandomSearchScheduler(
        estimator, num_samples=500, seed=7, eval_batch_size=64
    )
    sequential.schedule(mix)  # warm-up: BLAS init, allocator, caches

    def run():
        sequential_s, slow = _timed(lambda: sequential.schedule(mix))
        batched_s, fast = _timed(lambda: batched.schedule(mix))
        return sequential_s, batched_s, slow, fast

    sequential_s, batched_s, slow, fast = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = sequential_s / batched_s
    print(
        f"\n[PERF-BATCH] random search, 500 queries: "
        f"sequential {sequential_s:.2f}s, batched {batched_s:.2f}s "
        f"({speedup:.2f}x)"
    )
    # Identical search, identical accounting -- only the clock moves.
    assert fast.mapping == slow.mapping
    assert fast.cost["estimator_queries"] == 500
    assert speedup >= 2.0


def test_perf_batched_cached_mcts(benchmark, interpreted_estimator):
    """The paper's 500-iteration MCTS through the batched+cached path."""
    estimator = interpreted_estimator
    mix = Workload.from_names(["alexnet"])
    unbatched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=1, use_eval_cache=False
        ),
    )
    batched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=32, use_eval_cache=True
        ),
    )
    unbatched.schedule(mix)  # warm-up

    def run():
        unbatched_s, _ = _timed(lambda: unbatched.schedule(mix))
        batched_s, _ = _timed(lambda: batched.schedule(mix))
        return unbatched_s, batched_s

    unbatched_s, batched_s = benchmark.pedantic(run, rounds=1, iterations=1)
    result = batched.last_result
    speedup = unbatched_s / batched_s
    print(
        f"\n[PERF-BATCH] MCTS budget=500 on {mix.name}: "
        f"unbatched {unbatched_s:.2f}s, batched+cached {batched_s:.2f}s "
        f"({speedup:.2f}x); cache {result.cache_hits} hits / "
        f"{result.cache_misses} misses in {result.eval_batches} batches"
    )
    # The cache accounting must reconcile with the budget.
    assert result.evaluations == result.cache_hits + result.cache_misses
    assert result.evaluations + result.losing_rollouts == 500
    assert result.cache_hits > 0
    assert speedup >= 2.0


def test_perf_batched_mcts_paper_mix(benchmark, interpreted_estimator):
    """Context: a 4-DNN paper-scale mix, where rollout bookkeeping
    (selection/expansion/playout Python) bounds the achievable win."""
    estimator = interpreted_estimator
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    unbatched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=1, use_eval_cache=False
        ),
    )
    batched = OmniBoostScheduler(
        estimator,
        config=MCTSConfig(
            budget=500, seed=5, eval_batch_size=32, use_eval_cache=True
        ),
    )
    unbatched.schedule(mix)  # warm-up

    def run():
        unbatched_s, _ = _timed(lambda: unbatched.schedule(mix))
        batched_s, _ = _timed(lambda: batched.schedule(mix))
        return unbatched_s, batched_s

    unbatched_s, batched_s = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = unbatched_s / batched_s
    print(
        f"\n[PERF-BATCH] MCTS budget=500 on 4-DNN mix: "
        f"unbatched {unbatched_s:.2f}s, batched {batched_s:.2f}s "
        f"({speedup:.2f}x)"
    )
    assert speedup >= 1.2
