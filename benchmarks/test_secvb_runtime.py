"""SECVB -- run-time performance evaluation (paper Section V-B).

Reproduces the decision-latency comparison: the baseline decides for
free; MOSAIC answers one fast regression query but paid a >14k-point
collection campaign; the GA re-evolves per workload (~5 minutes of
board time); OmniBoost issues its constant 500 estimator queries
(~30 s on-device) and never retrains.
"""

import pytest

from repro.evaluation import RuntimeCostModel, format_runtime_report
from repro.workloads import WorkloadGenerator


@pytest.fixture(scope="module")
def evaluations(paper_system):
    from repro.evaluation import EvaluationHarness

    generator = WorkloadGenerator(seed=404)
    mixes = [generator.sample_mix(4) for _ in range(3)]
    harness = EvaluationHarness(
        paper_system.simulator, paper_system.schedulers, baseline_name="Baseline"
    )
    return [harness.evaluate_mix(mix) for mix in mixes]


def test_secvb_runtime_comparison(benchmark, evaluations):
    cost_model = RuntimeCostModel()
    report = benchmark.pedantic(
        cost_model.report, args=(evaluations,), rounds=1, iterations=1
    )
    print()
    print(format_runtime_report(report))

    baseline = report.mean_decision_time("Baseline")
    mosaic = report.mean_decision_time("MOSAIC")
    ga = report.mean_decision_time("GA")
    omni = report.mean_decision_time("OmniBoost")
    print(f"\n[SECVB] modeled board decision time: baseline={baseline:.0f}s, "
          f"MOSAIC={mosaic:.1f}s, GA={ga:.0f}s, OmniBoost={omni:.0f}s")
    print("[SECVB] paper: baseline ~0, MOSAIC ~1s, GA ~300s, OmniBoost ~30s")

    # Shape: the paper's ordering and rough magnitudes.
    assert baseline == 0.0
    assert mosaic == pytest.approx(1.0, rel=0.5)
    assert omni == pytest.approx(30.0, rel=0.5)
    assert ga == pytest.approx(300.0, rel=0.5)
    assert ga > omni > mosaic > baseline


def test_secvb_omniboost_query_count_is_constant(benchmark, evaluations):
    """OmniBoost's decision cost is a constant 500 queries per mix,
    independent of the workload (the paper's budget knob)."""

    def check():
        for evaluation in evaluations:
            outcome = evaluation.outcome("OmniBoost")
            assert outcome.decision.cost["estimator_queries"] == 500

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_secvb_mosaic_one_time_cost_dominates(benchmark, evaluations):
    """MOSAIC: cheap queries, expensive data collection (>14k points)."""
    cost_model = RuntimeCostModel()

    def check():
        for evaluation in evaluations:
            outcome = evaluation.outcome("MOSAIC")
            one_time = cost_model.one_time_cost(outcome.decision.cost)
            per_query = cost_model.decision_time(outcome.decision.cost)
            assert outcome.decision.cost["training_points"] > 12000
            assert one_time > 20 * per_query

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_secvb_ga_retrains_per_workload(benchmark, paper_system):
    """The GA pays its full evolution budget again for every new mix."""
    generator = WorkloadGenerator(seed=405)
    first = benchmark.pedantic(
        paper_system.ga.schedule, args=(generator.sample_mix(3),),
        rounds=1, iterations=1,
    )
    second = paper_system.ga.schedule(generator.sample_mix(4))
    assert first.cost["fitness_evaluations"] == second.cost["fitness_evaluations"]
    assert first.cost["fitness_evaluations"] == 24 * 25
