"""FIG1 -- the motivational experiment (paper Section II, Fig. 1).

Four concurrent DNNs (AlexNet, MobileNet, VGG-19, SqueezeNet); 200
random two-stage big-CPU/GPU splits; throughput normalized to the
all-on-GPU baseline.  Paper shape: set-ups spread widely on both sides
of the baseline, the best reaching ~+60%.

Known deviation (see EXPERIMENTS.md): on our board model the GPU-only
baseline suffers more from 4-way time slicing than the authors'
board did, so the *median* random split lands slightly above 1.0 where
the paper's landed below; the distribution extremes match.

Also reports the Section-II design-space arithmetic (C(84, 3) ~ 95k).
"""

import numpy as np
import pytest

from repro import Workload, hikey970
from repro.evaluation import (
    paper_combination_estimate,
    total_contiguous_mappings,
)
from repro.hw import BIG_CPU_ID, GPU_ID
from repro.sim import BoardSimulator, Mapping
from repro.workloads.generator import random_two_stage_mapping

NUM_SETUPS = 200
SEED = 0

#: The motivational experiment runs each DNN continuously (a benchmark
#: loop, not a frame-rate-bounded application), so demand is unbounded.
UNBOUNDED = [1e9] * 4


@pytest.fixture(scope="module")
def motivation_mix():
    return Workload.from_names(["alexnet", "mobilenet", "vgg19", "squeezenet"])


def run_sweep(simulator, mix, num_setups: int, seed: int) -> np.ndarray:
    baseline = simulator.simulate(
        mix.models,
        Mapping.single_device(mix.models, GPU_ID),
        offered_rates=UNBOUNDED,
    ).average_throughput
    rng = np.random.default_rng(seed)
    normalized = np.empty(num_setups)
    for index in range(num_setups):
        mapping = random_two_stage_mapping(
            mix.models, rng, devices=(GPU_ID, BIG_CPU_ID)
        )
        measured = simulator.measure(
            mix.models, mapping, rng=rng, offered_rates=UNBOUNDED
        )
        normalized[index] = measured.average_throughput / baseline
    return normalized


def test_fig1_motivation(benchmark, motivation_mix):
    simulator = BoardSimulator(hikey970())
    normalized = benchmark.pedantic(
        run_sweep,
        args=(simulator, motivation_mix, NUM_SETUPS, SEED),
        rounds=1,
        iterations=1,
    )

    best = float(normalized.max())
    worst = float(normalized.min())
    median = float(np.median(normalized))
    below = float((normalized < 1.0).mean())

    print("\n[FIG1] normalized throughput of 200 random split set-ups")
    print(f"[FIG1] best={best:.2f}  median={median:.2f}  "
          f"share<baseline={below * 100:.0f}%  worst={worst:.2f}")
    print("[FIG1] paper shape: best ~1.6, set-ups spread on both sides "
          "of the baseline")

    # Shape assertions: the best set-up gains large double digits (the
    # paper reports +60%; our board model favours splits a little more,
    # EXPERIMENTS.md deviation 3), bad set-ups lose badly, and the
    # distribution straddles the baseline.
    assert 1.3 < best < 2.6, "best random split should gain tens of percent"
    assert worst < 0.85, "bad splits should clearly lose to the baseline"
    assert 0.02 < below < 0.75, "set-ups must fall on both sides of 1.0"


def test_fig1_design_space_size(benchmark, motivation_mix):
    total_layers = motivation_mix.total_layers
    estimate = benchmark.pedantic(
        paper_combination_estimate, args=(total_layers, 3), rounds=1, iterations=1
    )
    exact = total_contiguous_mappings(motivation_mix.models, 3, 3)
    print(f"\n[FIG1] total layers = {total_layers} (paper counts 84)")
    print(f"[FIG1] C({total_layers}, 3) = {estimate:,} (paper ~95,000)")
    print(f"[FIG1] exact stage-capped contiguous mappings = {exact:,}")
    # Our unit-counting convention lands within a few layers of the
    # paper's 84; the combination estimate stays in the same decade.
    assert 70 <= total_layers <= 95
    assert 30_000 < estimate < 200_000
    assert exact > 1e6
