"""ABL-SEARCH -- MCTS vs. budget-matched alternatives.

The paper's claim is not just "use an estimator" but "explore with
MCTS".  This ablation gives the same trained estimator and the same
query budget (500) to four search strategies -- MCTS, best-of-N random
sampling, greedy coordinate descent and simulated annealing -- and
compares the measured throughput of their chosen mappings.  A second
test checks MCTS against the exhaustive optimum on a mix small enough
to enumerate (the scale Section II says exhaustion stops being viable
beyond).
"""

import numpy as np

from repro import Workload
from repro.core import (
    ExhaustiveSearchScheduler,
    GreedyImprovementScheduler,
    MCTSConfig,
    OmniBoostScheduler,
    RandomSearchScheduler,
    SimulatedAnnealingScheduler,
)
from repro.evaluation import format_table
from repro.workloads import WorkloadGenerator


def test_ablation_search_strategy(benchmark, paper_system):
    generator = WorkloadGenerator(seed=1001)
    mixes = [generator.sample_mix(4) for _ in range(4)]
    simulator = paper_system.simulator

    schedulers = {
        "MCTS (OmniBoost)": OmniBoostScheduler(
            paper_system.estimator, config=MCTSConfig(budget=500, seed=37)
        ),
        "RandomSearch": RandomSearchScheduler(
            paper_system.estimator, num_samples=500, seed=37
        ),
        "Greedy": GreedyImprovementScheduler(paper_system.estimator),
        "Annealing": SimulatedAnnealingScheduler(
            paper_system.estimator, budget=500, seed=37
        ),
    }

    def run():
        results = {}
        for label, scheduler in schedulers.items():
            throughputs = []
            queries = []
            for mix in mixes:
                decision = scheduler.schedule(mix)
                measured = simulator.simulate(mix.models, decision.mapping)
                throughputs.append(measured.average_throughput)
                queries.append(decision.cost["estimator_queries"])
            results[label] = (float(np.mean(throughputs)), float(np.mean(queries)))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, f"{throughput:.2f}", f"{queries:.0f}"]
        for label, (throughput, queries) in results.items()
    ]
    print()
    print(format_table(["strategy", "mean T (inf/s)", "queries/mix"], rows))

    mcts_throughput, _ = results["MCTS (OmniBoost)"]
    random_throughput, _ = results["RandomSearch"]
    greedy_throughput, greedy_queries = results["Greedy"]
    annealing_throughput, _ = results["Annealing"]
    # MCTS must hold its own against budget-matched alternatives.
    assert mcts_throughput >= random_throughput * 0.9
    assert mcts_throughput >= greedy_throughput * 0.9
    assert mcts_throughput >= annealing_throughput * 0.9
    # Greedy explores far fewer candidates.
    assert greedy_queries < 500


def test_ablation_mcts_near_exhaustive_on_tiny_mix(benchmark, paper_system):
    """On a mix small enough to enumerate, budgeted MCTS must recover
    nearly all of the exhaustive optimum (in estimator-reward space --
    both search the same surface).  Both searches are capped at two
    stages per DNN to keep the enumeration to ~7,400 mappings."""
    mix = Workload.from_names(["alexnet", "mobilenet"])
    exhaustive = ExhaustiveSearchScheduler(
        paper_system.estimator, max_stages=2, max_evaluations=50_000
    )
    mcts = OmniBoostScheduler(
        paper_system.estimator,
        config=MCTSConfig(budget=500, seed=11),
        stage_cap=2,
    )

    def run():
        optimum = exhaustive.schedule(mix)
        found = mcts.schedule(mix)
        return optimum, found

    optimum, found = benchmark.pedantic(run, rounds=1, iterations=1)
    space = optimum.cost["estimator_queries"]
    ratio = found.expected_score / optimum.expected_score
    print(
        f"\n[ABL-SEARCH] exhaustive space {space:,.0f} mappings; "
        f"MCTS with 500 queries reaches {ratio:.1%} of the optimum reward"
    )
    assert found.expected_score <= optimum.expected_score + 1e-9
    assert ratio > 0.85
