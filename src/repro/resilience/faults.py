"""Deterministic fault injection: typed faults at component boundaries.

The elastic tier (PR 8) made the fleet survive *board* failures; this
module is the *software*-failure half of the resilience layer.  A
:class:`FaultPlan` is the :class:`~repro.workloads.trace.ChaosPlan`'s
sibling for component faults: a seeded, declarative list of
:class:`FaultSpec` entries, each firing at a **call count** — the
N-th estimator forward, the N-th decision-cache lookup — never at a
wall-clock time (doctrine rules RPR002/RPR003: replays must be pure
functions of their inputs, and CI machines do not share clocks).

Three fault channels are injected:

* ``estimator-nan`` / ``estimator-inf`` — the estimator's normalized
  forward output is replaced with non-finite values, which the
  :class:`~repro.estimator.model.ThroughputEstimator` guard turns into
  a typed :class:`~repro.estimator.model.EstimatorFault` instead of
  silently corrupting MCTS reward ordering;
* ``plan-error`` — the compiled
  :class:`~repro.nn.inference.InferencePlan` raises
  :class:`~repro.nn.inference.PlanExecutionError` at serve time (only
  while the compiled backend is actually in use, so the interpreter
  tier of the degradation ladder heals it by construction);
* ``cache-corrupt`` — a decision-cache lookup returns a poisoned
  entry; the engine detects it, drops the entry, counts the incident
  and re-searches.

The :class:`FaultInjector` is the runtime: it owns the call counters,
decides per call whether a spec's window covers it, and exports /
restores its counters for crash-consistent checkpointing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..nn.inference import PlanExecutionError

__all__ = ["FAULT_KINDS", "FaultInjector", "FaultPlan", "FaultSpec"]

#: The typed fault channels a plan may inject.
FAULT_KINDS: Tuple[str, ...] = (
    "estimator-nan",
    "estimator-inf",
    "plan-error",
    "cache-corrupt",
)

#: Fault kinds triggered by the estimator-forward counter.
ESTIMATOR_KINDS: Tuple[str, ...] = (
    "estimator-nan",
    "estimator-inf",
    "plan-error",
)


@dataclass(frozen=True)
class FaultSpec:
    """One typed fault window: ``kind`` fires on calls ``at_call``..``at_call+count-1``.

    ``at_call`` is 1-based and counts calls of the fault's *channel*
    (estimator forwards for the ``estimator-*``/``plan-error`` kinds,
    decision-cache lookups for ``cache-corrupt``), so a spec is a pure
    function of the replay — no clocks, no racing.
    """

    kind: str
    at_call: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.at_call < 1:
            raise ValueError(
                f"at_call is 1-based and must be >= 1, got {self.at_call}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def covers(self, call: int) -> bool:
        """Whether this window covers (1-based) call number ``call``."""
        return self.at_call <= call < self.at_call + self.count

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI syntax ``KIND@CALL`` or ``KIND@CALLxN``.

        ``estimator-nan@3`` corrupts the 3rd estimator forward;
        ``estimator-nan@3x2`` corrupts the 3rd and 4th.  Raises
        :class:`ValueError` (one line, no traceback context) on any
        malformed spec so callers can turn it into a usage error.
        """
        kind, sep, window = text.strip().partition("@")
        if not sep or not kind or not window:
            raise ValueError(
                f"expected KIND@CALL or KIND@CALLxN (e.g. "
                f"estimator-nan@3x2), got {text!r}"
            )
        call_text, times, count_text = window.partition("x")
        try:
            at_call = int(call_text)
            count = int(count_text) if times else 1
        except ValueError:
            raise ValueError(
                f"fault window {window!r} is not CALL or CALLxN "
                f"(integers), in {text!r}"
            ) from None
        return cls(kind=kind, at_call=at_call, count=count)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "at_call": self.at_call, "count": self.count}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            at_call=int(payload["at_call"]),
            count=int(payload.get("count", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, declarative fault schedule (may be empty).

    Specs must be ordered by ``at_call`` (the replay fires them in
    counter order, exactly like a :class:`~repro.workloads.trace.ChaosPlan`
    fires failures in time order), and two windows of the same kind
    must not overlap — a call covered twice by one kind is a plan
    authoring error, not a feature.  An empty plan injects nothing and
    leaves every replay byte-identical to running without one.
    """

    faults: Tuple[FaultSpec, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        calls = [spec.at_call for spec in self.faults]
        if calls != sorted(calls):
            raise ValueError("fault specs must be ordered by at_call")
        by_kind: Dict[str, FaultSpec] = {}
        for spec in self.faults:
            previous = by_kind.get(spec.kind)
            if previous is not None and spec.covers(
                previous.at_call + previous.count - 1
            ):
                raise ValueError(
                    f"overlapping {spec.kind!r} windows: calls "
                    f"{previous.at_call}..{previous.at_call + previous.count - 1} "
                    f"and {spec.at_call}..{spec.at_call + spec.count - 1}"
                )
            by_kind[spec.kind] = spec

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def single(cls, kind: str, at_call: int, count: int = 1) -> "FaultPlan":
        """The common one-window plan."""
        return cls(
            (FaultSpec(kind=kind, at_call=at_call, count=count),),
            name=f"{kind}@{at_call}",
        )

    def active(self, kinds: Sequence[str], call: int) -> Optional[str]:
        """The kind (among ``kinds``) whose window covers ``call``, if any."""
        for spec in self.faults:
            if spec.kind in kinds and spec.covers(call):
                return spec.kind
        return None

    # ------------------------------------------------------------------
    # Serialization (journal headers embed plans for resume verification)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        return cls(
            faults=tuple(
                FaultSpec.from_dict(entry) for entry in payload["faults"]
            ),
            name=payload.get("name", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class FaultInjector:
    """The runtime that fires a :class:`FaultPlan` by call count.

    One injector belongs to one
    :class:`~repro.engine.SchedulingEngine`: the engine installs
    :meth:`on_forward` as the estimator's ``fault_hook`` and consults
    :meth:`on_cache_lookup` per decision-cache read.  All state is two
    monotonic counters, so a checkpointed replay restores the injector
    with :meth:`restore_state` and every later fault fires at exactly
    the call it would have fired at uninterrupted.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.estimator_calls = 0
        self.cache_lookups = 0
        self.faults_fired = 0

    def on_forward(self, outputs: np.ndarray, backend: str) -> np.ndarray:
        """Estimator fault hook: one call per batched forward.

        Returns the (possibly corrupted) outputs; raises
        :class:`~repro.nn.inference.PlanExecutionError` for a
        ``plan-error`` window while the compiled backend is in use
        (the window is a no-op on the interpreter — that asymmetry is
        what lets the ladder's interpreter tier heal plan faults).
        """
        self.estimator_calls += 1
        kind = self.plan.active(ESTIMATOR_KINDS, self.estimator_calls)
        if kind is None:
            return outputs
        if kind == "plan-error":
            if backend != "compiled":
                return outputs
            self.faults_fired += 1
            raise PlanExecutionError(
                f"injected plan-error at estimator call {self.estimator_calls}"
            )
        self.faults_fired += 1
        value = np.nan if kind == "estimator-nan" else np.inf
        return np.full_like(outputs, value)

    def on_cache_lookup(self) -> bool:
        """Count one decision-cache lookup; True when it is corrupted."""
        self.cache_lookups += 1
        fired = (
            self.plan.active(("cache-corrupt",), self.cache_lookups)
            is not None
        )
        if fired:
            self.faults_fired += 1
        return fired

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_state(self) -> Dict:
        """JSON-ready counter snapshot (the plan travels separately)."""
        return {
            "estimator_calls": self.estimator_calls,
            "cache_lookups": self.cache_lookups,
            "faults_fired": self.faults_fired,
        }

    def restore_state(self, state: Dict) -> None:
        self.estimator_calls = int(state["estimator_calls"])
        self.cache_lookups = int(state["cache_lookups"])
        self.faults_fired = int(state["faults_fired"])
