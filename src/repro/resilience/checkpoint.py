"""Crash-consistent trace checkpointing: the append-only replay journal.

A journaled replay writes one JSONL line per committed event *group*
(all arrivals/departures sharing a timestamp — the replay's atomic
commit unit), each carrying the records the group emitted plus the
minimal serving state needed to continue: online-scheduler tenancy and
warm rows, ladder/injector counters, and (for fleets) per-board
tenancy, placements, and which chaos failures already fired.  Every
line is flushed and fsynced before the replay moves on, so a SIGKILL
at any instant leaves at most one torn trailing line.

Recovery semantics are deliberately asymmetric:

* a **torn final line** is the expected crash artifact — it is dropped
  and the file truncated back to the last complete line;
* a **corrupt interior line** means the file was damaged after the
  fact — that is an error, not something to silently skip.

The header pins what the journal was written for (trace fingerprint,
scheduler, online config, fault plan, ...); ``resume_trace`` refuses a
journal whose header does not match its own arguments, because a
resume against different inputs could never be byte-identical to the
uninterrupted run it is standing in for.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

__all__ = ["JOURNAL_FORMAT", "TraceJournal", "trace_fingerprint"]

#: Bumped whenever the journal line schema changes incompatibly.
JOURNAL_FORMAT = 1


def trace_fingerprint(trace) -> str:
    """A short stable digest of an arrival trace's event content."""
    payload = json.dumps(
        [event.to_dict() for event in trace], sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class TraceJournal:
    """Append-only JSONL journal for one checkpointed trace replay.

    Line 1 is the header; each later line is a committed group::

        {"kind": "header", "format": 1, ...caller header fields...}
        {"kind": "group", "position": 0, "events": 2,
         "records": [...TimelineRecord.to_dict()...], "state": {...}}

    Use :meth:`create` to start a fresh journal, :meth:`load` to parse
    one read-only (torn tail dropped), and :meth:`resume` to truncate
    the torn tail on disk and reopen for appending.
    """

    def __init__(self, path: str, handle) -> None:
        self.path = path
        self._handle = handle

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str, header: Dict) -> "TraceJournal":
        """Start a fresh journal at ``path`` (overwriting any old one)."""
        handle = open(path, "w", encoding="utf-8")
        journal = cls(path, handle)
        journal._write({"kind": "header", "format": JOURNAL_FORMAT, **header})
        return journal

    def append_group(
        self, position: int, events: int, records: List[Dict], state: Dict
    ) -> None:
        """Commit one event group: records emitted + state to resume from."""
        self._write(
            {
                "kind": "group",
                "position": position,
                "events": events,
                "records": records,
                "state": state,
            }
        )

    def _write(self, payload: Dict) -> None:
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        line = json.dumps(payload, sort_keys=True)
        self._handle.write(line + "\n")
        # Crash consistency: the group is only "committed" once it is
        # durably on disk -- flush the stream and fsync the file.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Reading / recovery
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> Tuple[Dict, List[Dict], int]:
        """Parse a journal; returns (header, group entries, good byte length).

        The final line, if torn by a crash, is dropped; a corrupt line
        anywhere *before* the tail raises :class:`ValueError`.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        lines = text.split("\n")
        # A well-formed file ends with "\n", so the final split element
        # is empty; anything else there is the torn tail.
        complete, tail = lines[:-1], lines[-1]
        parsed: List[Dict] = []
        consumed = 0
        for number, line in enumerate(complete, start=1):
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:  # repro: lint-ignore[RPR009] -- a torn tail is the crash artifact recovery exists for; interior damage still raises below
                if number == len(complete) and not tail:
                    break  # torn line that did get its newline written
                raise ValueError(
                    f"journal {path} is corrupt at line {number} "
                    f"(only the final line may be torn)"
                ) from None
            consumed += len(line.encode("utf-8")) + 1
        if not parsed or parsed[0].get("kind") != "header":
            raise ValueError(f"journal {path} has no header line")
        header = parsed[0]
        if header.get("format") != JOURNAL_FORMAT:
            raise ValueError(
                f"journal {path} has format {header.get('format')!r}; "
                f"this build writes format {JOURNAL_FORMAT}"
            )
        entries = parsed[1:]
        for position, entry in enumerate(entries):
            if entry.get("kind") != "group" or entry.get("position") != position:
                raise ValueError(
                    f"journal {path}: entry {position} is out of order"
                )
        return header, entries, consumed

    @classmethod
    def resume(cls, path: str) -> Tuple["TraceJournal", Dict, List[Dict]]:
        """Reopen a journal for appending, truncating any torn tail."""
        header, entries, consumed = cls.load(path)
        handle = open(path, "r+", encoding="utf-8")
        handle.truncate(consumed)
        handle.seek(consumed)
        return cls(path, handle), header, entries
