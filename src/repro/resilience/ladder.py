"""The estimator degradation ladder: a count-based circuit breaker.

When the :class:`~repro.estimator.model.ThroughputEstimator` starts
misbehaving — non-finite forwards (:class:`~repro.estimator.model.EstimatorFault`)
or compiled-plan failures (:class:`~repro.nn.inference.PlanExecutionError`)
— dropping requests would be the worst possible answer: RankMap-style
priority contracts only mean something if the scheduler keeps
answering while degraded.  Instead the engine walks a fixed ladder of
progressively cheaper-but-safer decision tiers:

====================  ====================================================
tier                  decision quality / estimator dependence
====================  ====================================================
``compiled``          full MCTS over the compiled estimator (the normal
                      serving path)
``interpreter``       full MCTS over the interpreter backend (heals
                      compiled-plan faults; same weights, same rewards)
``static``            full MCTS scored by the closed-form
                      :class:`~repro.baselines.ga.StaticCostModel` —
                      **zero** estimator forwards per decision
``greedy``            no search at all: deterministic least-loaded
                      whole-DNN placement from the profiled latency
                      table; always answers
====================  ====================================================

Stepping is a pure function of counts (doctrine RPR002/RPR003): after
``step_down_after`` detected faults at a tier the ladder steps down one
rung; after ``probe_after`` consecutive successful decisions at a
degraded tier it half-opens — the next attempt probes the tier above,
climbing on success and staying put (window closed, counters reset) on
failure.  No wall-clock cool-downs anywhere, so a checkpointed replay
that restores the ladder's counters resumes byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .faults import FaultPlan

__all__ = ["TIERS", "DegradationLadder", "ResiliencePolicy"]

#: The ladder's rungs, best first.  Index 0 is the normal serving path.
TIERS: Tuple[str, ...] = ("compiled", "interpreter", "static", "greedy")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Configuration for a resilient :class:`~repro.engine.SchedulingEngine`.

    ``faults`` is the deterministic injection plan (empty by default —
    an empty plan plus default thresholds leaves every replay
    byte-identical to an engine built without a policy).
    ``step_down_after`` faults at one tier trigger a step down;
    ``probe_after`` consecutive successes at a degraded tier trigger a
    half-open probe of the tier above.  Both are decision counts.
    """

    faults: FaultPlan = field(default_factory=FaultPlan)
    step_down_after: int = 1
    probe_after: int = 4

    def __post_init__(self) -> None:
        if self.step_down_after < 1:
            raise ValueError(
                f"step_down_after must be >= 1, got {self.step_down_after}"
            )
        if self.probe_after < 1:
            raise ValueError(f"probe_after must be >= 1, got {self.probe_after}")


class DegradationLadder:
    """Mutable ladder state: current tier, fault/success counters, probes.

    The engine calls :meth:`begin_attempt` before each drive (it may
    return the tier above the resident one when a half-open probe is
    due), :meth:`record_fault` when a drive dies with a typed fault,
    and :meth:`complete_attempt` when a drive finishes.  All state is
    integer counters, exported and restored verbatim by the trace
    checkpoint journal.
    """

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy
        self.level = 0
        self.faults_at_level = 0
        self.successes = 0
        self.probing = False
        self.step_downs = 0
        self.step_ups = 0
        self.probes = 0

    @property
    def tier(self) -> str:
        """The resident tier (ignoring any in-flight probe)."""
        return TIERS[self.level]

    def begin_attempt(self) -> str:
        """The tier the next drive should run at (may open a probe)."""
        if (
            self.level > 0
            and not self.probing
            and self.successes >= self.policy.probe_after
        ):
            self.probing = True
            self.probes += 1
        if self.probing:
            return TIERS[self.level - 1]
        return TIERS[self.level]

    def record_fault(self) -> None:
        """A drive at :meth:`begin_attempt`'s tier died with a typed fault."""
        if self.probing:
            # Failed probe: the tier above is still broken.  Close the
            # half-open window and start earning successes again.
            self.probing = False
            self.successes = 0
            return
        self.faults_at_level += 1
        if (
            self.faults_at_level >= self.policy.step_down_after
            and self.level < len(TIERS) - 1
        ):
            self.level += 1
            self.step_downs += 1
            self.faults_at_level = 0
            self.successes = 0

    def complete_attempt(self, decisions: int = 1) -> None:
        """A drive finished cleanly, producing ``decisions`` decisions."""
        if self.probing:
            # Successful probe: climb one rung and close the window.
            self.level -= 1
            self.step_ups += 1
            self.probing = False
            self.successes = 0
            self.faults_at_level = 0
        elif self.level > 0:
            self.successes += decisions

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_state(self) -> Dict:
        """JSON-ready snapshot of every counter (policy travels separately)."""
        return {
            "level": self.level,
            "faults_at_level": self.faults_at_level,
            "successes": self.successes,
            "probing": self.probing,
            "step_downs": self.step_downs,
            "step_ups": self.step_ups,
            "probes": self.probes,
        }

    def restore_state(self, state: Dict) -> None:
        self.level = int(state["level"])
        self.faults_at_level = int(state["faults_at_level"])
        self.successes = int(state["successes"])
        self.probing = bool(state["probing"])
        self.step_downs = int(state["step_downs"])
        self.step_ups = int(state["step_ups"])
        self.probes = int(state["probes"])
