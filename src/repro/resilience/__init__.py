"""Resilience layer: fault injection, degradation ladder, checkpointing.

PR 8's elastic tier made the fleet survive *board* failures; this
package makes the serving stack survive *software* failures in its one
learned component, the throughput estimator — and makes long replays
survive the process itself dying.  Three cooperating parts:

* :mod:`~repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` (sibling of :class:`~repro.workloads.trace.ChaosPlan`)
  injecting typed faults at component boundaries by **call count**,
  never wall-clock;
* :mod:`~repro.resilience.ladder` — a count-based circuit breaker
  stepping compiled → interpreter → static-cost → greedy, with
  half-open probes that climb back up; no request is ever dropped
  while degraded;
* :mod:`~repro.resilience.checkpoint` — an fsynced JSONL journal of
  per-event-group replay state, so ``resume_trace`` after a SIGKILL is
  byte-identical to the uninterrupted run.

Typical use::

    from repro import FaultPlan, ResiliencePolicy, SchedulingEngine, SystemBuilder

    policy = ResiliencePolicy(faults=FaultPlan.single("estimator-nan", at_call=40))
    engine = SchedulingEngine(SystemBuilder(seed=7), resilience=policy)
    report = engine.run_trace(trace, checkpoint="replay.journal")
    # ...after a crash:
    report = engine.resume_trace(trace, "replay.journal")

See ``docs/resilience.md`` for the fault spec syntax, ladder
semantics, and the journal format.
"""

from .checkpoint import JOURNAL_FORMAT, TraceJournal, trace_fingerprint
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from .ladder import TIERS, DegradationLadder, ResiliencePolicy

__all__ = [
    "FAULT_KINDS",
    "JOURNAL_FORMAT",
    "TIERS",
    "DegradationLadder",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicy",
    "TraceJournal",
    "trace_fingerprint",
]
