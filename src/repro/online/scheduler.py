"""Incremental re-planning over a changing tenant set: :class:`OnlineScheduler`.

One OmniBoost decision prices ~500 estimator queries.  A long-lived
deployment that re-ran a cold search on every arrival and departure
would spend almost all of that budget rediscovering placements it
already knew: after a single departure, the surviving tenants' rows of
the previous mapping are usually still an excellent — often optimal —
schedule.  The :class:`OnlineScheduler` exploits that: it retains the
per-model device rows of the last committed decision and *warm-starts*
each re-search by seeding
:meth:`~repro.core.mcts.MonteCarloTreeSearch.search_steps` with the
retained rows projected onto the new mix: new arrivals are greedily
completed with their best single-device row (one small batched
evaluation per arrival), then a few greedy *refinement* rounds
re-offer freed capacity to the survivors — each round scores every
stage-level device move in one batched call and keeps the best.  The
seeded search starts from an incumbent it can only improve on, and a
``patience`` limit ends it as soon as the incumbent stops moving — a
fraction of the cold budget for the same or better estimated
throughput.

The warm path falls back to a full cold search whenever the seed is
not trustworthy: no retained decision yet, the retained rows cover
less than :attr:`OnlineConfig.min_overlap` of the new mix, warm
starting is disabled, or the seed fails the environment's validation
(wrong shape, stage-cap breach).  Either way the returned
:class:`OnlineDecision` reports which path ran and what it cost.

Driving it by hand::

    >>> from repro import SystemBuilder
    >>> from repro.online import OnlineConfig, OnlineScheduler
    >>> from repro.workloads import churn_scenario
    >>> scheduler = (
    ...     SystemBuilder().with_estimator(epochs=20).build_scheduler("omniboost")
    ... )
    >>> online = OnlineScheduler(scheduler, OnlineConfig(warm_patience=100))
    >>> for event in churn_scenario("steady-drain"):
    ...     online.apply(event)
    ...     outcome = online.plan()
    ...     if outcome is not None:
    ...         print(event.kind, outcome.mode, outcome.decision.expected_score)

:meth:`SchedulingService.run_trace <repro.service.SchedulingService.run_trace>`
wraps the same object in the service's pooled-evaluation event loop
and emits a per-event :class:`~repro.evaluation.TimelineReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import ScheduleDecision
from ..core.scheduler import OmniBoostScheduler
from ..sim.mapping import Mapping
from ..workloads.mix import Workload
from ..workloads.trace import ArrivalEvent

__all__ = ["OnlineConfig", "OnlineDecision", "OnlineScheduler"]

#: What ``plan_steps`` yields: (workload, mappings awaiting rewards).
PlanRequest = Tuple[Workload, List[Mapping]]


@dataclass(frozen=True)
class OnlineConfig:
    """Warm-start policy knobs.

    ``warm_patience`` stops a warm re-search after that many
    consecutive iterations without an incumbent improvement (``None``
    runs the full budget — useful for the identity property, wasteful
    in production).  ``min_overlap`` is the fraction of the new mix
    that must be covered by retained rows for the warm path to engage;
    below it the seed is considered untrustworthy and a cold search
    runs.  ``warm_budget`` / ``cold_budget`` override the scheduler's
    configured MCTS budget per path (``None`` keeps it — the measured
    speedup then comes purely from early stopping, at equal budget).
    ``refine_rounds`` bounds the greedy seed-refinement passes that
    re-offer freed capacity to the surviving tenants before the search
    starts (each pass scores a few dozen stage-move candidates in one
    batched evaluation; 0 disables refinement and seeds the raw
    projection).  ``warm=False`` disables warm starting entirely
    (every event pays a cold search; the benchmark's comparison arm).
    """

    warm: bool = True
    warm_patience: Optional[int] = 120
    min_overlap: float = 0.5
    warm_budget: Optional[int] = None
    cold_budget: Optional[int] = None
    refine_rounds: int = 3

    def __post_init__(self) -> None:
        if self.warm_patience is not None and self.warm_patience < 1:
            raise ValueError(
                f"warm_patience must be >= 1, got {self.warm_patience}"
            )
        if self.refine_rounds < 0:
            raise ValueError(
                f"refine_rounds must be >= 0, got {self.refine_rounds}"
            )
        if not 0.0 < self.min_overlap <= 1.0:
            raise ValueError(
                f"min_overlap must be in (0, 1], got {self.min_overlap}"
            )
        for label, budget in (
            ("warm_budget", self.warm_budget),
            ("cold_budget", self.cold_budget),
        ):
            if budget is not None and budget < 1:
                raise ValueError(f"{label} must be >= 1, got {budget}")


@dataclass(frozen=True)
class OnlineDecision:
    """One re-planning outcome.

    ``mode`` is ``"warm"`` or ``"cold"``; ``seed_reward`` the evaluated
    score of the (refined) warm seed (``None`` on cold paths);
    ``completion_evaluations`` how many candidate placements were
    scored to complete new arrivals into the seed, and
    ``refinement_evaluations`` how many the greedy seed-refinement
    rounds cost.  The underlying
    :class:`~repro.core.base.ScheduleDecision` carries the full cost
    accounting (its ``estimator_queries`` counters include the seed
    and completion evaluations).
    """

    decision: ScheduleDecision
    workload: Workload
    mode: str
    seed_reward: Optional[float] = None
    stopped_early: bool = False
    iterations: int = 0
    completion_evaluations: int = 0
    refinement_evaluations: int = 0

    @property
    def mapping(self) -> Mapping:
        return self.decision.mapping

    @property
    def expected_score(self) -> float:
        return self.decision.expected_score


class OnlineScheduler:
    """Tenancy tracking + warm-started re-search over one evolving mix.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.core.scheduler.OmniBoostScheduler` whose
        estimator, environment settings and MCTS configuration every
        re-search uses.
    config:
        Warm-start policy; defaults to :class:`OnlineConfig`.

    The object is a state machine: :meth:`apply` folds one trace event
    into the active tenant set, :meth:`plan` (or the
    :meth:`plan_steps` coroutine, for pooled driving) re-schedules the
    current mix, and :meth:`commit` — called automatically by
    :meth:`plan` — retains the decision's rows as warm-start material
    for the next event.
    """

    def __init__(
        self,
        scheduler: OmniBoostScheduler,
        config: Optional[OnlineConfig] = None,
    ) -> None:
        if not isinstance(scheduler, OmniBoostScheduler):
            raise TypeError(
                "OnlineScheduler needs an OmniBoostScheduler (the warm "
                "start drives its estimator search); got "
                f"{type(scheduler).__name__}"
            )
        self.scheduler = scheduler
        self.config = config or OnlineConfig()
        #: tenant id -> (model name, priority), arrival order.
        self.active: Dict[str, Tuple[str, int]] = {}
        #: model name -> device row of the last committed decision.
        self._rows: Dict[str, Tuple[int, ...]] = {}
        self.last: Optional[OnlineDecision] = None

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------
    def apply(self, event: ArrivalEvent) -> bool:
        """Fold one event into the active set; True if the mix changed."""
        if event.kind == "arrival":
            if event.tenant_id in self.active:
                raise ValueError(f"tenant {event.tenant_id!r} already active")
            if any(model == event.model for model, _ in self.active.values()):
                raise ValueError(
                    f"model {event.model!r} already active; concurrent "
                    "duplicates are not representable"
                )
            self.active[event.tenant_id] = (event.model, event.priority)
            return True
        if event.tenant_id not in self.active:
            raise KeyError(f"departure of unknown tenant {event.tenant_id!r}")
        del self.active[event.tenant_id]
        return True

    def current_workload(self) -> Optional[Workload]:
        """The active mix as a Workload (None when the board is empty)."""
        if not self.active:
            return None
        return Workload.from_names(
            [model for model, _ in self.active.values()]
        )

    def reset(self) -> None:
        """Forget tenants and retained warm-start rows."""
        self.active.clear()
        self._rows.clear()
        self.last = None

    # ------------------------------------------------------------------
    # Checkpointing (crash-consistent trace replay)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict:
        """JSON-ready snapshot of tenancy and warm-start rows.

        This is the *complete* serving state of an online scheduler —
        ``plan_steps`` is a pure function of the active set, the
        retained rows and the (immutable) config — which is what makes
        the resilience layer's per-event journal
        (:mod:`repro.resilience.checkpoint`) sufficient for a resumed
        replay to be byte-identical to an uninterrupted one.  Insertion
        order of ``active`` is preserved (it defines workload order).
        """
        return {
            "active": [
                [tenant_id, model, priority]
                for tenant_id, (model, priority) in self.active.items()
            ],
            "rows": {name: list(row) for name, row in self._rows.items()},
        }

    def restore_state(self, state: Dict) -> None:
        """Restore an :meth:`export_state` snapshot."""
        self.active = {
            tenant_id: (model, int(priority))
            for tenant_id, model, priority in state["active"]
        }
        self._rows = {
            name: tuple(int(device) for device in row)
            for name, row in state["rows"].items()
        }
        self.last = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self) -> Optional[OnlineDecision]:
        """Re-schedule the current mix, standalone (timed, committed)."""
        workload = self.current_workload()
        if workload is None:
            return None
        started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement of re-plan wall time
        estimator = self.scheduler.estimator
        steps = self.plan_steps(workload)
        try:
            request = next(steps)
            while True:
                req_workload, mappings = request
                predicted = estimator.predict_throughput_batch(
                    [(req_workload, mapping) for mapping in mappings]
                )
                rewards = self.scheduler.reward_from_predictions(
                    req_workload, mappings, predicted, self.scheduler.objective
                )
                request = steps.send(rewards)
        except StopIteration as stop:
            outcome = stop.value
        elapsed = time.perf_counter() - started  # repro: lint-ignore[RPR002] -- host measurement of re-plan wall time
        outcome = replace(
            outcome,
            decision=replace(outcome.decision, wall_time_s=elapsed),
        )
        self.commit(outcome)
        return outcome

    def plan_steps(
        self, workload: Optional[Workload] = None
    ) -> "Generator[PlanRequest, Sequence[float], Optional[OnlineDecision]]":
        """Re-scheduling as a coroutine that externalizes evaluation.

        Yields ``(workload, mappings)`` requests — first the greedy
        completion candidates for any new arrivals, then the warm or
        cold search's own micro-batches — and expects the matching
        reward list via ``send()``.  Returns the
        :class:`OnlineDecision` (with ``wall_time_s`` left at 0 for
        the driver to fill) without committing it, so a service can
        drive several plans concurrently against one retained-row
        snapshot and commit only the final state.
        """
        if workload is None:
            workload = self.current_workload()
        if workload is None:
            return None
        scheduler = self.scheduler
        names = workload.model_names
        layer_counts = {
            model.name: model.num_layers for model in workload.models
        }
        retained = {
            name: self._rows[name]
            for name in names
            if name in self._rows
            and len(self._rows[name]) == layer_counts[name]
        }
        overlap = len(retained) / len(names)
        warm = (
            self.config.warm
            and bool(retained)
            and overlap >= self.config.min_overlap
        )
        completion_evals = 0
        seed: Optional[Mapping] = None
        if warm:
            num_devices = scheduler.estimator.embedding.num_devices
            seed_rows: Dict[str, Tuple[int, ...]] = dict(retained)
            arrivals = [name for name in names if name not in seed_rows]
            for name in arrivals:  # placeholders, refined greedily below
                seed_rows[name] = (0,) * layer_counts[name]
            for name in arrivals:
                candidates = [
                    Mapping(
                        [
                            (device,) * layer_counts[name]
                            if other == name
                            else seed_rows[other]
                            for other in names
                        ]
                    )
                    for device in range(num_devices)
                ]
                rewards = yield (workload, candidates)
                completion_evals += len(candidates)
                best = int(np.argmax(rewards))
                seed_rows[name] = (best,) * layer_counts[name]
            seed = Mapping([seed_rows[name] for name in names])

        refinement_evals = 0
        if seed is not None and self.config.refine_rounds:
            # Greedy refinement: a departure frees capacity the
            # projected rows never claim, so re-offer it — per round,
            # score every single-stage device move (and whole-row
            # relocation) of every survivor in one batched call and
            # keep the best, until a round stops improving.
            num_devices = scheduler.estimator.embedding.num_devices
            stage_cap = scheduler.stage_cap or num_devices
            rewards = yield (workload, [seed])
            refinement_evals += 1
            seed_reward = float(rewards[0])
            for _ in range(self.config.refine_rounds):
                candidates = self._refinement_candidates(
                    seed, num_devices, stage_cap
                )
                if not candidates:
                    break
                rewards = yield (workload, candidates)
                refinement_evals += len(candidates)
                best = int(np.argmax(rewards))
                if float(rewards[best]) <= seed_reward:
                    break
                seed_reward = float(rewards[best])
                seed = candidates[best]

        result = None
        if seed is not None:
            budget = self.config.warm_budget or scheduler.config.budget
            search = scheduler.make_search(
                workload, config=replace(scheduler.config, budget=budget)
            )
            try:
                result = yield from self._relay(
                    workload,
                    search.search_steps(
                        initial_mapping=seed,
                        patience=self.config.warm_patience,
                    ),
                )
            except ValueError:
                # Seed rejected by the environment (e.g. a stage-cap
                # breach after re-projection): cold fallback below.
                seed = None
        if result is None:
            budget = self.config.cold_budget or scheduler.config.budget
            search = scheduler.make_search(
                workload, config=replace(scheduler.config, budget=budget)
            )
            result = yield from self._relay(workload, search.search_steps())

        seeding_evals = completion_evals + refinement_evals
        decision = scheduler.decision_from_result(
            result, int(result.cache_misses) + seeding_evals
        )
        if seeding_evals:
            cost = dict(decision.cost)
            cost["estimator_queries"] += float(seeding_evals)
            cost["completion_evaluations"] = float(completion_evals)
            cost["refinement_evaluations"] = float(refinement_evals)
            decision = replace(decision, cost=cost)
        return OnlineDecision(
            decision=decision,
            workload=workload,
            mode="warm" if seed is not None else "cold",
            seed_reward=result.seed_reward,
            stopped_early=result.stopped_early,
            iterations=result.iterations,
            completion_evaluations=completion_evals,
            refinement_evaluations=refinement_evals,
        )

    @staticmethod
    def _refinement_candidates(
        seed: Mapping, num_devices: int, stage_cap: int
    ) -> List[Mapping]:
        """One round's neighbourhood: stage device moves + row relocations.

        Moving a whole stage (or a whole row) to another device never
        *increases* a row's stage count, so every candidate respects
        the cap the seed respects; the guard below is belt-and-braces.
        """
        candidates: List[Mapping] = []
        seen = {seed}
        rows = [list(row) for row in seed.assignments]
        for index, row in enumerate(rows):
            moves: List[List[int]] = []
            for stage in seed.stages(index):
                for device in range(num_devices):
                    if device == stage.device_id:
                        continue
                    moved = list(row)
                    moved[stage.start : stage.end] = [device] * (
                        stage.end - stage.start
                    )
                    moves.append(moved)
            for device in range(num_devices):
                moves.append([device] * len(row))
            for moved in moves:
                candidate = Mapping(
                    rows[:index] + [moved] + rows[index + 1 :]
                )
                if candidate in seen:
                    continue
                seen.add(candidate)
                if candidate.max_stages <= stage_cap:
                    candidates.append(candidate)
        return candidates

    @staticmethod
    def _relay(workload: Workload, steps):
        """Adapt ``search_steps`` yields to the (workload, mappings) protocol."""
        try:
            batch = next(steps)
            while True:
                rewards = yield (workload, list(batch))
                batch = steps.send(rewards)
        except StopIteration as stop:
            return stop.value

    def commit(self, outcome: OnlineDecision) -> None:
        """Retain a decision's rows as the next event's warm-start material."""
        for name, row in zip(
            outcome.workload.model_names, outcome.decision.mapping.assignments
        ):
            self._rows[name] = tuple(row)
        self.last = outcome
