"""Online multi-DNN scheduling: react to churn instead of re-solving.

The paper's system answers one fixed mix; this package turns it into a
long-lived manager for a *changing* tenant population.  Three pieces
cooperate:

* :mod:`repro.workloads.trace` supplies the dynamics — seeded
  arrival/departure traces and named churn scenarios;
* :class:`OnlineScheduler` (here) maintains the active mix and
  re-plans each tenancy change with a *warm-started* MCTS — seeded
  from the previous decision's retained rows, early-stopped on
  convergence, cold-search fallback when the seed is untrustworthy;
* :meth:`SchedulingService.run_trace
  <repro.service.SchedulingService.run_trace>` wires the event loop
  through the service's pooled estimator batching and emits a
  per-event :class:`~repro.evaluation.TimelineReport`.

The ten-second tour::

    >>> from repro import SchedulingService, SystemBuilder
    >>> from repro.workloads import churn_scenario
    >>> service = SchedulingService(SystemBuilder().with_estimator(epochs=20))
    >>> report = service.run_trace(churn_scenario("bursty"))
    >>> print(report.summary())
    >>> print(report.per_priority_latency())

Operational guidance (trace format, scenario shapes, warm-start
semantics and tuning) lives in ``docs/online.md``.
"""

from .scheduler import OnlineConfig, OnlineDecision, OnlineScheduler

__all__ = ["OnlineConfig", "OnlineDecision", "OnlineScheduler"]
