"""End-to-end system assembly: the OmniBoost design-time pipeline.

One call builds everything the paper's Figure 2 shows: the board
(simulator), the kernel-profiled latency tables, the distributed
embedding tensor, the estimator trained on random multi-DNN workloads,
and the MCTS scheduler on top -- plus the three comparison schedulers,
so examples and benches can reproduce the evaluation with a few lines:

>>> from repro import build_system
>>> system = build_system(epochs=10)          # doctest: +SKIP
>>> mix = system.generator.sample_mix(4)      # doctest: +SKIP
>>> decision = system.omniboost.schedule(mix) # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .baselines.ga import GAConfig, GeneticScheduler, StaticCostModel
from .baselines.gpu_only import GpuOnlyScheduler
from .baselines.mosaic import LayerLatencyRegression, MosaicScheduler
from .core.mcts import MCTSConfig
from .core.scheduler import OmniBoostScheduler
from .estimator.embedding import EmbeddingSpace
from .estimator.model import ThroughputEstimator
from .estimator.training import (
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    TrainingHistory,
)
from .hw.platform_ import Platform
from .hw.presets import hikey970
from .models.registry import MODEL_NAMES, build_all_models
from .sim.profiler import KernelProfiler, LatencyTable
from .sim.simulator import BoardSimulator, SimConfig
from .workloads.generator import WorkloadGenerator

__all__ = ["OmniBoostSystem", "build_system"]


@dataclass
class OmniBoostSystem:
    """Everything assembled: board, estimator, schedulers, generator."""

    platform: Platform
    simulator: BoardSimulator
    profiler: KernelProfiler
    latency_table: LatencyTable
    embedding: EmbeddingSpace
    estimator: ThroughputEstimator
    training_history: Optional[TrainingHistory]
    generator: WorkloadGenerator
    omniboost: OmniBoostScheduler
    baseline: GpuOnlyScheduler
    mosaic: MosaicScheduler
    ga: GeneticScheduler

    @property
    def schedulers(self) -> Tuple:
        """All four schedulers in the paper's comparison order."""
        return (self.baseline, self.mosaic, self.ga, self.omniboost)


def build_system(
    platform: Optional[Platform] = None,
    model_names: Sequence[str] = MODEL_NAMES,
    sim_config: Optional[SimConfig] = None,
    mcts_config: Optional[MCTSConfig] = None,
    ga_config: Optional[GAConfig] = None,
    num_training_samples: int = 500,
    epochs: int = 100,
    measurement_repetitions: int = 3,
    train: bool = True,
    reserve_layers: int = 0,
    reserve_models: int = 0,
    seed: int = 0,
) -> OmniBoostSystem:
    """Build and (optionally) train a complete OmniBoost deployment.

    Parameters mirror the paper's Section V defaults: 500 training
    workloads, 100 epochs, MCTS budget 500 / depth 100.  Set
    ``train=False`` to get an untrained estimator (for tests that train
    their own or load a checkpoint).  ``reserve_layers`` /
    ``reserve_models`` pre-allocate embedding-tensor capacity so that
    DNNs arriving after design time can be added without retraining
    (see :meth:`~repro.estimator.embedding.EmbeddingSpace.extend`).
    """
    platform = platform or hikey970()
    simulator = BoardSimulator(platform, config=sim_config)
    profiler = KernelProfiler(platform)
    models = build_all_models(model_names)
    latency_table = profiler.profile(models, seed=seed)
    embedding = EmbeddingSpace(
        latency_table,
        model_names,
        reserve_layers=reserve_layers,
        reserve_models=reserve_models,
    )
    estimator = ThroughputEstimator(
        embedding, rng=np.random.default_rng(seed + 1)
    )
    generator = WorkloadGenerator(
        model_names=model_names,
        num_devices=platform.num_devices,
        seed=seed + 2,
    )
    history: Optional[TrainingHistory] = None
    if train:
        builder = EstimatorDatasetBuilder(simulator, generator, estimator)
        dataset = builder.build(
            num_samples=num_training_samples,
            measurement_seed=seed + 3,
            repetitions=measurement_repetitions,
        )
        train_size = max(1, int(round(0.8 * num_training_samples)))
        trainer = EstimatorTrainer(estimator)
        history = trainer.train(
            dataset, epochs=epochs, train_size=train_size, seed=seed + 4
        )
        estimator.reset_query_count()

    omniboost = OmniBoostScheduler(
        estimator, config=mcts_config or MCTSConfig(seed=seed + 5)
    )
    baseline = GpuOnlyScheduler(platform)
    regression = LayerLatencyRegression(platform.num_devices).fit(
        models, profiler, seed=seed + 6
    )
    mosaic = MosaicScheduler(platform, regression)
    ga_cost_model = StaticCostModel(
        platform,
        latency_table,
        offered_rate=simulator.config.offered_rate,
    )
    ga = GeneticScheduler(ga_cost_model, config=ga_config or GAConfig(seed=seed + 7))
    return OmniBoostSystem(
        platform=platform,
        simulator=simulator,
        profiler=profiler,
        latency_table=latency_table,
        embedding=embedding,
        estimator=estimator,
        training_history=history,
        generator=generator,
        omniboost=omniboost,
        baseline=baseline,
        mosaic=mosaic,
        ga=ga,
    )
