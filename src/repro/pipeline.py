"""End-to-end system assembly: the OmniBoost design-time pipeline.

One call builds everything the paper's Figure 2 shows: the board
(simulator), the kernel-profiled latency tables, the distributed
embedding tensor, the estimator trained on random multi-DNN workloads,
and the MCTS scheduler on top -- plus the comparison schedulers,
so examples and benches can reproduce the evaluation with a few lines:

>>> from repro import build_system
>>> system = build_system(epochs=10)          # doctest: +SKIP
>>> mix = system.generator.sample_mix(4)      # doctest: +SKIP
>>> decision = system.omniboost.schedule(mix) # doctest: +SKIP

``build_system()`` is now a thin, eager shim over the staged
:class:`~repro.builder.SystemBuilder` — new code should prefer the
builder (lazy stages, scheduler registry, checkpoint loading) or the
request/response front end in :mod:`repro.service`; this function
remains for the paper-reproduction scripts and builds byte-identical
artifacts (same seeds, same stage order), but emits a
:class:`DeprecationWarning` pointing at the replacements.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from .baselines.ga import GAConfig
from .builder import OmniBoostSystem, SystemBuilder
from .core.mcts import MCTSConfig
from .hw.platform_ import Platform
from .models.registry import MODEL_NAMES
from .sim.simulator import SimConfig

__all__ = ["OmniBoostSystem", "build_system"]


def build_system(
    platform: Optional[Platform] = None,
    model_names: Sequence[str] = MODEL_NAMES,
    sim_config: Optional[SimConfig] = None,
    mcts_config: Optional[MCTSConfig] = None,
    ga_config: Optional[GAConfig] = None,
    num_training_samples: int = 500,
    epochs: int = 100,
    measurement_repetitions: int = 3,
    train: bool = True,
    reserve_layers: int = 0,
    reserve_models: int = 0,
    use_compiled: bool = True,
    seed: int = 0,
) -> OmniBoostSystem:
    """Build and (optionally) train a complete OmniBoost deployment.

    Parameters mirror the paper's Section V defaults: 500 training
    workloads, 100 epochs, MCTS budget 500 / depth 100.  Set
    ``train=False`` to get an untrained estimator (for tests that train
    their own or load a checkpoint).  ``reserve_layers`` /
    ``reserve_models`` pre-allocate embedding-tensor capacity so that
    DNNs arriving after design time can be added without retraining
    (see :meth:`~repro.estimator.embedding.EmbeddingSpace.extend`).
    ``use_compiled=False`` keeps estimator queries on the autograd
    interpreter instead of the compiled inference plan.

    .. deprecated:: 1.4
        Prefer the staged :class:`~repro.builder.SystemBuilder` (lazy
        artifacts, registry, checkpoints) or the request/response
        :class:`~repro.service.SchedulingService`; this eager shim
        stays for the paper-reproduction scripts.
    """
    warnings.warn(
        "build_system() is deprecated: assemble lazily with "
        "repro.SystemBuilder (or serve requests through "
        "repro.SchedulingService); the shim builds byte-identical "
        "artifacts but trains everything eagerly",
        DeprecationWarning,
        stacklevel=2,
    )
    builder = (
        SystemBuilder(seed=seed)
        .with_models(model_names)
        .with_estimator(
            num_training_samples=num_training_samples,
            epochs=epochs,
            measurement_repetitions=measurement_repetitions,
            train=train,
            reserve_layers=reserve_layers,
            reserve_models=reserve_models,
            use_compiled=use_compiled,
        )
    )
    if platform is not None:
        builder.with_platform(platform)
    if sim_config is not None:
        builder.with_sim_config(sim_config)
    if mcts_config is not None:
        builder.with_mcts_config(mcts_config)
    if ga_config is not None:
        builder.with_ga_config(ga_config)
    return builder.build()
