"""Doctrine linter: the repo's invariants as machine-checked rules.

Every subsystem since PR 1 rests on conventions that were previously
enforced only in review: seeded determinism of the estimator-guided
search, bitwise batch-composition invariance of eval-mode inference
(what cross-request pooling and SLO admission scoring rely on), the
single-core-CI rule that perf gates compare estimator forward counts
rather than wall-time ratios, and canonical signatures on every
mix-keyed cache.  This package turns each of those doctrines into an
AST-level rule, run over the repo's own source by ``repro lint`` (and
the CI ``lint`` job, before the test matrix).

Layout:

* :mod:`~repro.analysis.core` -- ``Rule`` / ``Finding`` / ``Severity``,
  the shared parsed-module cache, and pragma-based suppression;
* :mod:`~repro.analysis.config` -- per-path rule scoping and the
  committed allowlist;
* :mod:`~repro.analysis.rules` -- the rule catalog (RPR001-RPR008);
* :mod:`~repro.analysis.runner` -- path expansion, text/JSON output,
  exit-code gating.

Quick start::

    from repro.analysis import LintConfig, run_lint

    report = run_lint(["src", "tests", "benchmarks"])
    for finding in report.findings:
        print(finding.location(), finding.rule, finding.message)
    assert report.clean

Suppress a deliberate, justified exception at the line that needs it::

    started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement

See ``docs/linting.md`` for the full rule catalog and the recipe for
adding a rule.
"""

from .config import (
    AllowlistEntry,
    DEFAULT_PATHS,
    LintConfig,
    RuleScope,
)
from .core import Finding, ParsedModule, Rule, Severity
from .rules import ALL_RULES, RULES_BY_CODE, rule_catalog
from .runner import (
    LintReport,
    format_json,
    format_text,
    iter_python_files,
    run_lint,
)

__all__ = [
    "ALL_RULES",
    "AllowlistEntry",
    "DEFAULT_PATHS",
    "Finding",
    "LintConfig",
    "LintReport",
    "ParsedModule",
    "RULES_BY_CODE",
    "Rule",
    "RuleScope",
    "Severity",
    "format_json",
    "format_text",
    "iter_python_files",
    "rule_catalog",
    "run_lint",
]
