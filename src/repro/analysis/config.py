"""The committed lint configuration: scoping, allowlist, selection.

Doctrine rules are not uniform over the tree -- wall-clock reads are
legal in benchmark harnesses, the batch-invariance rule only has
meaning in the eval-path kernels, and perf-gate policing only applies
to ``benchmarks/``.  This module is the single committed place that
encodes *where each rule applies* and *which known findings are
accepted*:

* :data:`DEFAULT_SCOPES` -- per-rule path scoping (prefix match on the
  repo-relative posix path).  A rule without an entry runs everywhere.
* :data:`DEFAULT_ALLOWLIST` -- committed (rule, path, reason) triples
  for whole files that are legitimately exempt.  Prefer in-source
  ``# repro: lint-ignore[RULE] -- reason`` pragmas for individual
  lines: they keep the justification next to the code.  The allowlist
  is for files whose *entire purpose* is the exempted behavior.

Edit this file in the same PR as the code that needs the exemption --
that is the review surface the linter exists to create.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = [
    "AllowlistEntry",
    "DEFAULT_ALLOWLIST",
    "DEFAULT_PATHS",
    "DEFAULT_SCOPES",
    "LintConfig",
    "RuleScope",
]

#: What ``repro lint`` checks when invoked without paths.
DEFAULT_PATHS: Tuple[str, ...] = ("src", "tests", "benchmarks")


@dataclass(frozen=True)
class RuleScope:
    """Where a rule applies: prefix-matched repo-relative posix paths."""

    include: Tuple[str, ...] = ()  # empty = everywhere
    exclude: Tuple[str, ...] = ()

    def applies(self, rel_path: str) -> bool:
        if any(rel_path.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.include:
            return True
        return any(rel_path.startswith(prefix) for prefix in self.include)


@dataclass(frozen=True)
class AllowlistEntry:
    """One committed exemption: ``rule`` is accepted under ``path``."""

    rule: str
    path: str  # repo-relative prefix ("src/repro/evaluation/runtime.py")
    reason: str

    def covers(self, rule: str, rel_path: str) -> bool:
        return rule == self.rule and rel_path.startswith(self.path)


#: Per-rule scoping.  Rationale per entry:
#:
#: * RPR002 -- wall-clock confinement covers production code and the
#:   benchmark harnesses (whose timers must be pragma-annotated);
#:   tests assert on simulated time constantly and host-time never
#:   leaks into results there, so they are out of scope.
#: * RPR003 -- perf-gate policy only has meaning in ``benchmarks/``.
#: * RPR004 -- batch-invariance is a property of the eval-path
#:   kernels; flagging training code or tests would be noise.
#: * RPR005 -- canonical cache keys are a production-code doctrine;
#:   tests build ad-hoc tuples legitimately.
#: * RPR009 -- fault visibility is a serving-path doctrine: the
#:   modules on the request path (engine, service, SLO, fleet,
#:   resilience) must surface every swallowed exception as a counter
#:   or re-raise; library and test code handles exceptions for many
#:   legitimate local reasons.
#: * RPR010 -- bounded caches are likewise a serving-path doctrine:
#:   a dict cache in a one-shot script or a test is fine; one on the
#:   request path of a long-lived service is a leak.
DEFAULT_SCOPES: Dict[str, RuleScope] = {
    "RPR002": RuleScope(include=("src/", "benchmarks/")),
    "RPR003": RuleScope(include=("benchmarks/",)),
    "RPR004": RuleScope(
        include=(
            "src/repro/nn/inference.py",
            "src/repro/nn/functional.py",
        )
    ),
    "RPR005": RuleScope(include=("src/",)),
    "RPR009": RuleScope(
        include=(
            "src/repro/engine.py",
            "src/repro/service.py",
            "src/repro/slo.py",
            "src/repro/fleet/",
            "src/repro/resilience/",
        )
    ),
    "RPR010": RuleScope(
        include=(
            "src/repro/engine.py",
            "src/repro/service.py",
            "src/repro/slo.py",
            "src/repro/fleet/",
            "src/repro/frontdoor/",
        )
    ),
}

#: Serving-stack modules where an inline ``tuple(sorted(...))`` is a
#: mix signature by construction and must go through
#: :func:`repro.workloads.canonical_signature` (RPR005's first check).
SIGNATURE_MODULES: Tuple[str, ...] = (
    "src/repro/engine.py",
    "src/repro/service.py",
    "src/repro/slo.py",
    "src/repro/fleet/",
    "src/repro/online/",
    "src/repro/workloads/",
)

#: Whole-file exemptions.  Keep this list short: a pragma at the call
#: site is almost always the better tool.
DEFAULT_ALLOWLIST: Tuple[AllowlistEntry, ...] = (
    AllowlistEntry(
        rule="RPR002",
        path="src/repro/evaluation/runtime.py",
        reason=(
            "designated host-measurement module: the runtime cost model "
            "is *about* wall time by definition"
        ),
    ),
    AllowlistEntry(
        rule="RPR010",
        path="src/repro/frontdoor/cache.py",
        reason=(
            "the bounded cache's own implementation: its per-shard "
            "OrderedDicts evict at capacity and count what they evict"
        ),
    ),
)

#: Public modules whose ``__all__`` the docs-sync rule (RPR006) pins
#: against the architecture doc's API rows.
PUBLIC_MODULES: Tuple[str, ...] = ("src/repro/__init__.py",)

#: Names exempt from RPR006 (documented implicitly or not API).
EXPORT_EXEMPTIONS: FrozenSet[str] = frozenset({"__version__"})

#: The doc that must mention every public export (RPR006).
API_DOC: str = "docs/architecture.md"


@dataclass(frozen=True)
class LintConfig:
    """One lint invocation's full policy (immutable, test-friendly)."""

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    scopes: Mapping[str, RuleScope] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    allowlist: Tuple[AllowlistEntry, ...] = DEFAULT_ALLOWLIST
    signature_modules: Tuple[str, ...] = SIGNATURE_MODULES
    public_modules: Tuple[str, ...] = PUBLIC_MODULES
    export_exemptions: FrozenSet[str] = EXPORT_EXEMPTIONS
    api_doc: str = API_DOC

    # ------------------------------------------------------------------
    def rule_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def scope_for(self, code: str) -> RuleScope:
        return self.scopes.get(code, RuleScope())

    def allowlisted(self, rule: str, rel_path: str) -> Optional[AllowlistEntry]:
        for entry in self.allowlist:
            if entry.covers(rule, rel_path):
                return entry
        return None

    def with_selection(
        self,
        select: Optional[Tuple[str, ...]] = None,
        ignore: Optional[Tuple[str, ...]] = None,
    ) -> "LintConfig":
        """A copy with the CLI's ``--select``/``--ignore`` applied."""
        updated = self
        if select:
            updated = replace(updated, select=frozenset(select))
        if ignore:
            updated = replace(
                updated, ignore=updated.ignore | frozenset(ignore)
            )
        return updated
