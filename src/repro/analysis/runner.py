"""Drive the rules over a file set; format and gate the findings.

The runner is what the CLI (``repro lint``) and the CI lint job call:

* expand the requested paths into repo-relative ``.py`` files,
* run every enabled, in-scope rule over the shared parse cache,
* resolve suppression (in-source pragmas, then the committed
  allowlist) per finding,
* render text or JSON, and exit nonzero iff any finding survived.

A file that does not parse yields a single ``RPR000`` finding at the
syntax error -- the linter never crashes on broken input.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .config import DEFAULT_PATHS, LintConfig
from .core import Finding, LintContext, ModuleCache, Severity
from .rules import ALL_RULES, RULES_BY_CODE, rule_catalog

__all__ = [
    "LintReport",
    "format_json",
    "format_text",
    "iter_python_files",
    "main",
    "run_lint",
]

SKIP_DIRS = {"__pycache__", ".git", ".cache", ".pytest_cache", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "clean": self.clean,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }


def iter_python_files(
    paths: Sequence[str], root: Path
) -> List[str]:
    """Repo-relative posix paths of every ``.py`` under ``paths``."""
    found = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            if path.suffix == ".py":
                found.add(_rel(path, root))
        elif path.is_dir():
            for file in path.rglob("*.py"):
                if any(part in SKIP_DIRS for part in file.parts):
                    continue
                found.add(_rel(file, root))
    return sorted(found)


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Run every enabled rule over ``paths`` and resolve suppression."""
    root = (root or Path.cwd()).resolve()
    config = config or LintConfig()
    rel_paths = iter_python_files(paths or DEFAULT_PATHS, root)
    cache = ModuleCache(root)
    context = LintContext(
        root=root, config=config, cache=cache, rel_paths=tuple(rel_paths)
    )
    rules = [
        rule_class()
        for rule_class in ALL_RULES
        if config.rule_enabled(rule_class.code)
    ]

    raw: List[Finding] = []
    for rel_path in rel_paths:
        try:
            module = cache.module(rel_path)
        except SyntaxError as error:
            raw.append(
                Finding(
                    rule="RPR000",
                    name="syntax-error",
                    severity=Severity.ERROR,
                    path=rel_path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        for rule in rules:
            if rule.project:
                continue
            if not config.scope_for(rule.code).applies(rel_path):
                continue
            raw.extend(rule.check(module, context))
    for rule in rules:
        if rule.project:
            raw.extend(rule.check_project(context))

    report = LintReport(
        root=str(root),
        files_checked=len(rel_paths),
        rules_run=tuple(rule.code for rule in rules),
    )
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.col, f.rule)):
        suppression = None
        try:
            module = cache.module(finding.path)
        except (OSError, SyntaxError):
            module = None
        if module is not None:
            pragma = module.suppression(finding.rule, finding.line)
            if pragma is not None:
                suppression = f"pragma (line {pragma.line}): {pragma.reason}"
        if suppression is None:
            entry = config.allowlisted(finding.rule, finding.path)
            if entry is not None:
                suppression = f"allowlist ({entry.path}): {entry.reason}"
        if suppression is not None:
            finding.suppressed_by = suppression
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def format_text(report: LintReport, show_suppressed: bool = False) -> str:
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule} [suppressed] "
                f"{finding.message} -- {finding.suppressed_by}"
            )
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} "
        f"({len(report.suppressed)} suppressed) across "
        f"{report.files_checked} files"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Entry point (wired into ``python -m repro lint``)
# ----------------------------------------------------------------------
def _split_codes(values: Optional[Sequence[str]]) -> Tuple[str, ...]:
    codes: List[str] = []
    for value in values or ():
        codes.extend(token.strip() for token in value.split(",") if token.strip())
    return tuple(codes)


def build_arg_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    parser = parser or argparse.ArgumentParser(
        prog="repro lint", description="doctrine static analysis"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE[,RULE]",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE[,RULE]",
        help="skip these rule codes (repeatable)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="additionally write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="list pragma/allowlist-suppressed findings too (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Shared implementation behind ``repro lint`` and ``main``."""
    if args.list_rules:
        print(rule_catalog())
        return 0
    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    unknown = [
        code for code in (*select, *ignore) if code not in RULES_BY_CODE
    ]
    if unknown:
        print(
            f"unknown rule code(s): {', '.join(sorted(set(unknown)))} "
            f"(known: {', '.join(sorted(RULES_BY_CODE))})",
            file=sys.stderr,
        )
        return 2
    config = LintConfig().with_selection(select=select or None, ignore=ignore)
    report = run_lint(paths=args.paths, config=config)
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report, show_suppressed=args.show_suppressed))
    if args.output:
        Path(args.output).write_text(format_json(report) + "\n")
    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(
        list(argv) if argv is not None else None
    )
    return run_from_args(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
