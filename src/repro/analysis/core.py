"""The rule-engine substrate: parsed modules, findings, suppression.

Everything a doctrine rule needs to run sits behind three small
abstractions:

* :class:`ParsedModule` -- one source file parsed exactly once: the
  AST, the raw lines, the ``# repro: lint-ignore[...]`` pragmas, and
  the line ranges of every ``def``/``class`` (so a pragma on a header
  line can suppress findings anywhere in that body).
* :class:`ModuleCache` -- the shared parse cache.  Eight rules walking
  the same tree must not pay eight parses; the runner hands every rule
  the same :class:`ParsedModule` instance.
* :class:`Rule` -- the plug-in contract.  Per-module rules implement
  :meth:`Rule.check`; repo-wide rules (the docs-sync rule) set
  ``project = True`` and implement :meth:`Rule.check_project`.

A finding is *suppressed* (not failed) when an in-source pragma with a
reason covers its line, or a committed allowlist entry covers its
(rule, path) pair -- see :mod:`repro.analysis.config`.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Finding",
    "LintContext",
    "ModuleCache",
    "ParsedModule",
    "Pragma",
    "Rule",
    "Severity",
]

#: ``# repro: lint-ignore[RPR002] -- host measurement``; the reason
#: after ``--`` is mandatory -- a pragma that does not say *why* does
#: not suppress anything (the allowlist must stay self-documenting).
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_,\s]+)\]\s*--\s*(\S.*?)\s*$"
)


class Severity(enum.Enum):
    """How hard a finding fails: both fail the run, only the color differs."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Pragma:
    """One in-source suppression: which rules, why, where."""

    rules: Tuple[str, ...]
    reason: str
    line: int

    def covers(self, rule: str) -> bool:
        return rule in self.rules


@dataclass
class Finding:
    """One doctrine violation at one source location."""

    rule: str
    name: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: Set by the runner when a pragma or allowlist entry absorbed the
    #: finding; ``None`` means the finding fails the run.
    suppressed_by: Optional[str] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed_by is not None:
            payload["suppressed_by"] = self.suppressed_by
        return payload


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, rel_path: str, text: str) -> None:
        self.rel_path = rel_path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text)
        self.pragmas: Dict[int, List[Pragma]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = tuple(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            self.pragmas.setdefault(number, []).append(
                Pragma(rules=rules, reason=match.group(2), line=number)
            )
        #: ``(first_line, last_line, header_line)`` for every def/class,
        #: so header-line pragmas suppress across the whole body.
        self.scopes: List[Tuple[int, int, int]] = []
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.scopes.append(
                    (node.lineno, node.end_lineno or node.lineno, node.lineno)
                )

    # ------------------------------------------------------------------
    # Suppression lookup
    # ------------------------------------------------------------------
    def suppression(self, rule: str, line: int) -> Optional[Pragma]:
        """The pragma covering ``rule`` at ``line``, if any.

        A pragma covers a finding when it sits on the finding's line,
        on the line directly above it, or on the header line of an
        enclosing ``def``/``class``.
        """
        for candidate in (line, line - 1):
            for pragma in self.pragmas.get(candidate, ()):  # pragma: no branch
                if pragma.covers(rule):
                    return pragma
        for start, end, header in self.scopes:
            if start <= line <= end:
                for pragma in self.pragmas.get(header, ()):
                    if pragma.covers(rule):
                        return pragma
        return None

    def context_comment(self, line: int, lookback: int = 3) -> str:
        """The source text of ``line`` and up to ``lookback`` lines above.

        Rules that accept a nearby explanatory comment as evidence (the
        batch-invariance rule) read this window instead of re-slicing.
        """
        start = max(0, line - 1 - lookback)
        return "\n".join(self.lines[start:line])


class ModuleCache:
    """Parse every file once, no matter how many rules visit it."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._modules: Dict[str, ParsedModule] = {}
        self._texts: Dict[str, str] = {}

    def module(self, rel_path: str) -> ParsedModule:
        """The parsed module for ``rel_path`` (raises ``SyntaxError``)."""
        if rel_path not in self._modules:
            self._modules[rel_path] = ParsedModule(
                rel_path, self.read_text(rel_path)
            )
        return self._modules[rel_path]

    def read_text(self, rel_path: str) -> str:
        """Raw text of any repo file (docs included), cached."""
        if rel_path not in self._texts:
            self._texts[rel_path] = (self.root / rel_path).read_text()
        return self._texts[rel_path]


@dataclass
class LintContext:
    """Everything a rule may consult beyond the module it is checking."""

    root: Path
    config: "LintConfig"  # noqa: F821 - import cycle kept lazy on purpose
    cache: ModuleCache
    #: The modules selected for this run, in deterministic order --
    #: project-wide rules iterate these instead of re-walking the tree.
    rel_paths: Tuple[str, ...] = field(default_factory=tuple)


class Rule:
    """Base class for one doctrine check.

    Subclasses set the class attributes and implement :meth:`check`
    (per module) or, with ``project = True``, :meth:`check_project`
    (once per run).
    """

    code: str = "RPR000"
    name: str = "unnamed-rule"
    severity: Severity = Severity.ERROR
    #: One sentence tying the rule to the repo doctrine it enforces;
    #: surfaced by ``repro lint --list-rules`` and docs/linting.md.
    doctrine: str = ""
    #: Project rules run once per lint invocation, not once per module.
    project: bool = False

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        return ()

    # ------------------------------------------------------------------
    # Helpers shared by concrete rules
    # ------------------------------------------------------------------
    def finding(
        self, module_path: str, node_or_line, message: str
    ) -> Finding:
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 0)
            col = getattr(node_or_line, "col_offset", 0)
        return Finding(
            rule=self.code,
            name=self.name,
            severity=self.severity,
            path=module_path,
            line=line,
            col=col,
            message=message,
        )
