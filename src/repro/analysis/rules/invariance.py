"""RPR004 -- bitwise batch-composition invariance of the eval path.

Doctrine (PR 2, relied on by cross-request pooling, the SLO admission
scorer, and priority reordering): row ``i`` of a batched eval-mode
forward must be *bitwise identical* to the standalone single-sample
call, no matter which other samples share the batch.  That holds only
when every GEMM prices samples independently (broadcast per-sample
matmuls, ``linear_rowwise``) and nothing reduces *across* the batch
axis.  A stacked ``(N, K) @ (K, M)`` GEMM lets BLAS pick blocking by
``N`` and silently breaks the pooling guarantee in the last ulps.

Scoped to the eval-path kernels (``nn/inference.py``,
``nn/functional.py``).  The rule is conservative: a GEMM counts as
per-sample only with structural evidence (a ``[:, None, :]``-style
broadcast expansion in an operand, an enclosing ``*rowwise*``
function) or an explanatory comment naming the idiom within three
lines (``per-sample`` / ``rowwise`` / ``batch-invariant``).
Hand-derived ``backward`` closures are training-path gradients and
are exempt; deliberate training-mode batch math carries a pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Optional

from ..core import Finding, LintContext, ParsedModule, Rule
from ._helpers import attribute_chain, walk_skipping_functions

__all__ = ["BatchInvariance"]

EVIDENCE_COMMENT = re.compile(
    r"per-?sample|row-?wise|batch-?invariant", re.IGNORECASE
)

#: numpy reductions that collapse an axis.
REDUCTIONS = frozenset(
    {"sum", "mean", "max", "min", "prod", "std", "var", "median", "average"}
)

GEMM_FUNCTIONS = frozenset({"matmul", "dot", "einsum", "tensordot", "inner"})


def _has_broadcast_expansion(node: ast.AST) -> bool:
    """Does the expression contain a ``[..., None, ...]`` subscript?"""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Subscript):
            continue
        index = sub.slice
        elements = index.elts if isinstance(index, ast.Tuple) else [index]
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is None:
                return True
    return False


def _enclosing_function(
    tree: ast.Module, line: int
) -> Optional[ast.FunctionDef]:
    best: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.lineno <= line <= (node.end_lineno or node.lineno):
                if best is None or node.lineno > best.lineno:
                    best = node
    return best


class BatchInvariance(Rule):
    code = "RPR004"
    name = "batch-invariance"
    doctrine = (
        "Eval-path GEMMs must be per-sample and nothing may reduce "
        "across the batch axis -- pooled evaluation is only "
        "result-identical because batching never changes a row."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        # Gradient closures are training-path math: exempt wholesale.
        for node in walk_skipping_functions(module.tree, {"backward"}):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                finding = self._check_gemm(
                    module, node, [node.left, node.right], "a @ b"
                )
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain:
                    terminal = chain[-1]
                elif isinstance(node.func, ast.Attribute):
                    # Method call on a computed receiver, e.g.
                    # ``(centered**2).mean(axis=...)``.
                    terminal = node.func.attr
                else:
                    terminal = ""
                if terminal in GEMM_FUNCTIONS:
                    finding = self._check_gemm(
                        module, node, list(node.args), f"{terminal}()"
                    )
                    if finding is not None:
                        yield finding
                elif terminal in REDUCTIONS:
                    finding = self._check_reduction(module, node, terminal)
                    if finding is not None:
                        yield finding

    # ------------------------------------------------------------------
    def _check_gemm(self, module, node, operands, label) -> Optional[Finding]:
        if any(_has_broadcast_expansion(operand) for operand in operands):
            return None  # explicit (1, K)-per-sample broadcast expansion
        enclosing = _enclosing_function(module.tree, node.lineno)
        if enclosing is not None and "rowwise" in enclosing.name:
            return None
        # Six lines of lookback so one comment can vouch for a small
        # group of GEMMs (the three-band convolution writes three).
        if EVIDENCE_COMMENT.search(module.context_comment(node.lineno, 6)):
            return None
        return self.finding(
            module.rel_path,
            node,
            f"{label} in the eval path has no per-sample evidence: a "
            "stacked-batch GEMM lets BLAS blocking depend on batch "
            "size and breaks bitwise batch-composition invariance "
            "(use the broadcast per-sample form, or document the "
            "idiom in a nearby comment)",
        )

    def _check_reduction(self, module, node, terminal) -> Optional[Finding]:
        axis = next(
            (kw.value for kw in node.keywords if kw.arg == "axis"), None
        )
        if axis is None:
            return None  # full reductions are loss-path territory
        constants = self._resolve_axis(module, node, axis)
        if constants is None or 0 not in constants:
            return None
        return self.finding(
            module.rel_path,
            node,
            f"{terminal}(axis=...) reduces across axis 0 (the batch "
            "axis) in the eval path: cross-sample reductions make a "
            "row depend on its batch neighbors",
        )

    def _resolve_axis(self, module, node, axis):
        """Literal axis values, following one local constant assignment."""
        if isinstance(axis, ast.Constant):
            return {axis.value}
        if isinstance(axis, ast.Tuple):
            values = set()
            for element in axis.elts:
                if not isinstance(element, ast.Constant):
                    return None
                values.add(element.value)
            return values
        if isinstance(axis, ast.Name):
            bindings = self._local_constants(module, node.lineno)
            return bindings.get(axis.id)
        return None

    def _local_constants(self, module, line) -> Dict[str, set]:
        """``name -> literal axis values`` for the enclosing function."""
        enclosing = _enclosing_function(module.tree, line)
        if enclosing is None:
            return {}
        bindings: Dict[str, set] = {}
        for node in ast.walk(enclosing):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Constant):
                bindings[target.id] = {value.value}
            elif isinstance(value, ast.Tuple) and all(
                isinstance(e, ast.Constant) for e in value.elts
            ):
                bindings[target.id] = {e.value for e in value.elts}
        return bindings
