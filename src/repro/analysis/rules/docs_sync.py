"""RPR006 -- every public export is documented in the API index.

Doctrine: ``docs/architecture.md`` carries the full public-API index
(its "Public API surface" rows); an export that ships undocumented is
API drift.  ``tests/test_docs.py`` checks this *dynamically* (it
imports ``repro`` and walks ``repro.__all__``); this rule is the
static half -- it reads the ``__all__`` literal straight from the
module source, so the check runs without importing the package (and
therefore also in the fast lint CI job, before the test matrix).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..core import Finding, LintContext, Rule

__all__ = ["ExportDocsSync"]


class ExportDocsSync(Rule):
    code = "RPR006"
    name = "export-docs-sync"
    doctrine = (
        "Every name in a public module's __all__ appears in the "
        "architecture doc's API rows; shipping an undocumented export "
        "is API drift."
    )
    project = True

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        exports = []
        for rel_path in context.config.public_modules:
            try:
                module = context.cache.module(rel_path)
            except (OSError, SyntaxError):
                continue  # unparseable modules fail elsewhere
            for name, line in self._exports(module.tree):
                if name not in context.config.export_exemptions:
                    exports.append((rel_path, name, line))
        if not exports:
            # No public module in this tree (fixture runs, partial
            # checkouts): nothing to hold the doc against.
            return
        try:
            corpus = context.cache.read_text(context.config.api_doc)
        except OSError:
            yield self.finding(
                context.config.api_doc,
                1,
                f"API doc {context.config.api_doc!r} is missing",
            )
            return
        for rel_path, name, line in exports:
            if not re.search(rf"\b{re.escape(name)}\b", corpus):
                yield self.finding(
                    rel_path,
                    line,
                    f"public export {name!r} is missing from "
                    f"{context.config.api_doc}'s API rows",
                )

    @staticmethod
    def _exports(tree: ast.Module):
        """``(name, line)`` per string literal in a top-level __all__."""
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                continue
            value = node.value
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        yield element.value, element.lineno
