"""RPR002 -- wall-clock reads confined to host-measurement sites.

Doctrine: simulated time and host time must never mix.  Decisions,
simulator results, and estimator predictions are pure functions of
their seeds; the only legitimate host-clock consumers are the
*measurement* sites -- ``measured_wall_time_s`` on responses, training
history, benchmark harness timers -- each individually annotated with
``# repro: lint-ignore[RPR002] -- <why this site measures the host>``
or allowlisted as a whole file in :mod:`repro.analysis.config`.  A
bare ``time.perf_counter()`` in ``core/``, ``sim/`` or the inference
hot path is how nondeterminism (and CI-box wall-clock flakiness)
creeps into decision paths.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, LintContext, ParsedModule, Rule
from ._helpers import from_imports, is_wallclock_call

__all__ = ["WallclockConfinement"]


class WallclockConfinement(Rule):
    code = "RPR002"
    name = "wallclock-confinement"
    doctrine = (
        "Host-clock reads are only legal at annotated measurement "
        "sites; decision paths must be pure functions of their seeds."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        time_names = from_imports(module.tree, "time")
        for node in ast.walk(module.tree):
            if is_wallclock_call(node, time_names):
                called = ast.unparse(node.func)
                yield self.finding(
                    module.rel_path,
                    node,
                    f"{called}() reads the host clock outside an "
                    "annotated measurement site; if this is genuine "
                    "host measurement, annotate it with "
                    "`# repro: lint-ignore[RPR002] -- <reason>`",
                )
