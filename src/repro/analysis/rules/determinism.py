"""RPR001 -- no unseeded randomness anywhere in the tree.

Doctrine: every schedule, trace, and training run must be replayable
from its seed.  The estimator-guided MCTS, the churn scenarios, and
the fleet's placement all advertise seeded determinism; a single
``np.random.rand()`` (the process-global legacy generator) or an
argument-less ``default_rng()`` (OS-entropy seeded) silently breaks
replay for everything downstream.  Seeded fallbacks like
``default_rng(0)`` are the sanctioned idiom.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, LintContext, ParsedModule, Rule
from ._helpers import attribute_chain, module_imports

__all__ = ["NoUnseededRng"]

#: The legacy process-global ``np.random`` API (non-exhaustive on
#: purpose: these are the calls that appear in numpy tutorials and
#: sneak into research code).
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "gamma",
    }
)

#: Stdlib ``random`` module-level functions (the hidden global Mersenne
#: Twister); ``random.Random(seed)`` instances are fine.
LEGACY_STDLIB_RANDOM = frozenset(
    {"seed", "random", "randint", "randrange", "choice", "choices", "shuffle", "uniform", "sample", "gauss"}
)


class NoUnseededRng(Rule):
    code = "RPR001"
    name = "no-unseeded-rng"
    doctrine = (
        "Seeded determinism: every RNG must be an explicitly seeded "
        "Generator; global numpy/stdlib RNG state and entropy-seeded "
        "default_rng() make schedules unreplayable."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        has_stdlib_random = "random" in module_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                # ``from numpy.random import default_rng`` style.
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        module.rel_path,
                        node,
                        "default_rng() without a seed draws from OS "
                        "entropy; pass an explicit seed",
                    )
                continue
            if chain[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    module.rel_path,
                    node,
                    "default_rng() without a seed draws from OS entropy; "
                    "pass an explicit seed",
                )
                continue
            if (
                len(chain) == 3
                and chain[0] in {"np", "numpy"}
                and chain[1] == "random"
                and chain[2] in LEGACY_NP_RANDOM
            ):
                yield self.finding(
                    module.rel_path,
                    node,
                    f"np.random.{chain[2]}() uses the process-global "
                    "legacy RNG; use an explicitly seeded "
                    "np.random.default_rng(seed) Generator",
                )
            elif (
                has_stdlib_random
                and len(chain) == 2
                and chain[0] == "random"
                and chain[1] in LEGACY_STDLIB_RANDOM
            ):
                yield self.finding(
                    module.rel_path,
                    node,
                    f"random.{chain[1]}() uses the hidden global Mersenne "
                    "Twister; use a seeded random.Random(seed) or numpy "
                    "Generator",
                )
