"""RPR009 -- silent fault swallowing in the serving path.

The resilience layer's whole contract is that degradation is *visible*:
every fault the ladder absorbs shows up in
:class:`~repro.core.scheduler.SchedulerStats` counters and on the
timeline.  An ``except`` block in a serving-path module that neither
re-raises nor records defeats that contract -- the fault vanishes and
the operator debugging a brownout sees a healthy service.

A handler is compliant when its body does any of:

* **re-raise** -- any ``raise`` statement (bare or typed);
* **record** -- a call to a ``record_*`` method (the ladder /
  attainment-tracker idiom);
* **count** -- an assignment or augmented assignment to an attribute
  whose name mentions ``stats``, ``count``, ``fault`` or ``fallback``
  (``self._stats.faults_detected += 1``,
  ``self.greedy_fallbacks += 1``);
* **pragma** -- ``# repro: lint-ignore[RPR009] -- reason`` when the
  swallow is genuinely the point (e.g. dropping a torn journal tail
  *is* the crash recovery).

``except StopIteration`` handlers are exempt: they are the generator
protocol's return channel, not error handling.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, LintContext, ParsedModule, Rule

__all__ = ["ServingPathFaultVisibility"]

#: Attribute-name fragments that mark a handler body as *counting* the
#: swallowed fault into a stats surface.
COUNTER_FRAGMENTS = ("stats", "count", "fault", "fallback")


class ServingPathFaultVisibility(Rule):
    code = "RPR009"
    name = "serving-path-fault-visibility"
    doctrine = (
        "A serving-path except block must re-raise, record, or count "
        "the fault it catches -- silent swallows turn brownouts into "
        "invisible healthy-looking service."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._catches_stop_iteration(node):
                continue
            if self._is_visible(node):
                continue
            caught = self._caught_names(node)
            yield self.finding(
                module.rel_path,
                node,
                f"except {caught} swallows the fault silently; re-raise, "
                "call a record_* hook, or bump a stats/fault counter "
                "(or pragma-annotate why the swallow is the point)",
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _caught_names(handler: ast.ExceptHandler) -> str:
        if handler.type is None:
            return "(bare)"
        return ast.unparse(handler.type)

    @staticmethod
    def _catches_stop_iteration(handler: ast.ExceptHandler) -> bool:
        """Generator-protocol handlers are flow control, not faults."""
        kind = handler.type
        names: Iterable[ast.expr]
        if kind is None:
            return False
        names = kind.elts if isinstance(kind, ast.Tuple) else (kind,)
        return any(
            isinstance(name, ast.Name) and name.id == "StopIteration"
            for name in names
        )

    @classmethod
    def _is_visible(cls, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr.startswith("record_")
            ):
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and any(
                        fragment in target.attr.lower()
                        for fragment in COUNTER_FRAGMENTS
                    ):
                        return True
        return False
