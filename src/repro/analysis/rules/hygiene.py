"""RPR007/RPR008 -- generic hygiene rules with doctrine teeth.

* RPR007 *mutable-default-args*: a mutable default evaluates once at
  import; state then leaks across calls.  In a serving stack where
  engines and services are long-lived singletons, a shared default
  list is a cross-request leak, not a style nit.
* RPR008 *bare-except*: ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and buries real failures as silent fallbacks -- the
  opposite of the "fail loudly, never guess" contract the simulator
  and schedulers follow.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, LintContext, ParsedModule, Rule

__all__ = ["BareExcept", "MutableDefaultArgs"]

MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


class MutableDefaultArgs(Rule):
    code = "RPR007"
    name = "mutable-default-args"
    doctrine = (
        "A mutable default is shared across every call of a long-lived "
        "service object -- cross-request state leaks hide there."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module.rel_path,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "default to None and construct inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in MUTABLE_CONSTRUCTORS
            and not node.args
            and not node.keywords
        )


class BareExcept(Rule):
    code = "RPR008"
    name = "bare-except"
    doctrine = (
        "except: catches KeyboardInterrupt/SystemExit and converts "
        "real failures into silent fallbacks; name the exception."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module.rel_path,
                    node,
                    "bare except: swallows interrupts and hides real "
                    "failures; catch a named exception type",
                )
