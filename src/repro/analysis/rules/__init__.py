"""The rule registry: one place that knows every doctrine rule.

Adding a rule is three steps (docs/linting.md walks through them):
implement a :class:`~repro.analysis.core.Rule` subclass in a module
here, append it to :data:`ALL_RULES`, and add a fixture test in
``tests/test_analysis_rules.py`` proving it fires and stays quiet.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..core import Rule
from .bounded import BoundedServingCaches
from .caching import CanonicalCacheKeys
from .determinism import NoUnseededRng
from .docs_sync import ExportDocsSync
from .gates import CountBasedPerfGates
from .hygiene import BareExcept, MutableDefaultArgs
from .invariance import BatchInvariance
from .serving import ServingPathFaultVisibility
from .wallclock import WallclockConfinement

__all__ = ["ALL_RULES", "RULES_BY_CODE", "rule_catalog"]

ALL_RULES: Tuple[Type[Rule], ...] = (
    NoUnseededRng,
    WallclockConfinement,
    CountBasedPerfGates,
    BatchInvariance,
    CanonicalCacheKeys,
    ExportDocsSync,
    MutableDefaultArgs,
    BareExcept,
    ServingPathFaultVisibility,
    BoundedServingCaches,
)

RULES_BY_CODE: Dict[str, Type[Rule]] = {rule.code: rule for rule in ALL_RULES}


def rule_catalog() -> str:
    """A text table of every rule (``repro lint --list-rules``)."""
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"        {rule.doctrine}")
    return "\n".join(lines)
