"""Small AST predicates shared by several doctrine rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

#: ``time``-module readers of the host clock.
WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``np.random.default_rng`` -> ``("np", "random", "default_rng")``.

    ``None`` when the expression is not a plain dotted-name chain.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def module_imports(tree: ast.Module) -> Set[str]:
    """Top-level ``import X`` module names (first dotted component)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name.split(".")[0])
    return names


def from_imports(tree: ast.Module, module: str) -> Set[str]:
    """Names pulled in with ``from <module> import ...`` at top level."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def is_wallclock_call(node: ast.AST, time_from_imports: Set[str]) -> bool:
    """Does ``node`` read the host clock (``time.*`` or ``datetime.now``)?"""
    if not isinstance(node, ast.Call):
        return False
    chain = attribute_chain(node.func)
    if chain is not None:
        if len(chain) == 2 and chain[0] == "time" and chain[1] in WALLCLOCK_TIME_ATTRS:
            return True
        if chain[-1] in {"now", "utcnow"} and "datetime" in chain:
            return True
    if isinstance(node.func, ast.Name) and node.func.id in time_from_imports:
        return node.func.id in WALLCLOCK_TIME_ATTRS
    return False


def walk_skipping_functions(
    node: ast.AST, skip_names: Set[str]
) -> Iterator[ast.AST]:
    """``ast.walk`` that prunes function bodies named in ``skip_names``.

    Used to exempt hand-derived ``backward`` closures (training-path
    gradients) from eval-path invariance checks.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name in skip_names
            ):
                continue
            stack.append(child)


def names_in(node: ast.AST) -> Set[str]:
    """Every bare ``Name`` referenced anywhere under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
