"""RPR005 -- caches keyed on mixes go through the canonical helper.

Doctrine (PR 2's decision cache, PR 6's admission scorer): a workload
mix's identity is order-free -- ``a+b`` and ``b+a`` are the same mix
-- and every cache keyed on one must agree on that.  The single
sanctioned spelling is :func:`repro.workloads.canonical_signature`;
inline ``tuple(sorted(...))`` re-derivations drift (one call site
forgetting the sort once cost a duplicated search), and ``id()``-keyed
caches are wrong twice over (identity is neither stable across runs
nor shared by equal mixes).

Two checks:

* in the serving-stack modules (see
  :data:`repro.analysis.config.SIGNATURE_MODULES`), any inline
  ``tuple(sorted(...))`` is a hand-rolled mix signature;
* anywhere in ``src/``, subscripting / ``.get()``-ing a
  ``*cache*``-named container with an ``id(...)`` or inline
  ``tuple(...)`` key.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Finding, LintContext, ParsedModule, Rule
from ._helpers import attribute_chain

__all__ = ["CanonicalCacheKeys"]


def _is_tuple_sorted(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "tuple"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Call)
        and isinstance(node.args[0].func, ast.Name)
        and node.args[0].func.id == "sorted"
    )


def _terminal_name(node: ast.AST) -> Optional[str]:
    chain = attribute_chain(node)
    return chain[-1] if chain else None


def _raw_key_kind(key: ast.AST) -> Optional[str]:
    """'id()' / 'tuple(...)' when the key expression is a raw key."""
    if isinstance(key, ast.Call):
        if isinstance(key.func, ast.Name) and key.func.id == "id":
            return "id()"
        if isinstance(key.func, ast.Name) and key.func.id == "tuple":
            return "an inline tuple(...)"
    return None


class CanonicalCacheKeys(Rule):
    code = "RPR005"
    name = "canonical-cache-keys"
    doctrine = (
        "Mix/request cache keys are built by canonical_signature(); "
        "inline tuple(sorted(...)) re-derivations drift and id() keys "
        "are unstable."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        in_signature_module = any(
            module.rel_path.startswith(prefix)
            for prefix in context.config.signature_modules
        )
        for node in ast.walk(module.tree):
            if in_signature_module and _is_tuple_sorted(node):
                yield self.finding(
                    module.rel_path,
                    node,
                    "inline tuple(sorted(...)) builds a mix signature "
                    "by hand; use repro.workloads.canonical_signature()",
                )
            elif isinstance(node, ast.Subscript):
                container = _terminal_name(node.value)
                if container is None or "cache" not in container.lower():
                    continue
                kind = _raw_key_kind(node.slice)
                if kind is not None:
                    yield self.finding(
                        module.rel_path,
                        node,
                        f"cache {container!r} keyed on {kind}; key it "
                        "on a canonical signature instead",
                    )
            elif isinstance(node, ast.Call):
                # cache.get(id(x)) / cache.setdefault(tuple(...), ...)
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in {"get", "setdefault", "pop"}:
                    continue
                container = _terminal_name(node.func.value)
                if container is None or "cache" not in container.lower():
                    continue
                if node.args:
                    kind = _raw_key_kind(node.args[0])
                    if kind is not None:
                        yield self.finding(
                            module.rel_path,
                            node,
                            f"cache {container!r} keyed on {kind}; key "
                            "it on a canonical signature instead",
                        )
