"""RPR003 -- perf gates must compare counts, not wall-clock ratios.

Doctrine (ROADMAP, single-core-CI rule): acceptance gates in
``benchmarks/`` compare *estimator forward counts* -- deterministic,
machine-independent -- never wall-time-derived quantities.  A shared
CI runner under load can halve any wall-clock speedup; a forward-count
ratio is identical everywhere.  Timing ``print()``s stay welcome as
informational output; it is the ``assert`` that must be count-based.

Detection is a per-function taint pass: names that *are* wall-time by
convention (``*_s``, ``*_secs``, ``elapsed*``, ``wall*``, ...) or are
assigned from a host-clock read (or from a ``_timed``-style helper)
seed the taint set; assignments whose right-hand side mentions a
tainted name propagate it.  Any ``assert`` whose expression references
a tainted name is a finding.  Benchmarks whose *subject* is wall time
(the compiled-inference speedup gates) annotate their asserts with
``# repro: lint-ignore[RPR003] -- <why wall time is the subject>``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Set

from ..core import Finding, LintContext, ParsedModule, Rule
from ._helpers import from_imports, is_wallclock_call, names_in

__all__ = ["CountBasedPerfGates"]

#: Names that denote a wall-clock quantity by repo convention.
WALLTIME_NAME = re.compile(
    r"(^|_)(wall|elapsed|duration)(_|$)|_(s|secs|seconds|ms|ns)$"
)

#: Helpers that return host-clock measurements.  Deliberately exact:
#: ``_timed`` / ``timed`` wrapper idioms only.  Looser suffix matching
#: would drag in deterministic *modeled* costs (``decision_time()`` in
#: the runtime cost model), which are legitimate gate inputs.
TIMED_HELPER = re.compile(r"^_?timed$")


def _is_timed_helper_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    return bool(TIMED_HELPER.search(name))


class CountBasedPerfGates(Rule):
    code = "RPR003"
    name = "count-based-perf-gates"
    doctrine = (
        "Benchmark acceptance gates compare estimator forward counts, "
        "never wall-time ratios -- CI wall clocks are not reproducible."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        time_names = from_imports(module.tree, "time")
        # Nested defs are walked as their own scope AND as part of the
        # enclosing one (a closure sees the outer taint), so an assert
        # can surface twice -- report each site once.
        seen = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for finding in self._check_function(module, node, time_names):
                    site = (finding.line, finding.col)
                    if site not in seen:
                        seen.add(site)
                        yield finding

    # ------------------------------------------------------------------
    def _check_function(
        self,
        module: ParsedModule,
        function: ast.AST,
        time_names: Set[str],
    ) -> Iterable[Finding]:
        tainted = self._tainted_names(function, time_names)
        for node in ast.walk(function):
            if not isinstance(node, ast.Assert):
                continue
            used = names_in(node.test)
            wall = sorted(
                name
                for name in used
                if name in tainted or WALLTIME_NAME.search(name)
            )
            if wall:
                yield self.finding(
                    module.rel_path,
                    node,
                    "assert gates on wall-time-derived value(s) "
                    f"{', '.join(wall)}; gate on estimator forward "
                    "counts instead (print timings informationally)",
                )

    def _tainted_names(
        self, function: ast.AST, time_names: Set[str]
    ) -> Set[str]:
        """Names carrying wall-time within ``function`` (fixpoint)."""

        def rhs_tainted(value: ast.AST, tainted: Set[str]) -> bool:
            for sub in ast.walk(value):
                if is_wallclock_call(sub, time_names):
                    return True
                if _is_timed_helper_call(sub):
                    return True
                if isinstance(sub, ast.Name) and (
                    sub.id in tainted or WALLTIME_NAME.search(sub.id)
                ):
                    return True
            return False

        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(function):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                    value = node.value
                    if value is None:
                        continue
                elif isinstance(node, ast.NamedExpr):
                    targets, value = [node.target], node.value
                else:
                    continue
                if not rhs_tainted(value, tainted):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id not in tainted:
                            tainted.add(target.id)
                            changed = True
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        # A tuple unpack of a measurement helper taints
                        # only the elements *named* like wall time --
                        # `elapsed_s, result = _timed(...)` must not
                        # taint `result`.
                        for element in target.elts:
                            if (
                                isinstance(element, ast.Name)
                                and WALLTIME_NAME.search(element.id)
                                and element.id not in tainted
                            ):
                                tainted.add(element.id)
                                changed = True
        return tainted
