"""RPR010 -- serving-path caches must be bounded.

Doctrine (PR 10's sharded decision cache): a cache on the request
path is a memory leak with good intentions.  The engine's original
decision cache was a bare dict -- every distinct mix ever served
stayed resident forever, which is exactly wrong for a long-lived
service ingesting an open-ended request stream.  The sanctioned
container is :class:`repro.frontdoor.ShardedDecisionCache`: per-shard
LRU with a capacity, eviction counters surfaced in ``ServiceStats``,
and an optional persistence layer keyed on the estimator version.

The check: in the serving-stack modules (engine, service, SLO, fleet,
front door), assigning a raw ``{}`` / ``dict()`` / ``[]`` / ``list()``
/ ``OrderedDict()`` / ``defaultdict(...)`` to a ``*cache*``-named
attribute or variable is an unbounded cache by construction.  The one
legitimate holder of raw dicts is the bounded cache's own
implementation (``frontdoor/cache.py``), which is allowlisted -- its
shards evict.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Finding, LintContext, ParsedModule, Rule
from ._helpers import attribute_chain

__all__ = ["BoundedServingCaches"]

_UNBOUNDED_CTORS = {"dict", "list", "OrderedDict", "defaultdict"}


def _unbounded_kind(value: ast.AST) -> Optional[str]:
    """'a dict literal' / 'list()' / ... when ``value`` is unbounded."""
    if isinstance(value, ast.Dict):
        return "a dict literal"
    if isinstance(value, ast.List):
        return "a list literal"
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _UNBOUNDED_CTORS:
            return f"{name}()"
    return None


def _cache_target_name(target: ast.AST) -> Optional[str]:
    chain = attribute_chain(target)
    if not chain:
        return None
    terminal = chain[-1]
    return terminal if "cache" in terminal.lower() else None


class BoundedServingCaches(Rule):
    code = "RPR010"
    name = "bounded-serving-caches"
    doctrine = (
        "Serving-path modules may not hold unbounded dict/list caches; "
        "use the bounded ShardedDecisionCache (LRU shards, eviction "
        "counters, versioned persistence)."
    )

    def check(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            kind = _unbounded_kind(value)
            if kind is None:
                continue
            for target in targets:
                name = _cache_target_name(target)
                if name is None:
                    continue
                yield self.finding(
                    module.rel_path,
                    node,
                    f"{kind} assigned to cache-named {name!r} grows "
                    "without bound on the request path; use "
                    "repro.frontdoor.ShardedDecisionCache (or bound "
                    "and count evictions)",
                )
