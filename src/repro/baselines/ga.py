"""Genetic-algorithm scheduler (the comparison method of paper [2]).

Kang et al. schedule multi-DNN workloads onto heterogeneous processors
with a genetic algorithm whose fitness comes from a *static* cost
model built on profiled per-layer execution times.  The OmniBoost paper
calls out the consequences, and this implementation preserves them:

* the fitness model knows first-order physics (per-layer latencies,
  transfer costs, fair device sharing) but none of the second-order
  contention effects a live board exhibits (concurrency overhead,
  working-set thrash, residency pressure) -- "static performance
  estimators [are] obsolete" on such systems;
* evolution re-runs from scratch for every queried workload ("the GA
  needs retraining for every new queried workload"), costing minutes
  of on-device compute per mix (Section V-B reports ~5 minutes); the
  decision cost records ``fitness_evaluations`` for that accounting;
* mutation/crossover shatter mappings into redundant pipeline stages,
  so -- as the OmniBoost authors note they had to add -- an
  *optimization layer* heuristically merges stages after every
  operator application.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import ScheduleDecision, Scheduler
from ..hw.platform_ import Platform
from ..sim.mapping import Mapping
from ..sim.profiler import LatencyTable
from ..workloads.generator import random_contiguous_mapping
from ..workloads.mix import Workload

__all__ = ["GAConfig", "GeneticScheduler", "StaticCostModel", "merge_redundant_stages"]


def merge_redundant_stages(row: Sequence[int], max_stages: int) -> List[int]:
    """The GA's optimization layer: cap pipeline stages by merging.

    Repeatedly absorbs the shortest stage into its larger neighbour
    until the row has at most ``max_stages`` contiguous runs.  Layer
    counts stand in for stage weight -- the heuristic needs no
    profiling data, matching its description as a post-hoc repair.
    """
    if max_stages < 1:
        raise ValueError(f"max_stages must be >= 1, got {max_stages}")
    devices: List[int] = []
    lengths: List[int] = []
    for device in row:
        if devices and devices[-1] == device:
            lengths[-1] += 1
        else:
            devices.append(int(device))
            lengths.append(1)
    while len(devices) > max_stages:
        shortest = min(range(len(devices)), key=lambda i: (lengths[i], i))
        if shortest == 0:
            absorb = 1
        elif shortest == len(devices) - 1:
            absorb = shortest - 1
        else:
            absorb = (
                shortest - 1
                if lengths[shortest - 1] >= lengths[shortest + 1]
                else shortest + 1
            )
        lengths[absorb] += lengths[shortest]
        del devices[shortest], lengths[shortest]
        # Merging may create adjacent equal devices; collapse them.
        index = 1
        while index < len(devices):
            if devices[index] == devices[index - 1]:
                lengths[index - 1] += lengths[index]
                del devices[index], lengths[index]
            else:
                index += 1
    expanded: List[int] = []
    for device, length in zip(devices, lengths):
        expanded.extend([device] * length)
    return expanded


class StaticCostModel:
    """Kang-style static throughput model over profiled latencies.

    Prices a mapping the way a static scheduling table does: a stage
    costs the sum of its profiled layer latencies plus the inbound link
    transfer, and a device serving ``k`` networks time-slices them, so
    every stage on it takes ``k`` times longer end to end.  A DNN's
    estimated rate is the reciprocal of its serialized end-to-end
    latency, capped by the offered frame rate.

    This is deliberately cruder than the board's real behaviour: it
    over-penalizes sharing fast devices (no slack redistribution when a
    co-resident network is idle or demand-capped) and knows nothing of
    working-set thrash or residency pressure.  That model bias -- the
    OmniBoost paper's criticism of static performance estimators -- is
    exactly what separates the GA's belief from the measured outcome.
    """

    def __init__(
        self,
        platform: Platform,
        latency_table: LatencyTable,
        offered_rate: float = 5.0,
    ) -> None:
        if offered_rate <= 0:
            raise ValueError(f"offered_rate must be positive, got {offered_rate}")
        self.platform = platform
        self.latency_table = latency_table
        # The application's frame rate: a demand bound every scheduler
        # knows (there is no value in over-serving a 5 FPS camera).
        self.offered_rate = offered_rate

    def estimate(self, workload: Workload, mapping: Mapping) -> float:
        """Estimated mix-average throughput of a mapping."""
        num_devices = self.platform.num_devices
        # First pass: price each stage (compute + inbound transfer).
        stage_times: List[List[Tuple[int, float]]] = []  # per DNN: (device, s)
        for dnn_index, model in enumerate(workload.models):
            if model.name not in self.latency_table.tables:
                raise KeyError(
                    f"model {model.name!r} has no profiled latencies; "
                    "profile it before scheduling"
                )
            table = self.latency_table.tables[model.name]
            previous_device = -1
            priced: List[Tuple[int, float]] = []
            for stage in mapping.stages(dnn_index):
                stage_time = float(
                    table[stage.device_id, stage.start : stage.end].sum()
                )
                if previous_device >= 0:
                    handoff = model.layers[stage.start - 1].output_bytes
                    stage_time += self.platform.transfer_time(
                        previous_device, stage.device_id, handoff
                    )
                priced.append((stage.device_id, stage_time))
                previous_device = stage.device_id
            stage_times.append(priced)

        # Static time-slicing: k networks on a device stretch every
        # stage on it by k.
        sharers = np.zeros(num_devices, dtype=int)
        for priced in stage_times:
            for device_id in {device for device, _ in priced}:
                sharers[device_id] += 1

        rates = []
        for priced in stage_times:
            latency = sum(
                stage_time * max(1, sharers[device_id])
                for device_id, stage_time in priced
            )
            rates.append(min(1.0 / latency, self.offered_rate))
        return float(np.mean(rates))

    def estimate_batch(
        self, workload: Workload, mappings: Sequence[Mapping]
    ) -> np.ndarray:
        """Vectorized :meth:`estimate` over a population of mappings.

        The static model prices stages with per-mapping Python (stage
        boundaries differ per chromosome), so this is an evaluation
        *surface* rather than a numpy kernel -- it exists so callers
        (the GA's generation loop, the ablation benches) talk to both
        cost models through the same batched shape as the estimator's
        :meth:`~repro.estimator.model.ThroughputEstimator.reward_batch`.
        """
        return np.array(
            [self.estimate(workload, mapping) for mapping in mappings]
        )


class GAConfig:
    """Evolution hyper-parameters.

    Defaults give 24 x 25 = 600 fitness evaluations per workload, the
    scale at which the real system spends its ~5 minutes per mix.
    """

    def __init__(
        self,
        population_size: int = 24,
        generations: int = 25,
        tournament_size: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.08,
        elite_count: int = 2,
        seed: int = 0,
    ) -> None:
        if population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {population_size}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not 2 <= tournament_size <= population_size:
            raise ValueError(
                f"tournament_size must be in [2, {population_size}], "
                f"got {tournament_size}"
            )
        if not 0 <= crossover_rate <= 1:
            raise ValueError(f"crossover_rate must be in [0, 1], got {crossover_rate}")
        if not 0 <= mutation_rate <= 1:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if not 0 <= elite_count < population_size:
            raise ValueError(
                f"elite_count must be in [0, {population_size}), got {elite_count}"
            )
        self.population_size = population_size
        self.generations = generations
        self.tournament_size = tournament_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.elite_count = elite_count
        self.seed = seed


class GeneticScheduler(Scheduler):
    """Evolves mappings against the static profiled-latency cost model."""

    name = "GA"

    def __init__(
        self,
        cost_model: StaticCostModel,
        config: Optional[GAConfig] = None,
        merge_stages: bool = True,
        stage_cap: Optional[int] = None,
        cache_fitness: bool = False,
    ) -> None:
        self.cost_model = cost_model
        self.config = config or GAConfig()
        self.merge_stages = merge_stages
        self.stage_cap = (
            stage_cap
            if stage_cap is not None
            else cost_model.platform.num_devices
        )
        # Memoize fitness per chromosome within one decision.  Off by
        # default: the paper's run-time accounting (~5 minutes of board
        # time per mix) assumes the real GA re-measures every member --
        # elites included -- each generation, and ``fitness_evaluations``
        # must reflect that cost.  Turning it on skips re-pricing
        # duplicate chromosomes (elites survive every generation) and
        # counts only the distinct evaluations actually performed.
        self.cache_fitness = cache_fitness
        self.fitness_evaluations = 0

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, workload: Workload) -> ScheduleDecision:
        config = self.config
        rng = np.random.default_rng(config.seed)
        num_devices = self.cost_model.platform.num_devices
        evaluations_before = self.fitness_evaluations

        fitness_cache: dict = {}
        population = [
            self._repair(
                random_contiguous_mapping(workload.models, num_devices, rng)
            )
            for _ in range(config.population_size)
        ]
        fitnesses = self._fitness_population(workload, population, fitness_cache)

        for _ in range(config.generations - 1):
            ranked = sorted(
                zip(fitnesses, range(len(population))), key=lambda x: -x[0]
            )
            next_population: List[Mapping] = [
                population[index] for _, index in ranked[: config.elite_count]
            ]
            while len(next_population) < config.population_size:
                parent_a = self._tournament(population, fitnesses, rng)
                parent_b = self._tournament(population, fitnesses, rng)
                if rng.random() < config.crossover_rate:
                    child = self._crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                child = self._mutate(child, num_devices, rng)
                next_population.append(self._repair(child))
            population = next_population
            fitnesses = self._fitness_population(
                workload, population, fitness_cache
            )

        best_index = int(np.argmax(fitnesses))
        return ScheduleDecision(
            mapping=population[best_index],
            expected_score=float(fitnesses[best_index]),
            wall_time_s=0.0,
            cost={
                "fitness_evaluations": float(
                    self.fitness_evaluations - evaluations_before
                ),
                "generations": float(config.generations),
                "population_size": float(config.population_size),
            },
        )

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _fitness_population(
        self,
        workload: Workload,
        population: List[Mapping],
        fitness_cache: dict,
    ) -> List[float]:
        """One generation's fitness sweep through the batched surface.

        Without the cache this prices every member (the paper's
        accounting); with ``cache_fitness`` only chromosomes not seen
        this decision hit the cost model.
        """
        if not self.cache_fitness:
            self.fitness_evaluations += len(population)
            return [
                float(value)
                for value in self.cost_model.estimate_batch(
                    workload, population
                )
            ]
        fresh = []
        for member in population:
            if member not in fitness_cache and member not in fresh:
                fresh.append(member)
        if fresh:
            self.fitness_evaluations += len(fresh)
            values = self.cost_model.estimate_batch(workload, fresh)
            fitness_cache.update(zip(fresh, values))
        return [float(fitness_cache[member]) for member in population]

    def _tournament(
        self,
        population: List[Mapping],
        fitnesses: List[float],
        rng: np.random.Generator,
    ) -> Mapping:
        size = min(len(population), self.config.tournament_size)
        picks = rng.choice(len(population), size=size, replace=False)
        winner = max(picks, key=lambda index: fitnesses[int(index)])
        return population[int(winner)]

    @staticmethod
    def _crossover(
        parent_a: Mapping, parent_b: Mapping, rng: np.random.Generator
    ) -> Mapping:
        """One-point crossover independently within each DNN's row."""
        rows: List[List[int]] = []
        for row_a, row_b in zip(parent_a.assignments, parent_b.assignments):
            if len(row_a) < 2:
                rows.append(list(row_a if rng.random() < 0.5 else row_b))
                continue
            point = int(rng.integers(1, len(row_a)))
            rows.append(list(row_a[:point]) + list(row_b[point:]))
        return Mapping(rows)

    def _mutate(
        self, mapping: Mapping, num_devices: int, rng: np.random.Generator
    ) -> Mapping:
        """Per-gene random device reassignment.

        This is the operator the paper observes can *damage* elite
        chromosomes by introducing fresh pipeline stages -- the repair
        layer cleans up after it.
        """
        rows: List[List[int]] = []
        for row in mapping.assignments:
            genes = list(row)
            for index in range(len(genes)):
                if rng.random() < self.config.mutation_rate:
                    genes[index] = int(rng.integers(num_devices))
            rows.append(genes)
        return Mapping(rows)

    def _repair(self, mapping: Mapping) -> Mapping:
        """Apply the stage-merging optimization layer (when enabled)."""
        if not self.merge_stages:
            return mapping
        return Mapping(
            [
                merge_redundant_stages(row, self.stage_cap)
                for row in mapping.assignments
            ]
        )
