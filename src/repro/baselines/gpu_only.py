"""The common scheduling approach: map every DNN onto the GPU.

This is the paper's normalization baseline -- "the case in which all
the layers of the DNNs are executed on the GPU", i.e. what every
mobile deep-learning stack does when told to use the accelerator.  It
has zero decision overhead and no awareness of contention, which is
exactly why heavy mixes collapse on it.
"""

from __future__ import annotations

from ..core.base import ScheduleDecision, Scheduler
from ..hw.platform_ import Platform
from ..sim.mapping import Mapping
from ..workloads.mix import Workload

__all__ = ["GpuOnlyScheduler", "SingleDeviceScheduler"]


class SingleDeviceScheduler(Scheduler):
    """Maps every layer of every DNN onto one fixed device."""

    def __init__(self, device_id: int, name: str = "") -> None:
        if device_id < 0:
            raise ValueError(f"device_id must be non-negative, got {device_id}")
        self.device_id = device_id
        if name:
            self.name = name
        else:
            self.name = f"device-{device_id}"

    def _decide(self, workload: Workload) -> ScheduleDecision:
        mapping = Mapping.single_device(workload.models, self.device_id)
        return ScheduleDecision(
            mapping=mapping,
            expected_score=0.0,
            wall_time_s=0.0,
            cost={},  # no queries, no training: the zero-overhead baseline
        )


class GpuOnlyScheduler(SingleDeviceScheduler):
    """All layers on the platform's GPU (the paper's baseline)."""

    name = "Baseline"

    def __init__(self, platform: Platform) -> None:
        gpus = platform.devices_of_kind("gpu")
        if gpus:
            device_id = gpus[0].device_id
        else:
            # Fall back to the arithmetically strongest device so the
            # baseline stays meaningful on GPU-less platforms.
            device_id = max(
                platform.devices, key=lambda device: device.peak_gflops
            ).device_id
        super().__init__(device_id, name="Baseline")
