"""Comparison schedulers: GPU-only baseline, MOSAIC and the GA."""

from .ga import GAConfig, GeneticScheduler, StaticCostModel, merge_redundant_stages
from .gpu_only import GpuOnlyScheduler, SingleDeviceScheduler
from .mosaic import LayerLatencyRegression, MosaicScheduler

__all__ = [
    "GAConfig",
    "GeneticScheduler",
    "StaticCostModel",
    "GpuOnlyScheduler",
    "LayerLatencyRegression",
    "MosaicScheduler",
    "SingleDeviceScheduler",
    "merge_redundant_stages",
]
