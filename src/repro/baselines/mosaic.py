"""MOSAIC-style baseline: linear-regression latency model + slicing.

Reimplements the comparison scheduler of paper [19] (Han et al.,
PACT 2019) as the OmniBoost paper uses it: a linear regression model
maps layer dimensions to per-device execution time, and each DNN is
sliced into pipeline stages that maximize its *own* predicted pipeline
throughput, communication costs included.

Its two structural weaknesses -- the linearity assumption over layer
dimensions and per-DNN-independent decisions (no awareness of what the
other networks in the mix are doing) -- are preserved deliberately,
because they are what the paper's evaluation exposes: MOSAIC beats the
GPU-only baseline on light mixes but overloads the GPU alongside it on
heavy ones (Fig. 5b) and falls 2.7% behind it at five DNNs (Fig. 5c).

The regression is trained on kernel-profiled data points; the paper
notes MOSAIC needs "more than 14,000 data points", which a profiling
campaign with repetitions reproduces here (see ``training_points``).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import ScheduleDecision, Scheduler
from ..hw.platform_ import Platform
from ..models.graph import ModelGraph
from ..models.layer import LayerSpec
from ..sim.mapping import Mapping
from ..sim.profiler import KernelProfiler
from ..workloads.mix import Workload

__all__ = ["LayerLatencyRegression", "MosaicScheduler"]


def _layer_features(layer: LayerSpec) -> np.ndarray:
    """The dimension features MOSAIC regresses on.

    Linear in FLOPs, memory traffic, activation sizes and kernel count
    -- the "execution time is linearly correlated to the dimensions of
    input matrices" assumption the OmniBoost paper criticizes.
    """
    return np.array(
        [
            layer.flops / 1e9,
            layer.bytes_moved / 1e9,
            layer.input_shape.nbytes / 1e6,
            layer.output_shape.nbytes / 1e6,
            float(layer.num_kernels),
            1.0,  # intercept
        ]
    )


class LayerLatencyRegression:
    """Per-device least-squares latency predictors."""

    def __init__(self, num_devices: int) -> None:
        self.num_devices = num_devices
        self.coefficients: Optional[np.ndarray] = None  # (devices, features)
        self.training_points = 0

    def fit(
        self,
        models: Sequence[ModelGraph],
        profiler: KernelProfiler,
        repetitions: int = 20,
        seed: int = 0,
    ) -> "LayerLatencyRegression":
        """Fit on repeated noisy profiling campaigns.

        ``repetitions`` independent profiles of every (layer, device)
        pair provide the regression set; 20 repetitions over the
        11-model zoo yields ~15k points, matching the paper's remark
        about MOSAIC's data appetite.
        """
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        features: List[np.ndarray] = []
        latencies: List[np.ndarray] = []  # rows aligned with features
        for repetition in range(repetitions):
            table = profiler.profile(models, seed=seed + repetition)
            for model in models:
                per_model = table.tables[model.name]  # (devices, layers)
                for layer_index, layer in enumerate(model.layers):
                    features.append(_layer_features(layer))
                    latencies.append(per_model[:, layer_index])
        feature_matrix = np.stack(features)  # (P, F)
        latency_matrix = np.stack(latencies)  # (P, devices)
        self.training_points = latency_matrix.size
        solution, *_ = np.linalg.lstsq(feature_matrix, latency_matrix, rcond=None)
        self.coefficients = solution.T  # (devices, F)
        return self

    def predict(self, layer: LayerSpec, device_id: int) -> float:
        """Predicted latency of one layer on one device (>= 1 microsecond)."""
        if self.coefficients is None:
            raise RuntimeError("regression used before fit()")
        value = float(self.coefficients[device_id] @ _layer_features(layer))
        return max(value, 1e-6)

    def predict_model(self, model: ModelGraph) -> np.ndarray:
        """Predicted latencies ``(devices, layers)`` for a whole model."""
        if self.coefficients is None:
            raise RuntimeError("regression used before fit()")
        feature_matrix = np.stack([_layer_features(layer) for layer in model.layers])
        predictions = self.coefficients @ feature_matrix.T  # (devices, layers)
        return np.maximum(predictions, 1e-6)


class MosaicScheduler(Scheduler):
    """Slices each DNN for maximum predicted standalone pipeline throughput."""

    name = "MOSAIC"

    def __init__(
        self,
        platform: Platform,
        regression: LayerLatencyRegression,
        max_stages: Optional[int] = None,
    ) -> None:
        self.platform = platform
        self.regression = regression
        self.max_stages = max_stages if max_stages is not None else min(
            3, platform.num_devices
        )
        if self.max_stages < 1:
            raise ValueError(f"max_stages must be >= 1, got {self.max_stages}")

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, workload: Workload) -> ScheduleDecision:
        rows: List[List[int]] = []
        queries = 0
        total_score = 0.0
        for model in workload.models:
            row, bottleneck, considered = self._slice_model(model)
            rows.append(row)
            queries += considered
            total_score += 1.0 / bottleneck
        mapping = Mapping(rows)
        return ScheduleDecision(
            mapping=mapping,
            expected_score=total_score / workload.num_dnns,
            wall_time_s=0.0,
            cost={
                "regression_queries": float(queries),
                "training_points": float(self.regression.training_points),
            },
        )

    def _slice_model(self, model: ModelGraph) -> Tuple[List[int], float, int]:
        """Best ≤max_stages slicing by predicted pipeline bottleneck.

        Enumerates device sequences (distinct consecutive devices) and
        split points; communication costs use the platform links on
        the real activation sizes (MOSAIC is communication-aware).
        Returns (row, predicted bottleneck, candidates considered).
        """
        latencies = self.regression.predict_model(model)  # (devices, layers)
        prefix = np.concatenate(
            [np.zeros((latencies.shape[0], 1)), np.cumsum(latencies, axis=1)], axis=1
        )
        num_layers = model.num_layers
        num_devices = self.platform.num_devices
        best_row: Optional[List[int]] = None
        best_bottleneck = np.inf
        considered = 0

        for stage_count in range(1, min(self.max_stages, num_layers) + 1):
            for devices in itertools.permutations(range(num_devices), stage_count):
                for cuts in itertools.combinations(
                    range(1, num_layers), stage_count - 1
                ):
                    considered += 1
                    bottleneck = self._bottleneck(
                        model, prefix, devices, (0,) + cuts + (num_layers,)
                    )
                    if bottleneck < best_bottleneck:
                        best_bottleneck = bottleneck
                        best_row = _expand_row(devices, (0,) + cuts + (num_layers,))
        if best_row is None:  # unreachable: stage_count=1 always evaluated
            raise RuntimeError(f"no slicing found for model {model.name!r}")
        return best_row, float(best_bottleneck), considered

    def _bottleneck(
        self,
        model: ModelGraph,
        prefix: np.ndarray,
        devices: Tuple[int, ...],
        bounds: Tuple[int, ...],
    ) -> float:
        """Predicted slowest stage (compute + inbound transfer)."""
        worst = 0.0
        for stage_index, device_id in enumerate(devices):
            start, end = bounds[stage_index], bounds[stage_index + 1]
            stage_time = prefix[device_id, end] - prefix[device_id, start]
            if stage_index > 0:
                handoff = model.layers[start - 1].output_bytes
                stage_time += self.platform.transfer_time(
                    devices[stage_index - 1], device_id, handoff
                )
            worst = max(worst, stage_time)
        return worst


def _expand_row(devices: Tuple[int, ...], bounds: Tuple[int, ...]) -> List[int]:
    row: List[int] = []
    for stage_index, device_id in enumerate(devices):
        row.extend([device_id] * (bounds[stage_index + 1] - bounds[stage_index]))
    return row
