"""Distilled fast-path estimator: a tiny raw-numpy student of the ResNet9.

OmniBoost pays the full convolutional estimator for every one of the
~500 candidate queries of a decision (paper Section V-B).  The
cheap-proxy-then-verify pattern (RankMap's priority ranker, DynO's
onloading cost model -- see PAPERS.md) cuts that bill: a student
model orders of magnitude smaller than the teacher *pre-ranks* each
MCTS rollout micro-batch, only the top-k survivors reach the full
compiled estimator, and the non-survivors back up a calibrated
student estimate as their reward.

The student's one job is *within-workload ranking*: every pruning
decision compares candidate mappings for ONE workload, so absolute
throughput accuracy is worthless if the ordering is wrong.  Three
design choices follow (each one validated empirically against the
naive flat-feature student, whose within-workload rank correlation
was near zero because mix identity dominates the MSE):

* **per-mix-centered targets** -- the teacher's reward for each
  distillation pair has its mix's mean subtracted, so training
  variance IS the within-mix signal instead of being drowned by it;
* **compact structural features** (per-(device, model) load sums,
  per-device totals and active-cell counts, the closed-form
  :class:`~repro.baselines.ga.StaticCostModel` estimate, and the
  mapping's stage count), batch-centered at both train and inference
  time so the model only ever sees within-mix deviations;
* **a linear shortcut with a gated nonlinear head** -- the linear
  path is fit in closed form (ridge), the tanh hidden layer is
  trained on the residual, and its blend weight ``alpha`` is chosen
  on held-out distillation mixes with ``alpha = 0`` allowed.  The
  student can therefore never validate worse than its own linear
  path, while keeping capacity for nonlinear structure when the
  held-out mixes support it.

The contract that keeps this an optimization rather than an accuracy
trade (enforced in :meth:`repro.engine.SchedulingEngine._drive_pooled`
and pinned in ``tests/test_distill.py``):

* the **final chosen mapping's score always comes from the full
  estimator** -- the engine re-certifies the search's pick and swaps
  in the best *fully-scored* incumbent if the pick only carried a
  student proxy score;
* the student is **advisory**: it decides evaluation *order and
  budget*, never the served number;
* **exact-mode fallback**: on degraded resilience tiers, for
  objective-scored requests (the student ranks the paper's
  mean-throughput reward, not arbitrary objectives), or when the
  teacher's :attr:`~repro.nn.layers.Module.version` has moved since
  distillation, pruning disables itself and every candidate gets the
  full estimator again.

Everything here is raw numpy (no new dependencies); distillation is
deterministic for a fixed ``(groups, policy)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.mapping import Mapping
from ..workloads.mix import Workload

__all__ = ["FastPathPolicy", "DistilledEstimator", "distill_estimator"]

#: Candidate blend weights for the nonlinear head; 0.0 first so ties
#: resolve to the pure linear path.
_ALPHA_GRID = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class FastPathPolicy:
    """Knobs for the distilled fast path (pruning + distillation).

    ``keep_fraction``/``min_keep`` bound how many candidates of each
    rollout micro-batch survive to the full estimator;
    ``eval_batch_size`` widens the MCTS micro-batch so each round has
    a pool worth ranking (at the default batch size of 1 there is
    nothing to prune); ``explore_factor`` multiplies the decision's
    candidate budget -- student forwards are ~free, so the fast path
    spends its savings *searching wider*: the defaults turn a
    500-query decision into a 4000-candidate search that performs
    ~89 full forwards (80 rounds of 50 with one survivor each, plus
    certification).  The remaining fields configure the one-time
    distillation run: ``mixes`` workload mixes with
    ``mappings_per_mix`` random contiguous mappings each (within-mix
    contrast is the whole point -- see the module docstring), the
    last ``holdout_mixes`` of them reserved for choosing the
    nonlinear head's blend weight.
    """

    keep_fraction: float = 0.02
    min_keep: int = 1
    eval_batch_size: int = 50
    explore_factor: int = 8
    #: How many of the highest-proxy-scored *pruned* candidates get a
    #: full-estimator forward at certification time (one batched call
    #: per decision).  The student's most likely mis-ranking is hiding
    #: the true best mapping just below the per-round cut; recertifying
    #: its global top picks recovers those for the final max.
    recertify: int = 8
    mixes: int = 40
    mappings_per_mix: int = 12
    holdout_mixes: int = 8
    epochs: int = 300
    hidden: int = 16
    batch_size: int = 32
    learning_rate: float = 2e-3
    weight_decay: float = 1e-3
    ridge_lambda: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if self.min_keep < 1:
            raise ValueError("min_keep must be >= 1")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1")
        if self.explore_factor < 1:
            raise ValueError("explore_factor must be >= 1")
        if self.recertify < 0:
            raise ValueError("recertify must be >= 0")
        if self.mixes < 2 or self.mappings_per_mix < 2:
            raise ValueError(
                "distillation needs >= 2 mixes and >= 2 mappings per mix"
            )
        if not 0 < self.holdout_mixes < self.mixes:
            raise ValueError("holdout_mixes must be in (0, mixes)")

    def keep_count(self, batch_size: int) -> int:
        """How many of ``batch_size`` candidates get the full estimator."""
        fractional = int(np.ceil(self.keep_fraction * batch_size))
        return min(batch_size, max(self.min_keep, fractional))


class DistilledEstimator:
    """A raw-numpy linear+tanh student ranking candidates for one mix.

    :meth:`score_candidates` returns *centered* scores: the candidate
    batch's features are centered over the batch itself, so the output
    approximates ``reward - mean(batch rewards)`` in units of
    ``reward_scale``.  Higher is better; the engine calibrates these
    back onto the full-reward scale with the survivors it fully
    evaluates.  ``query_count`` tracks student forwards the way the
    teacher's counter tracks full forwards
    (``ServiceStats.distilled_queries``).
    """

    def __init__(self, teacher, cost_model, policy: FastPathPolicy) -> None:
        self._embedding = teacher.embedding
        self._cost_model = cost_model
        self.policy = policy
        self.num_devices = int(teacher.embedding.num_devices)
        devices, _layers, columns = teacher.embedding.input_shape
        #: per-(device, model) sums + per-device sums + per-device
        #: active-cell counts + per-device profiled-latency loads
        #: (raw and sorted: the bottleneck device caps throughput) +
        #: latency-load spread + static estimate + stage count.
        self.feature_dim = int(devices * columns + 4 * devices + 3)
        rng = np.random.default_rng(policy.seed)
        self.linear = np.zeros(self.feature_dim)
        self.w1 = rng.normal(
            0.0,
            np.sqrt(2.0 / self.feature_dim),
            (self.feature_dim, policy.hidden),
        )
        self.b1 = np.zeros(policy.hidden)
        self.w2 = rng.normal(0.0, 0.01, (policy.hidden, 1))
        #: Blend weight of the nonlinear head, chosen on held-out
        #: mixes at distillation time; 0.0 = pure linear path.
        self.alpha: float = 0.0
        self.feature_scale = np.ones(self.feature_dim)
        #: Std of the centered teacher rewards: multiplying a score by
        #: this recovers reward-space deviations (engine calibration).
        self.reward_scale: float = 1.0
        #: Teacher ``Module.version`` the student was distilled against;
        #: a moved version means stale knowledge -> exact-mode fallback.
        self.teacher_version: int = int(teacher.network.version)
        #: Student forwards performed (one per candidate mapping).
        self.query_count: int = 0
        #: Final training MSE against the centered teacher rewards.
        self.train_loss: float = float("nan")
        #: Mean held-out within-mix rank correlation at the chosen
        #: ``alpha`` (diagnostics).
        self.holdout_rank_corr: float = float("nan")

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return int(
            self.linear.size + self.w1.size + self.b1.size + self.w2.size
        )

    def is_stale(self, teacher) -> bool:
        """True when the teacher's weights moved since distillation."""
        return int(teacher.network.version) != self.teacher_version

    def reset_query_count(self) -> None:
        self.query_count = 0

    # ------------------------------------------------------------------
    def _features(
        self, pairs: Sequence[Tuple[Workload, Mapping]]
    ) -> np.ndarray:
        """Uncentered compact features, ``(N, feature_dim)``."""
        encoded = self._embedding.encode_batch(pairs)
        count = len(pairs)
        per_device_model = encoded.sum(axis=2).reshape(count, -1)
        per_device = encoded.sum(axis=(2, 3))
        active_cells = (encoded > 0).sum(axis=(2, 3))
        static = np.array(
            [[self._cost_model.estimate(workload, mapping)]
             for workload, mapping in pairs]
        )
        table = self._cost_model.latency_table
        devices = self.num_devices
        structure = np.empty((count, 2 * devices + 2))
        for index, (workload, mapping) in enumerate(pairs):
            loads = np.zeros(devices)
            stages = 0
            for model, row in zip(workload.models, mapping.assignments):
                assigned = np.asarray(row)
                stages += 1 + int(np.sum(np.diff(assigned) != 0))
                layer_latency = table.tables[model.name]
                for device in range(devices):
                    mask = assigned == device
                    if mask.any():
                        loads[device] += float(
                            layer_latency[device][mask].sum()
                        )
            structure[index, :devices] = loads
            structure[index, devices : 2 * devices] = np.sort(loads)[::-1]
            structure[index, 2 * devices] = loads.std()
            structure[index, 2 * devices + 1] = stages
        return np.concatenate(
            [per_device_model, per_device, active_cells, static, structure],
            axis=1,
        )

    def _raw_scores(self, centered: np.ndarray) -> np.ndarray:
        normalized = centered / self.feature_scale
        linear = normalized @ self.linear
        if self.alpha == 0.0:
            return linear
        hidden = np.tanh(normalized @ self.w1 + self.b1)
        return linear + self.alpha * (hidden @ self.w2)[:, 0]

    def score_candidates(
        self, workload: Workload, mappings: Sequence[Mapping]
    ) -> np.ndarray:
        """Centered proxy scores for one workload's candidate batch.

        Features are centered over the batch (the same centering the
        model trained under), so scores only order candidates *within*
        this batch; ``score * reward_scale`` approximates the
        candidate's reward deviation from the batch mean.
        """
        features = self._features(
            [(workload, mapping) for mapping in mappings]
        )
        centered = features - features.mean(axis=0)
        self.query_count += len(mappings)
        return self._raw_scores(centered)

    # ------------------------------------------------------------------
    def fit(
        self,
        groups: Sequence[Tuple[Workload, Sequence[Mapping]]],
        targets: np.ndarray,
    ) -> float:
        """Distill from per-mix groups of teacher rewards.

        ``targets`` aligns with ``groups`` flattened in order.  Ridge
        fits the linear path in closed form over every mix; the tanh
        head trains (Adam + MSE + weight decay) on the *training*
        mixes' residuals; ``alpha`` is then picked by mean within-mix
        rank correlation on the held-out mixes, with 0.0 in the grid
        so the nonlinear head only survives when it helps.
        """
        policy = self.policy
        slices: List[Tuple[int, int]] = []
        start = 0
        features: List[np.ndarray] = []
        for workload, mappings in groups:
            block = self._features(
                [(workload, mapping) for mapping in mappings]
            )
            features.append(block - block.mean(axis=0))
            slices.append((start, start + len(mappings)))
            start += len(mappings)
        centered = np.concatenate(features, axis=0)
        rewards = np.asarray(targets, dtype=float)
        if rewards.shape != (start,):
            raise ValueError(
                f"targets shape {rewards.shape} != ({start},)"
            )
        deviations = rewards.copy()
        for lo, hi in slices:
            deviations[lo:hi] -= rewards[lo:hi].mean()
        self.feature_scale = centered.std(axis=0) + 1e-9
        self.reward_scale = float(deviations.std() + 1e-9)
        x = centered / self.feature_scale
        y = deviations / self.reward_scale

        gram = x.T @ x + policy.ridge_lambda * np.eye(self.feature_dim)
        self.linear = np.linalg.solve(gram, x.T @ y)

        holdout = slices[len(slices) - policy.holdout_mixes:]
        train_hi = holdout[0][0]
        residual = y - x @ self.linear
        self.train_loss = self._fit_head(
            x[:train_hi], residual[:train_hi]
        )

        hidden = np.tanh(x @ self.w1 + self.b1)
        head = (hidden @ self.w2)[:, 0]
        best_alpha, best_corr = 0.0, -np.inf
        for alpha in _ALPHA_GRID:
            scores = x @ self.linear + alpha * head
            corr = float(
                np.mean(
                    [
                        _rank_corr(y[lo:hi], scores[lo:hi])
                        for lo, hi in holdout
                    ]
                )
            )
            if corr > best_corr:
                best_alpha, best_corr = alpha, corr
        self.alpha = best_alpha
        self.holdout_rank_corr = best_corr
        return self.train_loss

    def _fit_head(self, x: np.ndarray, residual: np.ndarray) -> float:
        """Adam + MSE + weight decay on the linear path's residual."""
        policy = self.policy
        rng = np.random.default_rng(policy.seed + 1)
        params = [self.w1, self.b1, self.w2]
        decays = [policy.weight_decay, 0.0, policy.weight_decay]
        first = [np.zeros_like(p) for p in params]
        second = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        count = x.shape[0]
        target = residual[:, None]
        loss = float("nan")
        for _epoch in range(policy.epochs):
            order = rng.permutation(count)
            for begin in range(0, count, policy.batch_size):
                batch = order[begin : begin + policy.batch_size]
                xb = x[batch]
                yb = target[batch]
                hidden = np.tanh(xb @ self.w1 + self.b1)
                outputs = hidden @ self.w2
                error = outputs - yb
                loss = float(np.mean(error**2))
                grad_out = (2.0 / error.size) * error
                grad_w2 = hidden.T @ grad_out
                grad_hidden = (grad_out @ self.w2.T) * (1.0 - hidden**2)
                grad_w1 = xb.T @ grad_hidden
                grad_b1 = grad_hidden.sum(axis=0)
                step += 1
                grads = [grad_w1, grad_b1, grad_w2]
                for index, (param, grad, decay) in enumerate(
                    zip(params, grads, decays)
                ):
                    grad = grad + decay * param
                    first[index] = beta1 * first[index] + (1 - beta1) * grad
                    second[index] = (
                        beta2 * second[index] + (1 - beta2) * grad**2
                    )
                    hat1 = first[index] / (1 - beta1**step)
                    hat2 = second[index] / (1 - beta2**step)
                    param -= (
                        policy.learning_rate * hat1 / (np.sqrt(hat2) + eps)
                    )
        return loss


def _rank_corr(truth: np.ndarray, scores: np.ndarray) -> float:
    """Spearman rank correlation (0.0 when either side is constant)."""
    if len(truth) < 2:
        return 0.0
    rank_t = np.empty(len(truth))
    rank_t[np.argsort(truth, kind="stable")] = np.arange(len(truth))
    rank_s = np.empty(len(scores))
    rank_s[np.argsort(scores, kind="stable")] = np.arange(len(scores))
    if rank_t.std() == 0.0 or rank_s.std() == 0.0:
        return 0.0
    return float(np.corrcoef(rank_t, rank_s)[0, 1])


def distill_estimator(
    teacher,
    groups: Sequence[Tuple[Workload, Sequence[Mapping]]],
    cost_model,
    policy: Optional[FastPathPolicy] = None,
) -> DistilledEstimator:
    """Train a :class:`DistilledEstimator` from teacher predictions.

    The teacher scores every ``(mix, mapping)`` pair once (these
    forwards are the one-time distillation bill -- they show up in the
    teacher's ``query_count``); the student regresses the per-mix
    *deviations* of the paper's mean-throughput reward.  Deterministic
    for a fixed ``(groups, policy)``.
    """
    if not groups:
        raise ValueError("distillation needs at least one mix group")
    policy = policy or FastPathPolicy()
    student = DistilledEstimator(teacher, cost_model, policy)
    pairs = [
        (workload, mapping)
        for workload, mappings in groups
        for mapping in mappings
    ]
    targets = teacher.predict_throughput_batch(pairs).mean(axis=1)
    student.fit(groups, targets)
    # Distillation itself must not mark the student stale: record the
    # teacher version after the teacher's forwards settled.
    student.teacher_version = int(teacher.network.version)
    return student
