"""Estimator dataset construction and training (paper Section V, Fig. 4).

The design-time pipeline: sample 500 random (mix, random-mapping)
pairs, measure each on the board (simulator), render inputs through the
embedding space, fit the target transform on the 400-sample training
split, then train the CNN with L1 loss for 100 epochs, recording the
train/validation curves that reproduce Fig. 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..nn.data import DataLoader, TensorDataset
from ..nn.functional import l1_loss, mse_loss
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..sim.mapping import Mapping
from ..sim.simulator import BoardSimulator
from ..workloads.generator import WorkloadGenerator
from ..workloads.mix import Workload
from .model import ThroughputEstimator

__all__ = ["EstimatorDatasetBuilder", "TrainingHistory", "EstimatorTrainer"]


@dataclass(frozen=True)
class EstimatorDataset:
    """Measured (input tensor, per-device throughput) pairs."""

    inputs: np.ndarray  # (N, devices, max_layers, models)
    targets: np.ndarray  # (N, devices), physical inferences/second
    pairs: Tuple[Tuple[Workload, Mapping], ...]

    def __len__(self) -> int:
        return len(self.inputs)


class EstimatorDatasetBuilder:
    """Runs the paper's random data-collection campaign on the board."""

    def __init__(
        self,
        simulator: BoardSimulator,
        generator: WorkloadGenerator,
        estimator: ThroughputEstimator,
    ) -> None:
        self.simulator = simulator
        self.generator = generator
        self.estimator = estimator

    def build(
        self,
        num_samples: int = 500,
        sizes: Tuple[int, ...] = (1, 2, 3, 4, 5),
        measurement_seed: int = 1234,
        repetitions: int = 3,
    ) -> EstimatorDataset:
        """Collect ``num_samples`` measured random workloads.

        ``repetitions`` board measurements are averaged per sample --
        the usual way throughput is recorded over a measurement window.
        """
        if num_samples < 2:
            raise ValueError(f"need at least 2 samples, got {num_samples}")
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        pairs = self.generator.sample_training_pairs(num_samples, sizes=sizes)
        rng = np.random.default_rng(measurement_seed)
        targets = np.zeros((num_samples, self.simulator.platform.num_devices))
        for index, (workload, mapping) in enumerate(pairs):
            samples = [
                self.simulator.measure(
                    workload.models, mapping, rng=rng
                ).device_throughput
                for _ in range(repetitions)
            ]
            targets[index] = np.mean(samples, axis=0)
        inputs = self.estimator.embedding.encode_batch(pairs)
        return EstimatorDataset(inputs=inputs, targets=targets, pairs=tuple(pairs))


@dataclass
class TrainingHistory:
    """Per-epoch loss curves -- the series behind Fig. 4."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def epochs(self) -> int:
        return len(self.train_losses)

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1]

    @property
    def final_val_loss(self) -> float:
        return self.val_losses[-1]

    @property
    def best_val_loss(self) -> float:
        return min(self.val_losses)

    def converged(self, threshold: float) -> bool:
        """Whether validation loss dropped below ``threshold``."""
        return self.best_val_loss < threshold

    def rows(self) -> List[Tuple[int, float, float]]:
        """(epoch, train, val) rows for tabular reporting."""
        return [
            (epoch + 1, train, val)
            for epoch, (train, val) in enumerate(
                zip(self.train_losses, self.val_losses)
            )
        ]


class EstimatorTrainer:
    """Trains a :class:`ThroughputEstimator` on a measured dataset."""

    def __init__(
        self,
        estimator: ThroughputEstimator,
        learning_rate: float = 3e-3,
        batch_size: int = 32,
        loss: str = "l1",
    ) -> None:
        if loss not in ("l1", "l2"):
            raise ValueError(f"loss must be 'l1' or 'l2', got {loss!r}")
        self.estimator = estimator
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.loss_name = loss
        self._loss_fn = l1_loss if loss == "l1" else mse_loss

    def train(
        self,
        dataset: EstimatorDataset,
        epochs: int = 100,
        train_size: int = 400,
        seed: int = 0,
    ) -> TrainingHistory:
        """Fit the estimator; returns the Fig.-4 loss curves.

        ``train_size`` samples go to training, the rest to validation
        (the paper uses 400/100).  The target transform is fit on the
        training split only.
        """
        if not 0 < train_size < len(dataset):
            raise ValueError(
                f"train_size must be in (0, {len(dataset)}), got {train_size}"
            )
        transform = self.estimator.target_transform
        transform.fit(dataset.targets[:train_size])
        normalized_targets = transform.transform(dataset.targets)

        full = TensorDataset(dataset.inputs, normalized_targets)
        train_split, val_split = full.split(train_size)
        rng = np.random.default_rng(seed)
        loader = DataLoader(
            train_split, batch_size=self.batch_size, shuffle=True, rng=rng
        )
        network = self.estimator.network
        optimizer = Adam(network.parameters(), lr=self.learning_rate)
        history = TrainingHistory()
        started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement of training wall time
        for epoch in range(epochs):
            # Cosine decay to a tenth of the base rate over the run.
            progress = epoch / max(epochs - 1, 1)
            optimizer.lr = self.learning_rate * (
                0.1 + 0.45 * (1.0 + np.cos(np.pi * progress))
            )
            network.train()
            epoch_losses = []
            for batch_inputs, batch_targets in loader:
                predictions = network(Tensor(batch_inputs))
                loss = self._loss_fn(predictions, Tensor(batch_targets))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            history.train_losses.append(float(np.mean(epoch_losses)))
            history.val_losses.append(self.evaluate(val_split))
        history.wall_time_s = time.perf_counter() - started  # repro: lint-ignore[RPR002] -- host measurement of training wall time
        # The epochs above mutated the backbone in place; training-mode
        # switches already bump the backbone version, but be explicit:
        # any compiled inference plan snapshot is now stale.
        self.estimator.invalidate_plan()
        return history

    def evaluate(self, split: TensorDataset) -> float:
        """Mean loss of the current network over a split.

        Runs the autograd interpreter in eval mode and restores the
        prior training mode on the way out (mirroring
        :meth:`~repro.estimator.model.ThroughputEstimator.predict_normalized_batch`).
        """
        network = self.estimator.network
        was_training = network.training
        network.eval()
        from ..nn.tensor import no_grad

        try:
            with no_grad():
                predictions = network(Tensor(split.inputs))
                loss = self._loss_fn(predictions, Tensor(split.targets))
        finally:
            if was_training:
                network.train()
        return loss.item()
