"""Estimator quality metrics.

What matters for the scheduler is not absolute prediction error but
*ranking fidelity*: the MCTS only needs the estimator to order
candidate mappings of the same mix correctly, especially near the top.
These helpers quantify exactly that and are used by tests, benches and
the documentation pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["spearman_rho", "top_k_regret", "RankingReport", "ranking_report"]


def spearman_rho(truth: Sequence[float], predicted: Sequence[float]) -> float:
    """Spearman rank correlation (no scipy dependency).

    Ties get average ranks, matching the standard definition.
    """
    truth = np.asarray(list(truth), dtype=float)
    predicted = np.asarray(list(predicted), dtype=float)
    if truth.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {truth.shape} vs {predicted.shape}"
        )
    if truth.size < 2:
        raise ValueError("need at least two samples for a rank correlation")
    rank_truth = _average_ranks(truth)
    rank_predicted = _average_ranks(predicted)
    if rank_truth.std() == 0 or rank_predicted.std() == 0:
        return 0.0
    return float(np.corrcoef(rank_truth, rank_predicted)[0, 1])


def top_k_regret(
    truth: Sequence[float], predicted: Sequence[float], k: int = 1
) -> float:
    """Relative loss from trusting the predictor's top-k picks.

    ``1 - best_true_among_predicted_topk / best_true_overall``: 0 means
    the predictor's shortlist contains the true optimum, 0.3 means the
    best mapping it would shortlist is 30% below the true best.  This
    is the quantity that decides OmniBoost's final solution quality.
    """
    truth = np.asarray(list(truth), dtype=float)
    predicted = np.asarray(list(predicted), dtype=float)
    if truth.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {predicted.shape}")
    if not 1 <= k <= truth.size:
        raise ValueError(f"k must be in [1, {truth.size}], got {k}")
    if truth.max() <= 0:
        raise ValueError("true values must contain something positive")
    shortlist = np.argsort(predicted)[-k:]
    return float(1.0 - truth[shortlist].max() / truth.max())


@dataclass(frozen=True)
class RankingReport:
    """Summary of a predictor's ranking fidelity on one mapping set."""

    num_samples: int
    rho: float
    regret_top1: float
    regret_top5: float
    mae: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"rho={self.rho:.3f} regret@1={self.regret_top1:.2f} "
            f"regret@5={self.regret_top5:.2f} MAE={self.mae:.3f} "
            f"(n={self.num_samples})"
        )


def ranking_report(
    truth: Sequence[float], predicted: Sequence[float]
) -> RankingReport:
    """Compute the full ranking-fidelity summary."""
    truth_arr = np.asarray(list(truth), dtype=float)
    predicted_arr = np.asarray(list(predicted), dtype=float)
    return RankingReport(
        num_samples=truth_arr.size,
        rho=spearman_rho(truth_arr, predicted_arr),
        regret_top1=top_k_regret(truth_arr, predicted_arr, k=1),
        regret_top5=top_k_regret(truth_arr, predicted_arr, k=min(5, truth_arr.size)),
        mae=float(np.abs(truth_arr - predicted_arr).mean()),
    )


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks with ties averaged (1-based)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    position = 0
    sorted_values = values[order]
    while position < values.size:
        tie_end = position
        while (
            tie_end + 1 < values.size
            and sorted_values[tie_end + 1] == sorted_values[position]
        ):
            tie_end += 1
        average = (position + tie_end) / 2.0 + 1.0
        ranks[order[position : tie_end + 1]] = average
        position = tie_end + 1
    return ranks
