"""The throughput estimator: masked embedding tensor in, 3 rates out.

Wraps the 20,044-parameter ResNet9 backbone with the embedding space
(input rendering) and the target transform (output denormalization),
exposing the two calls the rest of the framework needs:

* :meth:`predict_throughput` -- physical per-device inferences/second
  for a complete mapping (Fig. 3 end to end);
* :meth:`reward` -- the scalar MCTS reward: the predicted expected
  system throughput (Section IV-C).

Every call counts queries, because the paper's run-time analysis
(Section V-B) reasons in estimator queries (500 per scheduling
decision).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..nn.inference import InferencePlan, PlanCompileError, compile_resnet9
from ..nn.resnet9 import ResNet9
from ..nn.tensor import Tensor, no_grad
from ..sim.mapping import Mapping
from ..workloads.mix import Workload
from .embedding import EmbeddingSpace
from .preprocessing import TargetTransform

__all__ = ["EstimatorFault", "ThroughputEstimator"]


class EstimatorFault(RuntimeError):
    """The estimator produced (or was injected with) non-finite output.

    A NaN/Inf prediction must never reach MCTS reward ordering: NaN
    comparisons are all false, so a single poisoned evaluation silently
    corrupts UCT child selection instead of failing.  The throughput
    path therefore guards every denormalized batch with ``isfinite``
    and raises this typed fault, which the serving engine's degradation
    ladder (:mod:`repro.resilience`) catches to step down to a safer
    decision tier.
    """


class ThroughputEstimator:
    """CNN predictor of per-component throughput under a mapping.

    Inference runs through a compiled :class:`~repro.nn.inference.InferencePlan`
    by default (``use_compiled=True``): the eval-mode backbone is
    captured once into raw-numpy kernel steps (BatchNorm folded,
    conv+GELU fused, preallocated arenas) and every query executes
    that plan — same predictions within tight tolerance, several times
    faster.  The plan compiles lazily on the first eval-mode query and
    invalidates automatically when the backbone's weights change
    (training-mode forwards and ``load_state_dict()`` bump
    :attr:`~repro.nn.layers.Module.version`); call
    :meth:`invalidate_plan` after any out-of-band in-place weight
    write.  One known window: a query issued *between* ``backward()``
    and ``optimizer.step()`` snapshots pre-step weights and the step
    itself does not bump the version — the snapshot refreshes at the
    next training forward, or immediately via :meth:`invalidate_plan`.
    Set ``use_compiled=False`` to fall back to the autograd
    interpreter — bit-for-bit the historical path; a backbone the
    compiler cannot capture falls back automatically
    (:class:`~repro.nn.inference.PlanCompileError` flips
    ``use_compiled`` off).
    """

    def __init__(
        self,
        embedding: EmbeddingSpace,
        backbone: Optional[ResNet9] = None,
        target_transform: Optional[TargetTransform] = None,
        rng: Optional[np.random.Generator] = None,
        use_compiled: bool = True,
    ) -> None:
        self.embedding = embedding
        self.network = backbone or ResNet9(
            in_channels=embedding.num_devices,
            out_features=embedding.num_devices,
            rng=rng or np.random.default_rng(0),
        )
        self.target_transform = target_transform or TargetTransform()
        self.query_count = 0
        self.use_compiled = use_compiled
        #: Optional fault-injection seam (:mod:`repro.resilience`): a
        #: callable ``(outputs, backend) -> outputs`` invoked once per
        #: batched forward with ``backend`` one of ``"compiled"`` /
        #: ``"interpreter"``.  ``None`` (the default) is a straight
        #: pass-through — production replays never pay for it.
        self.fault_hook = None
        self._plan: Optional[InferencePlan] = None
        self._plan_version: Optional[int] = None
        self._plan_compiles = 0

    # ------------------------------------------------------------------
    # Compiled-plan lifecycle
    # ------------------------------------------------------------------
    def invalidate_plan(self) -> None:
        """Drop the compiled plan; the next eval-mode query recompiles.

        Training steps and ``load_state_dict`` invalidate automatically
        (the backbone bumps its version); this hook covers direct
        in-place writes to ``Tensor.data`` that bypass both.
        """
        self._plan = None
        self._plan_version = None

    @property
    def plan_compiles(self) -> int:
        """How many times a compiled plan has been (re)built."""
        return self._plan_compiles

    def _compiled_plan(self) -> InferencePlan:
        version = self.network.version
        if self._plan is None or self._plan_version != version:
            self._plan = compile_resnet9(self.network)
            self._plan_version = version
            self._plan_compiles += 1
        return self._plan

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_normalized(
        self, workload: Workload, mapping: Mapping
    ) -> np.ndarray:
        """Per-device outputs in the network's normalized target space."""
        batch = self.predict_normalized_batch([(workload, mapping)])
        return batch[0]

    def predict_normalized_batch(
        self, pairs: Sequence[Tuple[Workload, Mapping]]
    ) -> np.ndarray:
        """Batched normalized predictions ``(N, num_devices)``.

        Runs in eval mode, restoring the caller's training mode on the
        way out, and counts queries only after the forward succeeds —
        a raising encode or forward never inflates the Section V-B
        accounting.
        """
        if not pairs:
            raise ValueError("encode_batch needs at least one pair")
        network = self.network
        was_training = network.training
        if was_training:
            network.eval()
        try:
            use_compiled = self.use_compiled
            if use_compiled:
                try:
                    plan = self._compiled_plan()
                except PlanCompileError:
                    # Backbones the compiler cannot capture fall back
                    # to the interpreter permanently (documented
                    # contract; recompiling would fail identically).
                    self.use_compiled = False
                    use_compiled = False
            if use_compiled:
                _, height, width = self.embedding.input_shape
                count = len(pairs)
                view = plan.prepare(count, height, width)
                self.embedding.encode_batch(pairs, out=view)
                outputs = plan.execute(count, height, width)
            else:
                inputs = self.embedding.encode_batch(pairs)
                with no_grad():
                    outputs = self.network(Tensor(inputs)).numpy().copy()
        finally:
            if was_training:
                network.train()
        if self.fault_hook is not None:
            # Fires before accounting: an injected raise (plan-error)
            # must not inflate the Section V-B query count, exactly
            # like a real failing forward.
            outputs = self.fault_hook(
                outputs, "compiled" if use_compiled else "interpreter"
            )
        self.query_count += len(pairs)
        return outputs

    def predict_throughput(
        self, workload: Workload, mapping: Mapping
    ) -> np.ndarray:
        """Physical per-device throughput (inferences/second)."""
        return self.predict_throughput_batch([(workload, mapping)])[0]

    def predict_throughput_batch(
        self, pairs: Sequence[Tuple[Workload, Mapping]]
    ) -> np.ndarray:
        """Batched physical throughput predictions ``(N, num_devices)``.

        Stacks the masked embedding tensors and runs a single ResNet9
        forward over the whole batch, then denormalizes.  Row ``i`` is
        *bitwise identical* to the standalone
        :meth:`predict_throughput` call for pair ``i``, no matter how
        the batch is composed: every eval-mode op prices each sample
        independently (convs via broadcast matmul, the head via
        :func:`~repro.nn.functional.linear_rowwise`).  Batching is
        purely an amortization of per-call overhead — and the property
        the scheduling service's cross-request evaluation pooling
        relies on to stay result-identical to per-request calls.  This
        is the search hot path's vectorized entry point.
        """
        # Fail before the forward runs: an unfitted transform would
        # raise *after* the network was queried, which (now that only
        # successful queries count) would still be honest — but
        # checking first keeps the failure free.
        self.target_transform.require_fitted()
        normalized = self.predict_normalized_batch(pairs)
        predicted = self.target_transform.inverse(normalized)
        if not np.isfinite(predicted).all():
            raise EstimatorFault(
                "estimator produced non-finite throughput predictions; "
                "a NaN/Inf reward would silently corrupt UCT ordering "
                "in MCTS (all NaN comparisons are false), so the fault "
                "is raised here instead"
            )
        return predicted

    def reward(self, workload: Workload, mapping: Mapping) -> float:
        """Scalar MCTS reward: expected system throughput.

        The mean of the *denormalized* per-device predictions, i.e.
        predicted aggregate inferences/second divided by the device
        count -- "the expected system throughput as a reward" (paper
        IV-C).  Averaging the normalized outputs instead would weight a
        LITTLE-CPU inference as heavily as a GPU one.
        """
        return float(self.predict_throughput(workload, mapping).mean())

    def reward_batch(
        self, pairs: Sequence[Tuple[Workload, Mapping]]
    ) -> np.ndarray:
        """Vectorized :meth:`reward` over many (workload, mapping) pairs.

        One batched forward pass instead of ``len(pairs)`` scalar
        queries -- the numpy convolutions amortize dramatically, which
        is what makes exhaustive enumeration of small design spaces
        practical.  Query accounting is identical (``len(pairs)``
        queries).
        """
        return self.predict_throughput_batch(pairs).mean(axis=1)

    # ------------------------------------------------------------------
    # Extensibility (paper contribution iii)
    # ------------------------------------------------------------------
    def with_embedding(self, embedding: EmbeddingSpace) -> "ThroughputEstimator":
        """The same trained network over a different embedding space.

        The intended use is pairing with
        :meth:`~repro.estimator.embedding.EmbeddingSpace.extend`: a new
        DNN is profiled into a fresh column and the returned estimator
        schedules mixes containing it *without retraining* -- backbone
        weights and target statistics are shared with ``self`` (not
        copied).  The backbone is fully convolutional, so the widened
        (or taller) tensor is accepted as-is.
        """
        if embedding.num_devices != self.embedding.num_devices:
            raise ValueError(
                f"embedding has {embedding.num_devices} device channels, "
                f"the trained backbone expects {self.embedding.num_devices}"
            )
        return ThroughputEstimator(
            embedding,
            backbone=self.network,
            target_transform=self.target_transform,
            use_compiled=self.use_compiled,
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def reset_query_count(self) -> int:
        """Zero the query counter, returning the previous value."""
        previous = self.query_count
        self.query_count = 0
        return previous

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count (the paper reports 20,044)."""
        return self.network.num_parameters()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist backbone weights and target statistics as ``.npz``."""
        state = self.network.state_dict()
        if self.target_transform.fitted:
            state.update(self.target_transform.state_dict())
        np.savez(path, **state)

    def load(self, path: str) -> None:
        """Restore a checkpoint produced by :meth:`save`."""
        with np.load(path) as archive:
            state = {key: archive[key] for key in archive.files}
        self.network.load_state_dict(state)
        if "target_mean" in state:
            self.target_transform.load_state_dict(state)
