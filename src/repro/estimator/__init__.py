"""Throughput estimator: embeddings, preprocessing, CNN and training."""

from .distill import DistilledEstimator, FastPathPolicy, distill_estimator
from .embedding import EmbeddingSpace
from .model import EstimatorFault, ThroughputEstimator
from .preprocessing import TargetTransform
from .quality import RankingReport, ranking_report, spearman_rho, top_k_regret
from .training import (
    EstimatorDataset,
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    TrainingHistory,
)

__all__ = [
    "DistilledEstimator",
    "EmbeddingSpace",
    "EstimatorDataset",
    "EstimatorFault",
    "EstimatorDatasetBuilder",
    "EstimatorTrainer",
    "FastPathPolicy",
    "RankingReport",
    "TargetTransform",
    "distill_estimator",
    "ranking_report",
    "spearman_rho",
    "top_k_regret",
    "ThroughputEstimator",
    "TrainingHistory",
]
