"""Target preprocessing: standardize, then normalize to [0, 1].

Paper Section V: "we incorporate two preprocessing methods ... The
first standardizes the dataset output to address large variations and
non-uniform distribution, while the second normalizes the output
vector elements to values between 0 and 1."

Both transforms are fit on training targets only and applied to
training and validation alike; ``inverse`` maps estimator outputs back
to physical inferences/second.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["TargetTransform"]


class TargetTransform:
    """Invertible standardize + min-max pipeline for estimator targets."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None
        self.low: Optional[np.ndarray] = None
        self.high: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, targets: np.ndarray) -> "TargetTransform":
        """Estimate statistics from training targets ``(N, outputs)``."""
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 2 or len(targets) < 2:
            raise ValueError(
                f"fit expects a (N>=2, outputs) array, got shape {targets.shape}"
            )
        self.mean = targets.mean(axis=0)
        self.std = np.maximum(targets.std(axis=0), 1e-9)
        standardized = (targets - self.mean) / self.std
        self.low = standardized.min(axis=0)
        self.high = np.maximum(standardized.max(axis=0), self.low + 1e-9)
        return self

    @property
    def fitted(self) -> bool:
        return self.mean is not None

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("TargetTransform used before fit()")

    def require_fitted(self) -> None:
        """Raise the canonical unfitted error if :meth:`fit` has not run.

        Public so callers (e.g. the estimator's throughput path) can
        fail fast *before* paying for a forward pass.
        """
        self._require_fitted()

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def transform(self, targets: np.ndarray) -> np.ndarray:
        """Physical targets -> network training space ([0, 1]-ish)."""
        self._require_fitted()
        targets = np.asarray(targets, dtype=float)
        standardized = (targets - self.mean) / self.std
        return (standardized - self.low) / (self.high - self.low)

    def inverse(self, outputs: np.ndarray) -> np.ndarray:
        """Network outputs -> physical inferences/second."""
        self._require_fitted()
        outputs = np.asarray(outputs, dtype=float)
        standardized = outputs * (self.high - self.low) + self.low
        return standardized * self.std + self.mean

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        self._require_fitted()
        return {
            "target_mean": self.mean.copy(),
            "target_std": self.std.copy(),
            "target_low": self.low.copy(),
            "target_high": self.high.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.mean = np.asarray(state["target_mean"], dtype=float)
        self.std = np.asarray(state["target_std"], dtype=float)
        self.low = np.asarray(state["target_low"], dtype=float)
        self.high = np.asarray(state["target_high"], dtype=float)
