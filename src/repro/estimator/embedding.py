"""The distributed embeddings tensor (paper Section IV-A).

Profiled per-layer latencies are assembled into one tensor ``U`` of
shape ``(num_devices, max_layers, num_models)``: slice ``d`` holds the
performance matrix ``P_d`` whose column ``m`` is the zero-padded
performance vector ``p_m^d`` (Eq. 2-3).  Queried workloads are encoded
by *masking*: a boolean tensor of the same shape selects exactly the
(device, layer, model) cells the candidate mapping activates, and the
element-wise product ``mask * U`` is the estimator's input (Fig. 3).

Cell values are normalized; the default is min-max over
log-latencies, which conditions the 4-orders-of-magnitude latency
range onto [0, 1] (a plain global max would crush every light layer to
~0).  The paper's plain normalization is available as ``"global-max"``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..sim.mapping import Mapping
from ..sim.profiler import LatencyTable
from ..workloads.mix import Workload

__all__ = ["EmbeddingSpace"]

_NORMALIZATIONS = ("log-minmax", "global-max")


class EmbeddingSpace:
    """Holds ``U`` and renders (workload, mapping) pairs as masked tensors.

    Parameters
    ----------
    latency_table:
        Profiled per-layer latencies for every dataset model.
    model_names:
        Column order of the tensor (one column per dataset model).
    normalization:
        ``"log-minmax"`` (default) or ``"global-max"``.
    reserve_layers:
        Minimum tensor height.  Zero-padding rows above the tallest
        dataset model are reserved headroom for models added later.
    reserve_models:
        Minimum tensor width.  Zero columns beyond the dataset are
        reserved slots that :meth:`extend` fills *without changing the
        input geometry* -- the production recipe for the paper's
        robustness-to-new-models claim, because a stable geometry keeps
        the trained estimator's predictions on existing mixes exactly
        intact (growing the tensor instead dilutes its globally pooled
        features; the new-model benchmark quantifies the damage).
    """

    def __init__(
        self,
        latency_table: LatencyTable,
        model_names: Optional[Sequence[str]] = None,
        normalization: str = "log-minmax",
        reserve_layers: int = 0,
        reserve_models: int = 0,
    ) -> None:
        if normalization not in _NORMALIZATIONS:
            raise ValueError(
                f"unknown normalization {normalization!r}; "
                f"expected one of {_NORMALIZATIONS}"
            )
        if reserve_layers < 0 or reserve_models < 0:
            raise ValueError("reservations must be non-negative")
        self.normalization = normalization
        self.model_names: Tuple[str, ...] = tuple(
            model_names if model_names is not None else latency_table.model_names
        )
        missing = [
            name for name in self.model_names if name not in latency_table.tables
        ]
        if missing:
            raise KeyError(f"latency table lacks models: {missing}")
        self.num_devices = latency_table.num_devices
        self.max_layers = max(
            max(
                latency_table.tables[name].shape[1] for name in self.model_names
            ),
            reserve_layers,
        )
        self.num_columns = max(len(self.model_names), reserve_models)
        self._column: Dict[str, int] = {
            name: index for index, name in enumerate(self.model_names)
        }
        raw = self._compile(latency_table)
        self._fit_normalization(raw)
        self.tensor = self._apply_normalization(raw)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _compile(self, latency_table: LatencyTable) -> np.ndarray:
        """Stack zero-padded performance matrices into ``U`` (Eq. 3)."""
        raw = np.zeros((self.num_devices, self.max_layers, self.num_columns))
        for name, column in self._column.items():
            table = latency_table.tables[name]  # (devices, layers)
            raw[:, : table.shape[1], column] = table
        return raw

    def _fit_normalization(self, raw: np.ndarray) -> None:
        """Freeze normalization statistics from the design-time tensor.

        Frozen stats are what makes :meth:`extend` retraining-free: a
        model added later is encoded on the *same* scale the estimator
        was trained against, instead of silently re-scaling every
        existing column.
        """
        populated = raw > 0
        if not populated.any():
            raise ValueError("latency table holds no positive latencies")
        if self.normalization == "global-max":
            self._scale_stats = (float(raw.max()),)
        else:
            log_values = np.log(raw[populated])
            self._scale_stats = (
                float(log_values.min()),
                float(log_values.max()),
            )

    def _apply_normalization(self, raw: np.ndarray) -> np.ndarray:
        populated = raw > 0
        if self.normalization == "global-max":
            (high,) = self._scale_stats
            return raw / high
        low, high = self._scale_stats
        span = max(high - low, 1e-12)
        log_values = np.zeros_like(raw)
        np.log(raw, out=log_values, where=populated)
        # Shift into (0, 1]; padding cells stay exactly 0 so masks and
        # padding are indistinguishable from "no work here", as in the
        # paper's representation.  Out-of-range latencies of late-added
        # models may exceed 1 slightly; that is deliberate (frozen
        # scale), not a bug.
        scaled = np.where(populated, 0.05 + 0.95 * (log_values - low) / span, 0.0)
        return scaled

    def extend(
        self, latency_table: LatencyTable, new_model_names: Sequence[str]
    ) -> "EmbeddingSpace":
        """A new space with extra model columns on the *frozen* scale.

        This is the paper's contribution (iii) mechanically: a new DNN
        is profiled (kernel-based, cheap), appended as a fresh column
        of ``U``, and every existing column keeps its exact design-time
        encoding -- so the trained estimator can be reused without
        retraining (see
        :meth:`~repro.estimator.model.ThroughputEstimator.with_embedding`).
        If a new model has more layers than the tensor is tall, the
        tensor grows and existing columns keep their zero padding;
        because the backbone is fully convolutional and globally
        pooled, the estimator accepts the new geometry (its pooled
        features dilute slightly -- benchmarks quantify the effect).
        """
        new_model_names = tuple(new_model_names)
        if not new_model_names:
            raise ValueError("extend needs at least one new model name")
        duplicates = [
            name for name in new_model_names if name in self._column
        ]
        if duplicates:
            raise ValueError(f"models already embedded: {duplicates}")
        missing = [
            name
            for name in new_model_names
            if name not in latency_table.tables
        ]
        if missing:
            raise KeyError(f"latency table lacks models: {missing}")
        if latency_table.num_devices != self.num_devices:
            raise ValueError(
                f"latency table profiles {latency_table.num_devices} devices, "
                f"embedding has {self.num_devices}"
            )
        extended = EmbeddingSpace.__new__(EmbeddingSpace)
        extended.normalization = self.normalization
        extended.model_names = self.model_names + new_model_names
        extended.num_devices = self.num_devices
        extended.max_layers = max(
            self.max_layers,
            max(
                latency_table.tables[name].shape[1]
                for name in new_model_names
            ),
        )
        extended.num_columns = max(len(extended.model_names), self.num_columns)
        extended._column = {
            name: index for index, name in enumerate(extended.model_names)
        }
        extended._scale_stats = self._scale_stats
        raw = np.zeros(
            (self.num_devices, extended.max_layers, extended.num_columns)
        )
        for name in new_model_names:
            table = latency_table.tables[name]
            raw[:, : table.shape[1], extended._column[name]] = table
        tensor = extended._apply_normalization(raw)
        # Existing columns keep their exact design-time encoding; with
        # enough reserved capacity the geometry is unchanged too.
        tensor[:, : self.max_layers, : self.num_columns] = self.tensor
        extended.tensor = tensor
        return extended

    # ------------------------------------------------------------------
    # Masking (Fig. 3, steps 1-3)
    # ------------------------------------------------------------------
    def column_of(self, model_name: str) -> int:
        """Tensor column of a dataset model."""
        if model_name not in self._column:
            raise KeyError(
                f"model {model_name!r} is not part of this embedding space; "
                f"known: {', '.join(self.model_names)}"
            )
        return self._column[model_name]

    def mask(self, workload: Workload, mapping: Mapping) -> np.ndarray:
        """Boolean tensor selecting the cells a mapping activates."""
        mask = np.zeros_like(self.tensor, dtype=bool)
        if mapping.num_dnns != workload.num_dnns:
            raise ValueError(
                f"mapping covers {mapping.num_dnns} DNNs, workload has "
                f"{workload.num_dnns}"
            )
        for model, row in zip(workload.models, mapping.assignments):
            if len(row) != model.num_layers:
                raise ValueError(
                    f"mapping assigns {len(row)} layers for model "
                    f"{model.name!r} with {model.num_layers}"
                )
            column = self.column_of(model.name)
            for layer_index, device_id in enumerate(row):
                if device_id >= self.num_devices:
                    raise ValueError(
                        f"device id {device_id} out of range "
                        f"({self.num_devices} devices)"
                    )
                mask[device_id, layer_index, column] = True
        return mask

    def encode(self, workload: Workload, mapping: Mapping) -> np.ndarray:
        """The estimator input: element-wise ``mask * U``."""
        return self.tensor * self.mask(workload, mapping)

    def encode_batch(
        self,
        pairs: Sequence[Tuple[Workload, Mapping]],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stack encodings into an ``(N, D, L, M)`` batch.

        Equivalent to stacking :meth:`encode` per pair, but vectorized:
        instead of materializing a boolean mask per pair (a Python loop
        over every layer), the activated cells are scattered directly —
        one fancy-indexed gather/assign per (pair, model) row.  Cell
        values are identical either way (``mask * U`` keeps exactly the
        masked entries of ``U``).

        ``out`` lets the caller provide the destination — notably the
        compiled :class:`~repro.nn.inference.InferencePlan` input arena
        (any layout accepted, e.g. a transposed NHWC interior view), so
        the search hot path renders queries straight into the buffers
        the plan executes from, with no staging copy.  Values are cast
        to ``out``'s dtype on assignment, matching what feeding the
        float64 encoding to a float32 network would do.
        """
        if not pairs:
            raise ValueError("encode_batch needs at least one pair")
        shape = (len(pairs),) + self.input_shape
        if out is None:
            out = np.zeros(shape)
        else:
            if out.shape != shape:
                raise ValueError(
                    f"out has shape {out.shape}, batch needs {shape}"
                )
            out[...] = 0.0
        # Collect every activated (pair, device, layer, column) cell
        # with C-speed list extends, then gather from ``U`` and scatter
        # into ``out`` in one fancy-indexed pass over the whole batch.
        device_values: list = []
        layer_values: list = []
        column_values: list = []
        cells_per_pair: list = []
        for workload, mapping in pairs:
            if mapping.num_dnns != workload.num_dnns:
                raise ValueError(
                    f"mapping covers {mapping.num_dnns} DNNs, workload has "
                    f"{workload.num_dnns}"
                )
            total = 0
            for model, row in zip(workload.models, mapping.assignments):
                if len(row) != model.num_layers:
                    raise ValueError(
                        f"mapping assigns {len(row)} layers for model "
                        f"{model.name!r} with {model.num_layers}"
                    )
                column = self.column_of(model.name)
                device_values.extend(row)
                layer_values.extend(range(len(row)))
                column_values.extend([column] * len(row))
                total += len(row)
            cells_per_pair.append(total)
        devices = np.asarray(device_values, dtype=np.intp)
        over = devices >= self.num_devices
        if over.any():
            raise ValueError(
                f"device id {int(devices[over.argmax()])} out of "
                f"range ({self.num_devices} devices)"
            )
        rows = np.repeat(np.arange(len(pairs)), cells_per_pair)
        layers = np.asarray(layer_values, dtype=np.intp)
        columns = np.asarray(column_values, dtype=np.intp)
        out[rows, devices, layers, columns] = self.tensor[
            devices, layers, columns
        ]
        return out

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """The estimator's input geometry ``(devices, max_layers, columns)``.

        ``columns`` equals the dataset size unless capacity was
        reserved for future models.
        """
        return (self.num_devices, self.max_layers, self.num_columns)
