"""SLO enforcement policy: admission control and priority preemption.

The serving stack records priorities and waits; this module is where
they start *meaning* something.  An :class:`SLOPolicy` attaches a
fleet- or board-level :class:`~repro.core.base.SLOTarget` contract to
a service and switches on two enforcement mechanisms:

* **Admission control** — the :class:`AdmissionController` scores an
  incoming mix against the board's current load and returns one of
  three verdicts: ``"admit"``, ``"queue"`` (the load makes the floor
  unattainable *right now*) or ``"reject"`` (the floor is unattainable
  even on an empty board — no amount of waiting helps).  The score is
  the estimator's prediction for the mix over the deterministic
  striped reference mapping (the same proxy
  :class:`~repro.fleet.placement.FleetPlacer` ranks boards with),
  discounted by ``1 / (1 + load_penalty * load)``.  The discount is
  strictly decreasing in load for *any* scorer, which gives admission
  its key property: **monotonicity** — a mix that is not admitted at
  load L is not admitted at any load >= L (see
  ``tests/test_slo_properties.py``).
* **Priority preemption** — when an arrival's verdict is not
  ``"admit"`` and the policy allows it, residents of *strictly lower*
  priority are evicted (lowest priority first, newest arrival first
  within a level) until the verdict flips or no eligible victim
  remains.  :func:`preemption_victims` only ever yields
  strictly-lower-priority residents, so preemption can never evict an
  equal-or-higher-priority tenant *by construction*.  The evicted
  board re-plans through the warm re-search path — shrinking a mix is
  the warm start's best case, so preemption costs a fraction of a
  cold search (pinned in ``benchmarks/test_perf_online.py``).

With ``admission=False`` and ``preemption=False`` the policy is
*observe-only*: outcomes are annotated and counted against the target,
but no request is ever dropped, queued or evicted, and the served
decisions are byte-identical to an un-policied service.

Everything here is deterministic: the scorer runs over seeded,
batch-invariant estimator inference, and no verdict consults a clock.
See ``docs/slo.md`` for the operations guide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping as MappingT,
    Optional,
    Sequence,
    Tuple,
)

from .core.base import SLOTarget
from .estimator.model import EstimatorFault
from .sim.mapping import Mapping
from .workloads.mix import Workload, canonical_signature

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AttainmentTracker",
    "SLOPolicy",
    "make_estimator_scorer",
    "preemption_victims",
]

#: Admission verdicts, from best to worst.
VERDICTS = ("admit", "queue", "reject")


@dataclass(frozen=True)
class SLOPolicy:
    """A service-level contract plus its enforcement switches.

    Attributes
    ----------
    target:
        The default :class:`~repro.core.base.SLOTarget` applied to
        every request / trace arrival that does not carry its own.
        ``None`` disables floor-based admission (capacity-only) and
        attainment accounting.
    admission:
        Enable the admission controller: non-admitted arrivals are
        queued (retried when capacity frees up) or rejected.
    preemption:
        Enable priority preemption: a non-admittable arrival may evict
        strictly-lower-priority residents before the verdict is final.
    load_penalty:
        Per-resident-DNN discount slope of the admission score; higher
        values make the controller more conservative under load.
    queue_capacity:
        Bound on deferred arrivals; a "queue" verdict with a full
        queue becomes a rejection.
    """

    target: Optional[SLOTarget] = None
    admission: bool = True
    preemption: bool = True
    load_penalty: float = 0.25
    queue_capacity: int = 8

    def __post_init__(self) -> None:
        if self.load_penalty < 0:
            raise ValueError(
                f"load_penalty must be >= 0, got {self.load_penalty}"
            )
        if self.queue_capacity < 0:
            raise ValueError(
                f"queue_capacity must be >= 0, got {self.queue_capacity}"
            )

    @property
    def enforced(self) -> bool:
        """Does this policy ever change what gets served?"""
        return self.admission or self.preemption

    def floor_for(self, slo: Optional[SLOTarget]) -> Optional[float]:
        """The throughput floor governing one request (its own wins)."""
        if slo is not None and slo.min_throughput is not None:
            return slo.min_throughput
        if self.target is not None:
            return self.target.min_throughput
        return None


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict and how it was reached.

    ``base_score`` is the scorer's undiscounted prediction for the mix
    (``None`` when no floor applies), ``effective_score`` the same
    after the load discount — the value actually held against the
    floor.
    """

    verdict: str
    reason: str
    base_score: Optional[float] = None
    effective_score: Optional[float] = None


class AdmissionController:
    """Scores incoming mixes against load; monotone in load.

    Parameters
    ----------
    policy:
        The :class:`SLOPolicy` supplying the floor, the load penalty
        and the queue bound.
    scorer:
        ``Workload -> float`` predicted-throughput proxy (see
        :func:`make_estimator_scorer`).  ``None`` degrades the
        controller to capacity-only admission (no floor checks) —
        also what happens when the policy has no throughput floor.

    Base scores are cached per canonical mix signature, so a trace
    that re-offers the same model pays one scorer call total.
    """

    def __init__(
        self,
        policy: SLOPolicy,
        scorer: Optional[Callable[[Workload], float]] = None,
    ) -> None:
        self.policy = policy
        self._scorer = scorer
        self._base_scores: Dict[Tuple[str, ...], float] = {}
        #: Estimator faults swallowed by fail-open admission.
        self.scorer_faults = 0

    def base_score(self, names: Sequence[str]) -> float:
        """The undiscounted score of a mix (cached per signature)."""
        if self._scorer is None:
            raise ValueError("controller has no scorer")
        signature = canonical_signature(names)
        if signature not in self._base_scores:
            self._base_scores[signature] = float(
                self._scorer(Workload.from_names(list(names)))
            )
        return self._base_scores[signature]

    def evaluate(
        self,
        names: Sequence[str],
        load: int,
        capacity: Optional[int] = None,
        floor: Optional[float] = None,
    ) -> AdmissionDecision:
        """Verdict for a mix arriving while ``load`` DNNs are resident.

        ``capacity`` is the board's residency cap (``None`` skips the
        headroom check — the fleet handles feasibility itself);
        ``floor`` overrides the policy target's throughput floor (a
        request-level :class:`~repro.core.base.SLOTarget` wins over
        the policy default).

        Monotone in ``load`` by construction: the headroom check and
        the load discount are both non-increasing in load, and the
        floor itself never depends on it.
        """
        if load < 0:
            raise ValueError(f"load must be >= 0, got {load}")
        if capacity is not None and load + len(names) > capacity:
            return AdmissionDecision(
                verdict="queue",
                reason=(
                    f"no headroom: {load} resident + {len(names)} "
                    f"arriving > capacity {capacity}"
                ),
            )
        if floor is None:
            floor = self.policy.floor_for(None)
        if floor is None or self._scorer is None:
            return AdmissionDecision(verdict="admit", reason="no floor set")
        try:
            base = self.base_score(names)
        except EstimatorFault:
            # Fail open: admission is an optimization, not a safety
            # gate — a faulting scorer must not start rejecting work
            # (the engine's degradation ladder covers the search that
            # follows).  The fault stays visible via the counter.
            self.scorer_faults += 1
            return AdmissionDecision(
                verdict="admit",
                reason="scorer fault: admitting without a floor check",
            )
        effective = base / (1.0 + self.policy.load_penalty * load)
        if base < floor:
            return AdmissionDecision(
                verdict="reject",
                reason=(
                    f"floor {floor:.3f} unattainable even unloaded "
                    f"(base score {base:.3f})"
                ),
                base_score=base,
                effective_score=effective,
            )
        if effective < floor:
            return AdmissionDecision(
                verdict="queue",
                reason=(
                    f"floor {floor:.3f} unmet at load {load} "
                    f"(effective score {effective:.3f})"
                ),
                base_score=base,
                effective_score=effective,
            )
        return AdmissionDecision(
            verdict="admit",
            reason=f"effective score {effective:.3f} >= floor {floor:.3f}",
            base_score=base,
            effective_score=effective,
        )


def make_estimator_scorer(scheduler) -> Callable[[Workload], float]:
    """Estimator-backed admission scorer over one board's scheduler.

    Prices a mix with one ``predict_throughput_batch`` call over the
    deterministic striped reference mapping (each DNN pinned whole to
    one device, round-robin across the board) — the same cheap proxy
    the fleet placer ranks boards with, three orders of magnitude
    cheaper than searching.  Requires an estimator-backed scheduler
    (:class:`~repro.core.scheduler.OmniBoostScheduler`).
    """
    estimator = getattr(scheduler, "estimator", None)
    if estimator is None:
        raise TypeError(
            "admission scoring needs an estimator-backed scheduler; "
            f"{getattr(scheduler, 'name', type(scheduler).__name__)!r} "
            "has none"
        )

    def scorer(workload: Workload) -> float:
        num_devices = estimator.embedding.num_devices
        mapping = Mapping(
            [
                (index % num_devices,) * model.num_layers
                for index, model in enumerate(workload.models)
            ]
        )
        predicted = estimator.predict_throughput_batch([(workload, mapping)])
        return float(predicted[0].mean())

    return scorer


def preemption_victims(
    residents: MappingT[str, Tuple[str, int]],
    incoming_priority: int,
) -> List[Tuple[str, str, int]]:
    """Eviction order over a board's (or fleet's) residents.

    ``residents`` maps tenant id -> (model, priority) in *arrival
    order* (both :attr:`~repro.online.OnlineScheduler.active` and the
    fleet tenancy preserve insertion order).  Only residents of
    strictly lower priority than ``incoming_priority`` are ever
    eligible — the safety property — ordered lowest priority first,
    newest arrival first within a level (the cheapest work to redo).
    Returns ``(tenant_id, model, priority)`` triples.
    """
    order = {tenant_id: index for index, tenant_id in enumerate(residents)}
    eligible = sorted(
        (priority, -order[tenant_id], tenant_id, model)
        for tenant_id, (model, priority) in residents.items()
        if priority < incoming_priority
    )
    return [
        (tenant_id, model, priority)
        for priority, _, tenant_id, model in eligible
    ]


class AttainmentTracker:
    """A sliding window of SLO attainment ratios feeding scale decisions.

    The elastic layer (:class:`repro.fleet.Autoscaler`) needs a *live*
    degradation signal, not the end-of-replay percentiles a
    :class:`~repro.evaluation.TimelineReport` computes: the fleet feeds
    every annotated outcome's ratio in as it is produced, and the
    autoscaler reads the windowed p95 after each event group.  The
    window (newest ``window`` observations) keeps the signal recent —
    an early healthy phase must not mask a later squeeze.

    Percentile semantics match the report exactly (exact order
    statistics, no interpolation): ``percentile(95)`` is the worst
    ratio among the best 95% of windowed outcomes.
    """

    def __init__(self, window: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._ratios: List[float] = []
        self._observed = 0

    def observe(self, ratio: float) -> None:
        """Fold one outcome's attainment ratio into the window."""
        self._ratios.append(float(ratio))
        if len(self._ratios) > self.window:
            del self._ratios[0]
        self._observed += 1

    def __len__(self) -> int:
        """Observations currently in the window."""
        return len(self._ratios)

    @property
    def observed(self) -> int:
        """Lifetime observation count (window evictions included)."""
        return self._observed

    def percentile(self, percentile: int = 95) -> Optional[float]:
        """pP attainment over the window (``None`` while empty)."""
        if not 0 < percentile <= 100:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        if not self._ratios:
            return None
        ordered = sorted(self._ratios, reverse=True)
        rank = min(
            len(ordered),
            max(1, -(-percentile * len(ordered) // 100)),
        )
        return ordered[rank - 1]
