"""Request/response scheduling front end: the :class:`SchedulingService`.

OmniBoost's headline property — one trained estimator answers every
workload with no per-mix retraining — is exactly the shape of a
long-lived scheduling *service*.  This module supplies that surface:

* :meth:`SchedulingService.submit` answers one
  :class:`~repro.core.base.ScheduleRequest` (or bare
  :class:`~repro.workloads.mix.Workload`);
* :meth:`SchedulingService.schedule_many` answers a batch, deduping
  repeated mixes through a decision cache and running the remaining
  MCTS searches *concurrently*, with their leaf evaluations pooled
  into shared :meth:`~repro.estimator.model.ThroughputEstimator.predict_throughput_batch`
  calls;
* :meth:`SchedulingService.stats` reports service counters (requests
  served, cache hit rate, pooled batches, estimator queries);
* :meth:`SchedulingService.run_trace` replays an
  :class:`~repro.workloads.trace.ArrivalTrace` through the online
  subsystem with warm-started re-searches — optionally under an
  :class:`~repro.slo.SLOPolicy`, which annotates per-arrival SLO
  attainment (observe-only) or additionally enforces the contract
  with admission control, bounded queueing and priority preemption
  (see ``docs/slo.md``).

The implementation lives in :class:`~repro.engine.SchedulingEngine` —
the board-scoped core (decision cache, pooled concurrent drive, trace
replay, :class:`~repro.engine.ServiceStats`) that
:class:`~repro.fleet.FleetService` instantiates once per board of a
cluster.  ``SchedulingService`` is that engine specialized to a single
board: same constructor, same behaviour, byte-identical decisions —
the name every single-board deployment and the original examples use.

Two properties make the pooling safe:

1. the search exposes its evaluation points
   (:meth:`~repro.core.mcts.MonteCarloTreeSearch.search_steps`), so
   each search consumes exactly the rewards it would have computed
   itself, in the same order;
2. batched inference is bitwise invariant to batch composition
   (eval-mode :func:`~repro.nn.functional.linear_rowwise`), so a
   reward never depends on which *other* requests share the pool.

Together they make ``schedule_many`` return mappings identical to a
sequential per-request loop — the batching is a pure wall-clock /
amortization win, never a behavioural change.

The decision cache keys on the *canonical* mix signature (sorted model
names — workload order carries no semantics, paper Section IV-C), the
scheduler name and the budget override; a hit against a permuted
duplicate re-aligns the cached mapping's rows to the request's order.
Requests carrying an objective override bypass the cache (their reward
scale is caller-defined) but still pool their evaluations.  Since
PR 10 the cache is a bounded :class:`~repro.frontdoor.ShardedDecisionCache`
(per-shard LRU, ``cache_shards``/``cache_capacity`` constructor
knobs, evictions counted in :class:`~repro.engine.ServiceStats`) and
can persist across restarts via ``cache_dir`` — snapshots are keyed
on the estimator version, so retrained weights invalidate them
automatically.  Pass ``fast_path=FastPathPolicy()`` to enable the
distilled fast-path student, and front the service with
:class:`~repro.frontdoor.AsyncFrontDoor` to pool asynchronous
arrivals into count-based decision windows (see
``docs/performance.md``).

Online serving in four lines::

    >>> from repro import SchedulingService, SystemBuilder
    >>> from repro.workloads import churn_scenario
    >>> service = SchedulingService(SystemBuilder().with_estimator(epochs=20))
    >>> report = service.run_trace(churn_scenario("steady-drain"))
    >>> print(report.summary())
"""

from __future__ import annotations

from .engine import SchedulingEngine, ServiceStats

__all__ = ["SchedulingService", "ServiceStats"]


class SchedulingService(SchedulingEngine):
    """Long-lived single-board scheduling front end.

    A direct specialization of :class:`~repro.engine.SchedulingEngine`
    (see the module docstring): one lazy
    :class:`~repro.builder.SystemBuilder` or built
    :class:`~repro.builder.OmniBoostSystem`, one scheduler, one
    decision cache.  For many boards, see
    :class:`~repro.fleet.FleetService`.
    """
