"""Per-board scheduling engine: cache + pooled search over ONE system.

:class:`SchedulingEngine` is the board-scoped core extracted from the
original ``SchedulingService``: the decision cache (canonical mix
signature, permuted-duplicate row re-alignment), the pooled concurrent
MCTS drive (every in-flight search's leaf evaluations priced in shared
:meth:`~repro.estimator.model.ThroughputEstimator.predict_throughput_batch`
calls), the online-trace replay loop, and the :class:`ServiceStats`
counters.  Everything here assumes exactly one
:class:`~repro.builder.OmniBoostSystem` (one platform, one estimator).

Two front ends sit on top:

* :class:`~repro.service.SchedulingService` — the single-board
  request/response surface (a thin subclass, behaviour unchanged);
* :class:`~repro.fleet.FleetService` — one engine per board of a
  :class:`~repro.fleet.Cluster`, requests fanned out by a placement
  layer, each board's engine pooling its own share of the batch.

The pooling is safe for the same two reasons as always: searches
externalize their evaluation points
(:meth:`~repro.core.mcts.MonteCarloTreeSearch.search_steps`), and
batched inference is bitwise invariant to batch composition (eval-mode
:func:`~repro.nn.functional.linear_rowwise`), so pooled decisions are
identical to a sequential per-request loop.

The trace-replay loop is split so a fleet can drive it per board:
:meth:`SchedulingEngine.stage_trace_event` folds one
:class:`~repro.workloads.trace.ArrivalEvent` into a board's
:class:`~repro.online.OnlineScheduler` and stages its re-planning job;
:meth:`SchedulingEngine.replay_group` drives a coalesced group of
staged jobs concurrently (pooled evaluations) and commits the group's
final decision as the board's warm-start state.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .baselines.ga import StaticCostModel
from .builder import OmniBoostSystem, SystemBuilder
from .core.base import ScheduleDecision, ScheduleRequest, ScheduleResponse, Scheduler
from .core.mcts import MCTSResult
from .core.scheduler import OmniBoostScheduler
from .estimator.distill import (
    DistilledEstimator,
    FastPathPolicy,
    distill_estimator,
)
from .estimator.model import EstimatorFault
from .frontdoor.cache import ShardedDecisionCache, estimator_cache_token
from .evaluation.timeline import TimelineRecord, TimelineReport
from .nn.inference import PlanExecutionError
from .online import OnlineConfig, OnlineDecision, OnlineScheduler
from .resilience import (
    TIERS,
    DegradationLadder,
    FaultInjector,
    ResiliencePolicy,
    TraceJournal,
    trace_fingerprint,
)
from .sim.mapping import Mapping
from .slo import AdmissionController, SLOPolicy, make_estimator_scorer, preemption_victims
from .workloads.generator import WorkloadGenerator, random_contiguous_mapping
from .workloads.mix import Workload, canonical_signature
from .workloads.trace import ArrivalEvent, ArrivalTrace

__all__ = ["SchedulingEngine", "ServiceStats"]

#: Cache key: (scheduler name, sorted model names, budget override).
CacheKey = Tuple[str, Tuple[str, ...], Optional[int]]


@dataclass
class ServiceStats:
    """Engine-lifetime counters (monotonic; see :meth:`SchedulingEngine.stats`)."""

    requests_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0
    #: Decision-cache bounds and persistence (PR 10): LRU entries
    #: evicted past the shard capacity, and entries written to the
    #: on-disk snapshot — both filled at snapshot time from the
    #: :class:`~repro.frontdoor.cache.ShardedDecisionCache`, so the
    #: old unbounded-growth / silent-restart-drop failure modes are
    #: observable instead of latent.
    cache_evictions: int = 0
    cache_persisted: int = 0
    #: Pooled evaluator calls and the (workload, mapping) pairs they carried.
    pooled_eval_batches: int = 0
    pooled_evaluations: int = 0
    #: Section V-B budget view (one query per scored rollout) and what
    #: the estimator actually paid after transposition-cache savings.
    estimator_queries: float = 0.0
    estimator_queries_actual: float = 0.0
    #: Distilled fast path (:mod:`repro.estimator.distill`): student
    #: forwards performed, and candidates whose full-estimator forward
    #: was pruned away (they back up the student's estimate instead).
    #: Both stay zero without a :class:`FastPathPolicy`.
    distilled_queries: float = 0.0
    distilled_pruned: float = 0.0
    #: Per-priority service levels: how many requests (or trace
    #: events) each priority submitted, and their summed host-measured
    #: wait (latency) — the counters that make priority starvation
    #: visible instead of anecdotal.
    requests_by_priority: Dict[int, int] = field(default_factory=dict)
    wait_s_by_priority: Dict[int, float] = field(default_factory=dict)
    #: Online-trace counters (:meth:`SchedulingEngine.run_trace`).
    trace_events: int = 0
    trace_reschedules: int = 0
    trace_warm_reschedules: int = 0
    #: How many times the estimator (re)compiled its inference plan —
    #: filled at snapshot time; stays 0 while no scheduler (and hence
    #: no estimator) has materialized or compiled inference is off.
    estimator_plan_compiles: int = 0
    #: SLO accounting (:mod:`repro.slo`): how many outcomes were held
    #: against a throughput floor, how many attained it, the per-
    #: priority attainment ratios behind the percentile views, and the
    #: per-priority enforcement actions.  All stay empty/zero while no
    #: SLO target or policy is in play.
    slo_requests: int = 0
    slo_attained: int = 0
    slo_ratios_by_priority: Dict[int, List[float]] = field(default_factory=dict)
    rejections_by_priority: Dict[int, int] = field(default_factory=dict)
    preemptions_by_priority: Dict[int, int] = field(default_factory=dict)
    queued_by_priority: Dict[int, int] = field(default_factory=dict)
    #: Resilience accounting (:mod:`repro.resilience`): typed faults
    #: the degradation ladder caught, poisoned decision-cache entries
    #: detected and dropped, decisions made below the normal serving
    #: tier (total and per tier), and the ladder's step-down /
    #: step-up / half-open-probe transition counts (filled at snapshot
    #: time).  All stay zero/empty without a ResiliencePolicy.
    faults_detected: int = 0
    cache_corruptions: int = 0
    degraded_decisions: int = 0
    decisions_by_tier: Dict[str, int] = field(default_factory=dict)
    tier_step_downs: int = 0
    tier_step_ups: int = 0
    tier_probes: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache-eligible lookups (0.0 before any lookup)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def mean_pooled_batch_size(self) -> float:
        if not self.pooled_eval_batches:
            return 0.0
        return self.pooled_evaluations / self.pooled_eval_batches

    def mean_wait_s(self, priority: int) -> float:
        """Mean host-measured wait of ``priority`` requests (0 if none)."""
        count = self.requests_by_priority.get(priority, 0)
        if not count:
            return 0.0
        return self.wait_s_by_priority.get(priority, 0.0) / count

    def record_wait(self, priority: int, wait_s: float) -> None:
        """Fold one served request's wait into the per-priority counters."""
        self.requests_by_priority[priority] = (
            self.requests_by_priority.get(priority, 0) + 1
        )
        self.wait_s_by_priority[priority] = (
            self.wait_s_by_priority.get(priority, 0.0) + wait_s
        )

    # -- SLO accounting (no-ops until a target/policy is in play) ------
    @property
    def slo_attainment_rate(self) -> float:
        """Attained over SLO-accounted outcomes (0.0 before any)."""
        if not self.slo_requests:
            return 0.0
        return self.slo_attained / self.slo_requests

    def record_slo(
        self, priority: int, ratio: Optional[float], attained: bool
    ) -> None:
        """Fold one outcome's contract attainment into the counters."""
        self.slo_requests += 1
        if attained:
            self.slo_attained += 1
        if ratio is not None:
            self.slo_ratios_by_priority.setdefault(priority, []).append(ratio)

    def record_rejection(self, priority: int) -> None:
        self.rejections_by_priority[priority] = (
            self.rejections_by_priority.get(priority, 0) + 1
        )

    def record_preemption(self, priority: int) -> None:
        """Count one eviction, bucketed by the *victim's* priority."""
        self.preemptions_by_priority[priority] = (
            self.preemptions_by_priority.get(priority, 0) + 1
        )

    def record_queued(self, priority: int) -> None:
        self.queued_by_priority[priority] = (
            self.queued_by_priority.get(priority, 0) + 1
        )

    def absorb(self, other: "ServiceStats") -> None:
        """Fold another snapshot's counters into this one.

        The fleet rollup (:attr:`repro.fleet.FleetStats.combined`) sums
        live *and* retired boards through this method, so a board
        drained or killed mid-trace keeps contributing its request and
        wait totals instead of vanishing from the aggregate.
        """
        self.requests_served += other.requests_served
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_bypasses += other.cache_bypasses
        self.cache_evictions += other.cache_evictions
        self.cache_persisted += other.cache_persisted
        self.pooled_eval_batches += other.pooled_eval_batches
        self.pooled_evaluations += other.pooled_evaluations
        self.estimator_queries += other.estimator_queries
        self.estimator_queries_actual += other.estimator_queries_actual
        self.distilled_queries += other.distilled_queries
        self.distilled_pruned += other.distilled_pruned
        self.trace_events += other.trace_events
        self.trace_reschedules += other.trace_reschedules
        self.trace_warm_reschedules += other.trace_warm_reschedules
        self.estimator_plan_compiles += other.estimator_plan_compiles
        self.slo_requests += other.slo_requests
        self.slo_attained += other.slo_attained
        self.faults_detected += other.faults_detected
        self.cache_corruptions += other.cache_corruptions
        self.degraded_decisions += other.degraded_decisions
        self.tier_step_downs += other.tier_step_downs
        self.tier_step_ups += other.tier_step_ups
        self.tier_probes += other.tier_probes
        for tier, count in other.decisions_by_tier.items():
            self.decisions_by_tier[tier] = (
                self.decisions_by_tier.get(tier, 0) + count
            )
        for priority, count in other.requests_by_priority.items():
            self.requests_by_priority[priority] = (
                self.requests_by_priority.get(priority, 0) + count
            )
        for priority, wait_s in other.wait_s_by_priority.items():
            self.wait_s_by_priority[priority] = (
                self.wait_s_by_priority.get(priority, 0.0) + wait_s
            )
        for priority, ratios in other.slo_ratios_by_priority.items():
            self.slo_ratios_by_priority.setdefault(priority, []).extend(ratios)
        for counters, source in (
            (self.rejections_by_priority, other.rejections_by_priority),
            (self.preemptions_by_priority, other.preemptions_by_priority),
            (self.queued_by_priority, other.queued_by_priority),
        ):
            for priority, count in source.items():
                counters[priority] = counters.get(priority, 0) + count

    def slo_percentiles(
        self,
        percentiles: Sequence[int] = (50, 95, 99),
        priority: Optional[int] = None,
    ) -> Dict[int, float]:
        """pP attainment over the recorded ratios (exact order stats).

        Same definition as
        :meth:`~repro.evaluation.TimelineReport.slo_attainment_percentiles`:
        the worst ratio among the best P% of outcomes, so ``p95 >= 1.0``
        means 95% of accounted outcomes met their floor.  Empty when
        nothing was recorded (or nothing matches ``priority``).
        """
        ratios: List[float] = []
        for bucket, values in self.slo_ratios_by_priority.items():
            if priority is None or bucket == priority:
                ratios.extend(values)
        if not ratios:
            return {}
        ratios.sort(reverse=True)
        result: Dict[int, float] = {}
        for percentile in percentiles:
            if not 0 < percentile <= 100:
                raise ValueError(
                    f"percentiles must be in (0, 100], got {percentile}"
                )
            rank = min(
                len(ratios), max(1, math.ceil(percentile / 100 * len(ratios)))
            )
            result[percentile] = ratios[rank - 1]
        return result


@dataclass
class _SearchJob:
    """One live MCTS search inside a pooled ``schedule_many`` round."""

    request: ScheduleRequest
    index: int
    key: Optional[CacheKey]
    started: float
    gen: object = None
    pending: Optional[List[Mapping]] = None
    result: Optional[MCTSResult] = None
    #: Set instead of ``result`` when the greedy resilience tier
    #: answered without a search.
    decision: Optional[ScheduleDecision] = None
    elapsed: float = 0.0
    #: Drive priority: the leader's, raised to any follower's — a
    #: high-priority duplicate of a low-priority in-flight mix must
    #: not wait at low priority (classic priority inversion).
    priority: int = 0
    #: Requests with the same signature arriving after this job was
    #: opened; they reuse its decision as in-flight cache hits.
    followers: List[Tuple[int, ScheduleRequest, float]] = field(default_factory=list)
    #: Distilled fast path: whether any round of this search pruned
    #: candidates, and the full-estimator rewards of every candidate
    #: that *did* reach the full estimator — the certification set the
    #: final decision is drawn from (the correctness contract).
    pruned: bool = False
    #: Full-estimator forwards this job actually paid (survivors plus
    #: re-certification); replaces the search's own
    #: ``estimator_queries_actual`` counter for pruned jobs, which
    #: cannot see that most of its rewards were student proxies.
    full_forwards: int = 0
    full_scores: Optional[Dict[Mapping, float]] = None
    #: Student proxy rewards of candidates whose full forward was
    #: pruned — the recertification pool (best of them get one full
    #: batch at certification time).
    proxy_scores: Optional[Dict[Mapping, float]] = None


@dataclass
class _TraceJob:
    """One trace event's re-planning inside a coalesced group."""

    event: ArrivalEvent
    workload: Optional[Workload]
    started: float = 0.0
    gen: object = None
    #: The open evaluation request: (workload, mappings) or None.
    pending: Optional[List[Mapping]] = None
    pending_workload: Optional[Workload] = None
    outcome: Optional[OnlineDecision] = None
    elapsed: float = 0.0


class SchedulingEngine:
    """Cache + pooled concurrent search over one board's system.

    Parameters
    ----------
    source:
        A :class:`~repro.builder.SystemBuilder` (nothing is profiled or
        trained until the first request arrives) or an already-built
        :class:`~repro.builder.OmniBoostSystem`.
    scheduler:
        Registry name of the scheduler answering requests; defaults to
        ``"omniboost"``.  Only OmniBoost searches pool across requests
        (the baselines have no estimator loop to pool); other
        schedulers still get the cache/dedupe layer.
    cache_decisions:
        Disable to force every request through the scheduler.
    board:
        Optional board label; a fleet names each engine after its
        board so stats and timeline records carry attribution.  The
        single-board service leaves it empty.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` arming the
        degradation ladder (and, when the policy carries a fault plan,
        the deterministic fault injector).  ``None`` — the default —
        leaves every code path byte-identical to an engine built before
        the resilience layer existed.
    cache_shards / cache_capacity:
        Geometry of the bounded decision cache
        (:class:`~repro.frontdoor.cache.ShardedDecisionCache`):
        ``cache_shards`` LRU shards of ``cache_capacity`` entries each.
    cache_dir:
        Directory for the persisted decision-cache snapshot; ``None``
        keeps the cache in-memory only.  Snapshots are keyed by the
        estimator's ``Module.version`` plus a weight digest, so a
        retrained/re-loaded estimator never serves stale decisions.
    fast_path:
        Optional :class:`~repro.estimator.distill.FastPathPolicy`
        arming the distilled pruning fast path.  ``None`` — the
        default — keeps every search exact and byte-identical to an
        engine built before the fast path existed.
    """

    def __init__(
        self,
        source: Union[SystemBuilder, OmniBoostSystem],
        scheduler: str = "omniboost",
        cache_decisions: bool = True,
        board: str = "",
        resilience: Optional[ResiliencePolicy] = None,
        cache_shards: int = 4,
        cache_capacity: int = 128,
        cache_dir: Optional[str] = None,
        fast_path: Optional[FastPathPolicy] = None,
    ) -> None:
        if isinstance(source, SystemBuilder):
            self._builder: Optional[SystemBuilder] = source
            self._system: Optional[OmniBoostSystem] = None
        elif isinstance(source, OmniBoostSystem):
            self._builder = None
            self._system = source
        else:
            raise TypeError(
                "source must be a SystemBuilder or OmniBoostSystem, "
                f"got {type(source).__name__}"
            )
        self.scheduler_name = scheduler.strip().lower()
        self.cache_decisions = cache_decisions
        self.board = board
        self._scheduler: Optional[Scheduler] = None
        self._cache = ShardedDecisionCache(
            num_shards=cache_shards,
            shard_capacity=cache_capacity,
            cache_dir=cache_dir,
        )
        self.fast_path = fast_path
        self._student: Optional[DistilledEstimator] = None
        self._cache_token: Optional[Tuple[int, str]] = None
        self._stats = ServiceStats()
        self.resilience = resilience
        self._ladder = (
            DegradationLadder(resilience) if resilience is not None else None
        )
        self._injector = (
            FaultInjector(resilience.faults) if resilience is not None else None
        )
        #: The ladder tier the in-flight pooled drive runs at ("" when
        #: healthy/no policy) — consulted by :meth:`_evaluate_pairs`.
        self._active_tier = ""
        self._static_cost: Optional[StaticCostModel] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Union[ScheduleRequest, Workload],
        **knobs,
    ) -> ScheduleResponse:
        """Answer one request (``knobs`` forward to :class:`ScheduleRequest`)."""
        return self.schedule_many([self._normalize(request, **knobs)])[0]

    def schedule_many(
        self, requests: Sequence[Union[ScheduleRequest, Workload]]
    ) -> List[ScheduleResponse]:
        """Answer a batch of requests; responses align with the input order.

        Repeated mix signatures are served once (later arrivals are
        cache hits, in-flight or stored); the distinct searches run
        concurrently with their leaf evaluations pooled.  Cache and
        search assignment follow *arrival* order — a duplicate's
        search always runs over the first-arriving workload, so
        results match the sequential loop exactly.  ``priority`` only
        reorders which searches are driven first (evaluation is
        bitwise batch-invariant, so that never changes a decision).
        """
        normalized = [self._normalize(request) for request in requests]
        if not normalized:
            return []
        responses: List[Optional[ScheduleResponse]] = [None] * len(normalized)
        scheduler = self._scheduler_instance()
        pooling = isinstance(scheduler, OmniBoostScheduler)

        jobs: List[_SearchJob] = []
        open_jobs: Dict[CacheKey, _SearchJob] = {}
        for i in range(len(normalized)):
            request = normalized[i]
            started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement of per-request latency
            key = self._cache_key(request)
            if key is None:
                self._stats.cache_bypasses += 1
            else:
                cached = self._cache.get(key)
                if (
                    self._injector is not None
                    and self._injector.on_cache_lookup()
                    and cached is not None
                ):
                    # Injected corruption drill: the poisoned entry is
                    # detected, dropped, counted — and the request
                    # falls through to a fresh search.  ``discard``
                    # also rewrites the persisted snapshot, so a
                    # restart cannot resurrect the poisoned entry.
                    self._stats.cache_corruptions += 1
                    self._cache.discard(key)
                    cached = None
                if cached is not None:
                    self._stats.cache_hits += 1
                    responses[i] = self._hit_response(request, cached, started)
                    continue
                in_flight = open_jobs.get(key)
                if in_flight is not None:
                    self._stats.cache_hits += 1
                    in_flight.followers.append((i, request, started))
                    # Priority inheritance: an urgent duplicate lifts
                    # the in-flight search it now depends on.
                    in_flight.priority = max(in_flight.priority, request.priority)
                    continue
                self._stats.cache_misses += 1
            if pooling:
                job = _SearchJob(
                    request=request,
                    index=i,
                    key=key,
                    started=started,
                    priority=request.priority,
                )
                jobs.append(job)
                if key is not None:
                    open_jobs[key] = job
            else:
                responses[i] = self._respond_direct(scheduler, request)

        if jobs:
            jobs.sort(key=lambda job: (-job.priority, job.index))
            self._resilient_drive(scheduler, None, jobs, kind="search")
            for job in jobs:
                if job.decision is not None:
                    decision = job.decision
                else:
                    decision = scheduler.decision_from_result(
                        job.result, int(job.result.cache_misses)
                    )
                if job.pruned:
                    # The search's own "actual" counter believes every
                    # rollout reward was an estimator forward; for a
                    # pruned job only the survivors (and the
                    # certification batch) really paid one.
                    decision = replace(
                        decision,
                        cost={
                            **decision.cost,
                            "estimator_queries_actual": float(
                                job.full_forwards
                            ),
                        },
                    )
                decision = replace(decision, wall_time_s=job.elapsed)
                self._account(decision)
                names = tuple(job.request.workload.model_names)
                if job.key is not None:
                    self._cache.put(job.key, names, decision)
                responses[job.index] = ScheduleResponse(
                    decision=decision,
                    scheduler_name=scheduler.name,
                    cache_status="miss" if job.key is not None else "bypass",
                    measured_wall_time_s=job.elapsed,
                    request_id=job.request.request_id,
                )
                for index, follower, follower_started in job.followers:
                    responses[index] = self._hit_response(
                        follower, (names, decision), follower_started
                    )

        self._stats.requests_served += len(normalized)
        for request, response in zip(normalized, responses):
            self._stats.record_wait(
                request.priority, response.measured_wall_time_s
            )
            if request.slo is not None:
                self._stats.record_slo(
                    request.priority,
                    request.slo.ratio(response.expected_score),
                    request.slo.attained(
                        response.expected_score,
                        response.measured_wall_time_s,
                    ),
                )
        return responses  # type: ignore[return-value]

    def stats(self) -> ServiceStats:
        """A snapshot of the engine counters."""
        plan_compiles = 0
        scheduler = self._scheduler
        estimator = getattr(scheduler, "estimator", None)
        if estimator is not None:
            plan_compiles = getattr(estimator, "plan_compiles", 0)
        return replace(
            self._stats,
            requests_by_priority=dict(self._stats.requests_by_priority),
            wait_s_by_priority=dict(self._stats.wait_s_by_priority),
            slo_ratios_by_priority={
                priority: list(ratios)
                for priority, ratios in (
                    self._stats.slo_ratios_by_priority.items()
                )
            },
            rejections_by_priority=dict(self._stats.rejections_by_priority),
            preemptions_by_priority=dict(self._stats.preemptions_by_priority),
            queued_by_priority=dict(self._stats.queued_by_priority),
            estimator_plan_compiles=plan_compiles,
            cache_evictions=self._cache.evictions,
            cache_persisted=self._cache.persisted,
            decisions_by_tier=dict(self._stats.decisions_by_tier),
            tier_step_downs=(
                self._ladder.step_downs if self._ladder is not None else 0
            ),
            tier_step_ups=(
                self._ladder.step_ups if self._ladder is not None else 0
            ),
            tier_probes=(
                self._ladder.probes if self._ladder is not None else 0
            ),
        )

    def run_trace(
        self,
        trace: ArrivalTrace,
        online: Optional[OnlineConfig] = None,
        record_mappings: bool = False,
        slo: Optional[SLOPolicy] = None,
        checkpoint: Optional[str] = None,
    ) -> TimelineReport:
        """Replay an arrival/departure trace, re-planning each change.

        Events are processed in time order; events sharing a timestamp
        coalesce into one *group*.  Every event in a group gets its own
        re-search (over the mix as of that event), and the group's
        searches are driven concurrently with their leaf evaluations —
        and the warm path's arrival-completion candidates — pooled
        into shared ``predict_throughput_batch`` calls, exactly like a
        ``schedule_many`` batch.  Within a group all searches
        warm-start from the rows retained *before* the group (they are
        mutually independent, which is what makes the pooling legal);
        the group's final decision is then committed as the retained
        state for the next event.

        ``slo`` attaches an :class:`~repro.slo.SLOPolicy`.  A policy
        with enforcement switched off is *observe-only*: the replay is
        byte-identical to ``slo=None`` and arrival records are merely
        annotated with attainment against the policy target.  With
        ``admission``/``preemption`` on, arrivals the controller turns
        away are queued (retried when a departure frees capacity) or
        rejected, and a non-admittable arrival may first evict
        strictly-lower-priority residents — every enforcement action
        lands in the record's ``action`` field and the engine's
        per-priority counters.

        Returns the per-event :class:`~repro.evaluation.TimelineReport`
        (set ``record_mappings`` to embed each decision's device rows).
        Re-planning costs also land in the engine counters:
        per-priority waits, pooled batches, estimator queries.

        ``checkpoint`` names a crash-consistent journal file
        (:class:`~repro.resilience.TraceJournal`): every committed
        event group is fsynced to it, and :meth:`resume_trace` can
        reconstruct and continue the replay after a crash,
        byte-identically.  Journaling is incompatible with an
        *enforcing* SLO policy (the enforcement queue is not
        checkpointed); observe-only policies are fine.
        """
        online_scheduler = self.make_online_scheduler(online)
        if slo is not None and slo.enforced:
            if checkpoint is not None:
                raise ValueError(
                    "checkpointing does not cover the SLO enforcement "
                    "queue; run with an observe-only policy or none"
                )
            records = self._replay_enforced(
                trace, online_scheduler, slo, record_mappings
            )
            return self._trace_report(trace, records)
        journal = None
        if checkpoint is not None:
            journal = TraceJournal.create(
                checkpoint,
                self._journal_header(trace, online, record_mappings),
            )
        return self._replay_journaled(
            trace, online_scheduler, record_mappings, slo, journal,
            skip_groups=0, prefix=(),
        )

    def resume_trace(
        self,
        trace: ArrivalTrace,
        checkpoint: str,
        online: Optional[OnlineConfig] = None,
        record_mappings: bool = False,
        slo: Optional[SLOPolicy] = None,
    ) -> TimelineReport:
        """Continue a journaled :meth:`run_trace` after a crash.

        The journal's completed groups are not re-planned: their
        records are re-emitted verbatim and the serving state (online
        tenancy + warm rows, ladder and injector counters) is restored
        from the last committed group, so the remainder of the replay
        — which keeps journaling into the same file — produces a
        :class:`~repro.evaluation.TimelineReport` byte-identical to
        the uninterrupted run.  Arguments must match the original call
        (the journal header pins them); a mismatch raises
        :class:`ValueError`.  Resuming an already-complete journal
        just re-emits the report.
        """
        if slo is not None and slo.enforced:
            raise ValueError(
                "checkpointing does not cover the SLO enforcement "
                "queue; run with an observe-only policy or none"
            )
        online_scheduler = self.make_online_scheduler(online)
        journal, header, entries = TraceJournal.resume(checkpoint)
        expected = self._journal_header(trace, online, record_mappings)
        mismatched = [
            key
            for key, value in expected.items()
            if header.get(key) != value
        ]
        if mismatched:
            raise ValueError(
                f"journal {checkpoint} was written for a different "
                f"replay (mismatched: {', '.join(sorted(mismatched))})"
            )
        records: List[TimelineRecord] = []
        for entry in entries:
            records.extend(
                TimelineRecord.from_dict(record)
                for record in entry["records"]
            )
        if entries:
            self._restore_journal_state(online_scheduler, entries[-1]["state"])
        return self._replay_journaled(
            trace, online_scheduler, record_mappings, slo, journal,
            skip_groups=len(entries), prefix=tuple(records),
        )

    # ------------------------------------------------------------------
    # Crash-consistent journaling (checkpoint= / resume_trace)
    # ------------------------------------------------------------------
    def _replay_journaled(
        self,
        trace: ArrivalTrace,
        online_scheduler: OnlineScheduler,
        record_mappings: bool,
        slo: Optional[SLOPolicy],
        journal: Optional[TraceJournal],
        skip_groups: int,
        prefix: Tuple[TimelineRecord, ...],
    ) -> TimelineReport:
        """The (non-enforcing) replay loop, optionally journaled.

        With ``journal=None`` and ``skip_groups=0`` this is exactly the
        historical replay: per-group staging, pooled driving, and
        observe-only SLO annotation applied per group (a per-record
        transform, so annotating each group as it completes is
        byte-identical to annotating the whole list at the end — and
        it has to happen before the group is journaled).
        """
        records: List[TimelineRecord] = list(prefix)
        index = len(records)
        target = slo.target if slo is not None else None
        for position, group in enumerate(trace.grouped()):
            if position < skip_groups:
                continue
            jobs = [
                self.stage_trace_event(online_scheduler, event)
                for event in group
            ]
            produced = self.replay_group(
                online_scheduler, jobs, index, record_mappings
            )
            if target is not None:
                produced = [
                    self._annotate_slo(record, target)
                    for record in produced
                ]
            records.extend(produced)
            index += len(jobs)
            if journal is not None:
                journal.append_group(
                    position,
                    len(group),
                    [record.to_dict() for record in produced],
                    self._journal_state(online_scheduler),
                )
        if journal is not None:
            journal.close()
        return self._trace_report(trace, records)

    def _trace_report(
        self, trace: ArrivalTrace, records: List[TimelineRecord]
    ) -> TimelineReport:
        return TimelineReport(
            records=tuple(records),
            trace_name=trace.name,
            scheduler_name=self._scheduler_instance().name,
        )

    def _journal_header(
        self,
        trace: ArrivalTrace,
        online: Optional[OnlineConfig],
        record_mappings: bool,
    ) -> Dict:
        """What a resume must match for byte-identity to be possible."""
        return {
            "surface": "engine",
            "board": self.board,
            "scheduler": self.scheduler_name,
            "record_mappings": bool(record_mappings),
            "online": asdict(online or OnlineConfig()),
            "faults": (
                self.resilience.faults.to_dict()
                if self.resilience is not None
                else None
            ),
            "trace": trace_fingerprint(trace),
        }

    def _journal_state(self, online_scheduler: OnlineScheduler) -> Dict:
        """Serving state as of the last committed group."""
        state = {"online": online_scheduler.export_state()}
        resilience = self.resilience_state()
        if resilience is not None:
            state["resilience"] = resilience
        return state

    def _restore_journal_state(
        self, online_scheduler: OnlineScheduler, state: Dict
    ) -> None:
        online_scheduler.restore_state(state["online"])
        if "resilience" in state:
            self.restore_resilience_state(state["resilience"])

    def resilience_state(self) -> Optional[Dict]:
        """Ladder + injector counters for checkpointing (None if unarmed)."""
        if self._ladder is None:
            return None
        return {
            "ladder": self._ladder.export_state(),
            "injector": self._injector.export_state(),
        }

    def restore_resilience_state(self, state: Optional[Dict]) -> None:
        """Restore a :meth:`resilience_state` snapshot."""
        if state is None or self._ladder is None:
            return
        self._ladder.restore_state(state["ladder"])
        self._injector.restore_state(state["injector"])

    def clear_cache(self, persistent: bool = False) -> int:
        """Drop all cached decisions, returning how many were held.

        With ``persistent`` the on-disk snapshot is deleted too
        (``repro cache clear``); without it, a bound snapshot is
        rewritten empty so memory and disk stay in agreement.
        """
        return self._cache.clear(persistent=persistent)

    @property
    def decision_cache(self) -> ShardedDecisionCache:
        """The bounded decision cache (inspection / tests)."""
        return self._cache

    @property
    def scheduler(self) -> Scheduler:
        """The backing scheduler (materializing it if still lazy)."""
        return self._scheduler_instance()

    # ------------------------------------------------------------------
    # Trace replay building blocks (fleet drives these per board)
    # ------------------------------------------------------------------
    def make_online_scheduler(
        self, online: Optional[OnlineConfig] = None
    ) -> OnlineScheduler:
        """A fresh :class:`~repro.online.OnlineScheduler` over this board.

        Raises :class:`TypeError` for non-OmniBoost schedulers — warm
        starts drive the estimator search, so there is nothing to
        re-plan incrementally for the baselines.
        """
        scheduler = self._scheduler_instance()
        if not isinstance(scheduler, OmniBoostScheduler):
            raise TypeError(
                "run_trace requires an OmniBoost scheduler (warm starts "
                f"drive its estimator search); got {scheduler.name!r}"
            )
        return OnlineScheduler(scheduler, online)

    def stage_trace_event(
        self, online_scheduler: OnlineScheduler, event: ArrivalEvent
    ) -> _TraceJob:
        """Fold one event into the tenancy and stage its re-planning job."""
        online_scheduler.apply(event)
        return _TraceJob(
            event=event, workload=online_scheduler.current_workload()
        )

    def replay_group(
        self,
        online_scheduler: OnlineScheduler,
        jobs: List[_TraceJob],
        start_index: int,
        record_mappings: bool = False,
    ) -> List[TimelineRecord]:
        """Drive one coalesced group of staged jobs; commit the last outcome.

        The group's re-searches run concurrently with pooled
        evaluations; stats and per-priority waits are accounted here.
        Returns the group's timeline records (indices starting at
        ``start_index``).
        """
        scheduler = self._scheduler_instance()
        tier = self._resilient_drive(
            scheduler, online_scheduler, jobs, kind="trace"
        )
        committed = None
        records: List[TimelineRecord] = []
        index = start_index
        for job in jobs:
            if job.outcome is not None:
                committed = job.outcome
            records.append(
                self._trace_record(index, job, record_mappings, tier)
            )
            self._stats.trace_events += 1
            if job.outcome is not None:
                self._stats.trace_reschedules += 1
                if job.outcome.mode == "warm":
                    self._stats.trace_warm_reschedules += 1
                self._stats.record_wait(job.event.priority, job.elapsed)
                self._account(job.outcome.decision)
            index += 1
        if committed is not None:
            online_scheduler.commit(committed)
        return records

    # ------------------------------------------------------------------
    # SLO enforcement (run_trace with an enforcing SLOPolicy)
    # ------------------------------------------------------------------
    def _replay_enforced(
        self,
        trace: ArrivalTrace,
        online_scheduler: OnlineScheduler,
        slo: SLOPolicy,
        record_mappings: bool,
    ) -> List[TimelineRecord]:
        """The admission/preemption replay loop over one board.

        Per group: every arrival is judged against live tenancy before
        it is staged.  A non-admittable arrival first (``preemption``)
        evicts strictly-lower-priority residents — each eviction is a
        staged departure that re-plans through the warm path — and
        only then is queued or rejected (``admission``).  After each
        group, queued arrivals are retried in FIFO order against the
        freed capacity.  Departures of tenants that were never
        admitted become no-op records, so the report still carries one
        record per trace event.
        """
        scheduler = self._scheduler_instance()
        target = slo.target
        scorer = None
        if target is not None and target.min_throughput is not None:
            scorer = make_estimator_scorer(scheduler)
        controller = AdmissionController(slo, scorer=scorer)
        capacity = self._max_residency()
        queue: List[ArrivalEvent] = []
        queued_ids: set = set()
        ghosts: set = set()  # rejected/preempted: later departures no-op
        records: List[TimelineRecord] = []
        index = 0

        def evaluate(event: ArrivalEvent) -> str:
            resident = [
                model for model, _ in online_scheduler.active.values()
            ]
            if event.model in resident:
                # A queued arrival retried while its model is still
                # resident (the trace invariant covers offered load,
                # not the queue) can only wait for the departure.
                return "queue"
            return controller.evaluate(
                (event.model,), load=len(resident), capacity=capacity
            ).verdict

        for group in trace.grouped():
            #: ("job", _TraceJob, action) | ("rec", ready TimelineRecord)
            slots: List[Tuple] = []
            jobs: List[_TraceJob] = []

            def stage(event: ArrivalEvent, action: str) -> None:
                job = self.stage_trace_event(online_scheduler, event)
                jobs.append(job)
                slots.append(("job", job, action))

            for event in group:
                if event.kind == "departure":
                    if event.tenant_id in queued_ids:
                        queued_ids.discard(event.tenant_id)
                        queue[:] = [
                            e for e in queue
                            if e.tenant_id != event.tenant_id
                        ]
                        ghosts.add(event.tenant_id)
                        slots.append(
                            ("rec", self._noop_record(
                                event, online_scheduler, "expired"
                            ))
                        )
                    elif event.tenant_id in ghosts:
                        slots.append(
                            ("rec", self._noop_record(
                                event, online_scheduler, "dropped"
                            ))
                        )
                    else:
                        stage(event, "")
                    continue
                verdict = evaluate(event)
                # Only a "queue" verdict is load-caused, so only it can
                # be flipped by evicting residents; a "reject" (floor
                # unattainable even unloaded) never preempts.
                if verdict == "queue" and slo.preemption:
                    while verdict == "queue":
                        victims = preemption_victims(
                            online_scheduler.active, event.priority
                        )
                        if not victims:
                            break
                        tenant_id, model, priority = victims[0]
                        eviction = ArrivalEvent(
                            event.time_s, "departure", tenant_id,
                            model, priority,
                        )
                        stage(eviction, "preempted")
                        ghosts.add(tenant_id)
                        self._stats.record_preemption(priority)
                        verdict = evaluate(event)
                if verdict == "admit" or not slo.admission:
                    # Preemption without admission never drops work:
                    # eviction is the whole enforcement.
                    stage(event, "")
                elif verdict == "queue" and len(queue) < slo.queue_capacity:
                    queue.append(event)
                    queued_ids.add(event.tenant_id)
                    self._stats.record_queued(event.priority)
                    slots.append(
                        ("rec", self._noop_record(
                            event, online_scheduler, "queued"
                        ))
                    )
                else:
                    ghosts.add(event.tenant_id)
                    self._stats.record_rejection(event.priority)
                    slots.append(
                        ("rec", self._noop_record(
                            event, online_scheduler, "rejected"
                        ))
                    )

            produced = self.replay_group(
                online_scheduler, jobs, 0, record_mappings
            )
            by_job = {
                id(job): record for job, record in zip(jobs, produced)
            }
            for slot in slots:
                if slot[0] == "job":
                    record = replace(
                        by_job[id(slot[1])], index=index, action=slot[2]
                    )
                    if target is not None:
                        record = self._annotate_slo(record, target)
                else:
                    record = replace(slot[1], index=index)
                records.append(record)
                index += 1

            # FIFO retry of queued arrivals against the freed capacity.
            for event in list(queue):
                if evaluate(event) != "admit":
                    continue
                queue.remove(event)
                queued_ids.discard(event.tenant_id)
                retry = ArrivalEvent(
                    group[-1].time_s, "arrival", event.tenant_id,
                    event.model, event.priority,
                )
                job = self.stage_trace_event(online_scheduler, retry)
                produced = self.replay_group(
                    online_scheduler, [job], 0, record_mappings
                )
                record = replace(
                    produced[0], index=index, action="dequeued"
                )
                if target is not None:
                    record = self._annotate_slo(record, target)
                records.append(record)
                index += 1
        return records

    def _annotate_slo(
        self, record: TimelineRecord, target
    ) -> TimelineRecord:
        """Annotate one *arrival* outcome against a throughput floor.

        Departure/idle records pass through untouched; the attainment
        of an admitted arrival (the contract moment) is recorded into
        the engine counters as well.
        """
        if (
            record.kind != "arrival"
            or record.expected_score is None
            or target is None
            or target.min_throughput is None
        ):
            return record
        ratio = target.ratio(record.expected_score)
        attained = target.attained(
            record.expected_score, record.reschedule_time_s
        )
        self._stats.record_slo(record.priority, ratio, attained)
        return replace(record, slo_ratio=ratio, slo_attained=attained)

    def _noop_record(
        self,
        event: ArrivalEvent,
        online_scheduler: OnlineScheduler,
        action: str,
    ) -> TimelineRecord:
        """A no-plan record for an event enforcement kept off the board."""
        return TimelineRecord(
            index=0,
            time_s=event.time_s,
            kind=event.kind,
            tenant_id=event.tenant_id,
            model=event.model,
            priority=event.priority,
            active_models=tuple(
                model for model, _ in online_scheduler.active.values()
            ),
            mode="idle",
            board=self.board,
            action=action,
        )

    def _max_residency(self) -> Optional[int]:
        """The platform's residency cap (None when undiscoverable)."""
        source = self._builder if self._builder is not None else self._system
        platform = getattr(source, "platform", None)
        memory = getattr(platform, "memory", None)
        return getattr(memory, "max_residency", None)

    # ------------------------------------------------------------------
    # Degradation ladder (resilient pooled driving)
    # ------------------------------------------------------------------
    def _resilient_drive(
        self,
        scheduler: Scheduler,
        online_scheduler: Optional[OnlineScheduler],
        jobs: List,
        kind: str,
    ) -> str:
        """Run one pooled drive under the degradation ladder.

        Without a :class:`~repro.resilience.ResiliencePolicy` this is a
        straight call into the historical drive loop — byte-identical
        behaviour.  With one, a drive that dies with a typed fault
        (:class:`~repro.estimator.model.EstimatorFault` /
        :class:`~repro.nn.inference.PlanExecutionError`) is counted,
        stepped down, and *retried from scratch* at the new tier — the
        coroutines are recreated deterministically, so the retry is a
        pure function of the tier.  The greedy floor cannot fault, so
        every request is always answered.  Returns the tier that
        produced the decisions, ``""`` for the healthy top tier.
        """
        if self._ladder is None:
            if kind == "search":
                self._drive_pooled(scheduler, jobs)
            else:
                self._drive_trace_jobs(scheduler, online_scheduler, jobs)
            return ""
        estimator = getattr(scheduler, "estimator", None)
        decisions = (
            len(jobs)
            if kind == "search"
            else sum(1 for job in jobs if job.workload is not None)
        )
        while True:
            tier = self._ladder.begin_attempt()
            try:
                if tier == "greedy":
                    if kind == "search":
                        self._greedy_search_jobs(jobs)
                    else:
                        self._greedy_trace_jobs(jobs)
                else:
                    saved = None
                    if estimator is not None and tier == "interpreter":
                        saved = estimator.use_compiled
                        estimator.use_compiled = False
                    self._active_tier = tier
                    try:
                        if kind == "search":
                            self._drive_pooled(scheduler, jobs)
                        else:
                            self._drive_trace_jobs(
                                scheduler, online_scheduler, jobs
                            )
                    finally:
                        self._active_tier = ""
                        if saved is not None:
                            estimator.use_compiled = saved
            except (EstimatorFault, PlanExecutionError):
                self._stats.faults_detected += 1
                self._ladder.record_fault()
                if kind == "search":
                    self._reset_search_jobs(jobs)
                else:
                    self._reset_trace_jobs(jobs)
                continue
            self._ladder.complete_attempt(decisions)
            if tier == TIERS[0]:
                return ""
            if decisions:
                self._stats.degraded_decisions += decisions
                self._stats.decisions_by_tier[tier] = (
                    self._stats.decisions_by_tier.get(tier, 0) + decisions
                )
            return tier

    def _evaluate_pairs(self, estimator, pairs) -> np.ndarray:
        """Price one pooled micro-batch at the active ladder tier.

        The static tier fabricates constant per-device rows from the
        closed-form :class:`~repro.baselines.ga.StaticCostModel` — zero
        estimator forwards — shaped exactly like
        ``predict_throughput_batch`` output so the search machinery is
        none the wiser (``reward_from_predictions`` reduces each row to
        its mean, recovering the static estimate).
        """
        if self._active_tier == "static":
            model = self._static_cost_model()
            num_devices = model.platform.num_devices
            return np.array(
                [
                    [model.estimate(workload, mapping)] * num_devices
                    for workload, mapping in pairs
                ]
            )
        return estimator.predict_throughput_batch(pairs)

    def _static_cost_model(self) -> StaticCostModel:
        if self._static_cost is None:
            if self._builder is not None:
                self._static_cost = self._builder.ga_cost_model
            else:
                self._static_cost = StaticCostModel(
                    self._system.platform,
                    self._system.latency_table,
                    offered_rate=self._system.simulator.config.offered_rate,
                )
        return self._static_cost

    def _greedy_decision(self, workload: Workload) -> ScheduleDecision:
        """The ladder floor: deterministic no-search whole-DNN placement.

        Each DNN lands, in workload order, on the device with the
        least accumulated profiled latency (its own estimated run time
        included; ties break on the lower device id).  Scored by the
        static cost model — zero estimator forwards, zero search
        iterations, always an answer.
        """
        cost_model = self._static_cost_model()
        table = cost_model.latency_table
        num_devices = cost_model.platform.num_devices
        busy = [0.0] * num_devices
        rows = []
        for model in workload.models:
            per_device = table.tables[model.name].sum(axis=1)
            device = min(
                range(num_devices),
                key=lambda d: (busy[d] + float(per_device[d]), d),
            )
            rows.append((device,) * model.num_layers)
            busy[device] += float(per_device[device])
        mapping = Mapping(rows)
        score = float(cost_model.estimate(workload, mapping))
        return ScheduleDecision(
            mapping=mapping,
            expected_score=score,
            wall_time_s=0.0,
            cost={
                "estimator_queries": 0.0,
                "estimator_queries_actual": 0.0,
            },
        )

    def _greedy_search_jobs(self, jobs: List[_SearchJob]) -> None:
        for job in jobs:
            job.decision = self._greedy_decision(job.request.workload)
            job.elapsed = time.perf_counter() - job.started  # repro: lint-ignore[RPR002] -- host measurement of per-request latency

    def _greedy_trace_jobs(self, jobs: List[_TraceJob]) -> None:
        for job in jobs:
            job.started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement of trace-step latency
            if job.workload is None:
                continue  # board emptied: idle event, nothing to place
            decision = self._greedy_decision(job.workload)
            job.outcome = OnlineDecision(
                decision=decision, workload=job.workload, mode="greedy"
            )
            job.elapsed = time.perf_counter() - job.started  # repro: lint-ignore[RPR002] -- host measurement of trace-step latency

    @staticmethod
    def _reset_search_jobs(jobs: List[_SearchJob]) -> None:
        """Rewind faulted searches so the next tier retries from scratch."""
        for job in jobs:
            job.gen = None
            job.pending = None
            job.result = None
            job.decision = None
            job.pruned = False
            job.full_scores = None
            job.proxy_scores = None

    @staticmethod
    def _reset_trace_jobs(jobs: List[_TraceJob]) -> None:
        for job in jobs:
            job.gen = None
            job.pending = None
            job.pending_workload = None
            job.outcome = None

    # ------------------------------------------------------------------
    # Pooled concurrent search
    # ------------------------------------------------------------------
    def _drive_pooled(
        self, scheduler: OmniBoostScheduler, jobs: List[_SearchJob]
    ) -> None:
        """Advance every job's search, pooling leaf evaluations.

        Each round collects the open micro-batches of all searches
        still waiting on rewards, prices them in ONE
        ``predict_throughput_batch`` call, and feeds each search its
        slice.  Per-search cadence, reward values and trajectories are
        identical to running the searches one at a time (see the
        module docstring for why).
        """
        estimator = scheduler.estimator
        prune = self._fast_path_active()
        student = self._student_instance(estimator) if prune else None
        for job in jobs:
            config = scheduler.request_config(job.request)
            job_objective = (
                job.request.objective
                if job.request.objective is not None
                else scheduler.objective
            )
            if prune and job_objective is None:
                # The fast path ranks within rollout micro-batches; at
                # the default eval_batch_size=1 there is nothing to
                # rank, so the policy widens the batch — and multiplies
                # the candidate budget, spending the full forwards it
                # saves on a much wider search (student forwards are
                # ~free).  Only when this job will actually prune: a
                # degraded-tier retry or an objective-scored request
                # (which the student cannot rank) falls back to the
                # exact default search, which would otherwise pay the
                # widened budget in full forwards.
                config = replace(
                    config,
                    eval_batch_size=max(
                        config.eval_batch_size, self.fast_path.eval_batch_size
                    ),
                    budget=config.budget * self.fast_path.explore_factor,
                )
            search = scheduler.make_search(
                job.request.workload,
                config=config,
                objective=job.request.objective,
            )
            job.gen = search.search_steps()
            job.full_scores = {} if prune else None
            job.proxy_scores = {} if prune else None
            self._advance(job, first=True)

        while True:
            waiting = [job for job in jobs if job.pending is not None]
            if not waiting:
                break
            # Per-job candidate selection: pruning ranks only within a
            # job's own micro-batch, never across the pool — otherwise
            # a decision would depend on which other requests share the
            # batch, breaking the pooled == sequential contract.
            rounds = []
            pooled_pairs: List[Tuple[Workload, Mapping]] = []
            for job in waiting:
                workload = job.request.workload
                # Same fallback as make_search: a request override wins,
                # else the scheduler's configured objective applies.
                objective = (
                    job.request.objective
                    if job.request.objective is not None
                    else scheduler.objective
                )
                mappings = job.pending
                proxy = None
                # Exact mode for objective-scored requests: the student
                # ranks the paper's mean-throughput reward, and an
                # explicit objective may order candidates differently.
                keep = (
                    self.fast_path.keep_count(len(mappings))
                    if student is not None and objective is None
                    else len(mappings)
                )
                if keep < len(mappings):
                    proxy = student.score_candidates(workload, mappings)
                    self._stats.distilled_queries += len(mappings)
                    ranked = sorted(
                        range(len(mappings)),
                        key=lambda i: (-proxy[i], i),
                    )
                    survivors = sorted(ranked[:keep])
                    self._stats.distilled_pruned += len(mappings) - keep
                    job.pruned = True
                else:
                    survivors = list(range(len(mappings)))
                rounds.append((job, objective, mappings, proxy, survivors))
                pooled_pairs.extend(
                    (workload, mappings[i]) for i in survivors
                )
            rows = self._evaluate_pairs(estimator, pooled_pairs)
            self._stats.pooled_eval_batches += 1
            self._stats.pooled_evaluations += len(pooled_pairs)
            offset = 0
            for job, objective, mappings, proxy, survivors in rounds:
                count = len(survivors)
                slice_rows = rows[offset : offset + count]
                offset += count
                job.full_forwards += count
                kept = [mappings[i] for i in survivors]
                full_rewards = scheduler.reward_from_predictions(
                    job.request.workload, kept, slice_rows, objective
                )
                if proxy is None:
                    rewards = list(full_rewards)
                else:
                    # Survivors back up their full-estimator reward;
                    # pruned candidates back up the student's centered
                    # score, calibrated onto the reward scale with the
                    # survivors as anchors (the student only predicts
                    # within-batch deviations — see its docstring).
                    scale = student.reward_scale
                    anchor = sum(full_rewards) / len(full_rewards)
                    surv_mean = float(
                        np.mean([proxy[i] for i in survivors])
                    )
                    rewards = [
                        anchor + scale * (float(p) - surv_mean)
                        for p in proxy
                    ]
                    for index, reward in zip(survivors, full_rewards):
                        rewards[index] = reward
                    cut = set(survivors)
                    for i, mapping in enumerate(mappings):
                        if i not in cut:
                            job.proxy_scores[mapping] = rewards[i]
                if job.full_scores is not None:
                    for mapping, reward in zip(kept, full_rewards):
                        job.full_scores[mapping] = float(reward)
                self._advance(job, rewards=rewards)

        if prune:
            self._certify_pruned_jobs(scheduler, estimator, jobs)

    def _certify_pruned_jobs(
        self,
        scheduler: OmniBoostScheduler,
        estimator,
        jobs: List[_SearchJob],
    ) -> None:
        """Enforce the fast-path contract on every pruned search.

        The final chosen mapping's score always comes from the full
        estimator: a search pick that only ever carried a student
        proxy score is re-certified with one full forward, and if any
        *fully-scored* candidate seen during the search beats the
        pick's full score, that incumbent is served instead.  The
        student therefore only ever decides evaluation order — never
        the served mapping's score, and never a score downgrade.
        """
        for job in jobs:
            if job.result is None or not job.pruned:
                continue
            workload = job.request.workload
            objective = (
                job.request.objective
                if job.request.objective is not None
                else scheduler.objective
            )
            chosen = job.result.mapping
            recertify = [
                mapping
                for mapping in sorted(
                    job.proxy_scores,
                    key=job.proxy_scores.__getitem__,
                    reverse=True,
                )[: self.fast_path.recertify]
                if mapping not in job.full_scores
            ]
            if chosen not in job.full_scores and chosen not in recertify:
                recertify.append(chosen)
            if recertify:
                job.full_forwards += len(recertify)
                rows = self._evaluate_pairs(
                    estimator,
                    [(workload, mapping) for mapping in recertify],
                )
                rewards = scheduler.reward_from_predictions(
                    workload, recertify, rows, objective
                )
                for mapping, reward in zip(recertify, rewards):
                    job.full_scores[mapping] = float(reward)
            full = job.full_scores[chosen]
            best_mapping, best_reward = chosen, full
            for mapping, reward in job.full_scores.items():
                if reward > best_reward:
                    best_mapping, best_reward = mapping, reward
            if best_mapping is not chosen or best_reward != job.result.reward:
                job.result = replace(
                    job.result, mapping=best_mapping, reward=best_reward
                )

    def _drive_trace_jobs(
        self,
        scheduler: OmniBoostScheduler,
        online_scheduler: OnlineScheduler,
        jobs: List[_TraceJob],
    ) -> None:
        """Drive a coalesced group's re-planning coroutines together.

        The same pooling loop as :meth:`_drive_pooled`, over
        :meth:`~repro.online.OnlineScheduler.plan_steps` coroutines
        (whose yields carry their own workload, since each event in
        the group plans a different mix).
        """
        estimator = scheduler.estimator
        for job in jobs:
            job.started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement of trace-step latency
            if job.workload is None:
                continue  # board emptied: idle event, nothing to plan
            job.gen = online_scheduler.plan_steps(job.workload)
            self._advance_trace(job, first=True)
        while True:
            waiting = [job for job in jobs if job.pending is not None]
            if not waiting:
                break
            pairs = [
                (job.pending_workload, mapping)
                for job in waiting
                for mapping in job.pending
            ]
            rows = self._evaluate_pairs(estimator, pairs)
            self._stats.pooled_eval_batches += 1
            self._stats.pooled_evaluations += len(pairs)
            offset = 0
            for job in waiting:
                count = len(job.pending)
                slice_rows = rows[offset : offset + count]
                offset += count
                rewards = scheduler.reward_from_predictions(
                    job.pending_workload,
                    job.pending,
                    slice_rows,
                    scheduler.objective,
                )
                self._advance_trace(job, rewards=rewards)

    @staticmethod
    def _advance_trace(
        job: _TraceJob,
        rewards: Optional[List[float]] = None,
        first: bool = False,
    ) -> None:
        """Step one plan coroutine to its next yield (or completion)."""
        try:
            if first:
                request = next(job.gen)
            else:
                request = job.gen.send(rewards)
            job.pending_workload, job.pending = request
        except StopIteration as stop:
            job.pending = None
            job.pending_workload = None
            job.outcome = stop.value
            job.elapsed = time.perf_counter() - job.started  # repro: lint-ignore[RPR002] -- host measurement of trace-step latency

    def _trace_record(
        self,
        index: int,
        job: _TraceJob,
        record_mappings: bool,
        tier: str = "",
    ) -> TimelineRecord:
        """Render one trace job as a timeline record."""
        event = job.event
        active = (
            job.workload.model_names if job.workload is not None else ()
        )
        outcome = job.outcome
        if outcome is None:
            return TimelineRecord(
                index=index,
                time_s=event.time_s,
                kind=event.kind,
                tenant_id=event.tenant_id,
                model=event.model,
                priority=event.priority,
                active_models=tuple(active),
                mode="idle",
                board=self.board,
            )
        cost = outcome.decision.cost
        return TimelineRecord(
            index=index,
            time_s=event.time_s,
            kind=event.kind,
            tenant_id=event.tenant_id,
            model=event.model,
            priority=event.priority,
            active_models=tuple(active),
            mode=outcome.mode,
            expected_score=outcome.expected_score,
            seed_reward=outcome.seed_reward,
            evaluations=cost.get("estimator_queries", 0.0),
            estimator_queries_actual=cost.get(
                "estimator_queries_actual", 0.0
            ),
            iterations=outcome.iterations,
            stopped_early=outcome.stopped_early,
            reschedule_time_s=job.elapsed,
            mapping_rows=(
                tuple(
                    tuple(row)
                    for row in outcome.decision.mapping.assignments
                )
                if record_mappings
                else None
            ),
            board=self.board,
            tier=tier,
        )

    @staticmethod
    def _advance(
        job: _SearchJob,
        rewards: Optional[List[float]] = None,
        first: bool = False,
    ) -> None:
        """Step one search coroutine to its next yield (or completion)."""
        try:
            if first:
                job.pending = next(job.gen)
            else:
                job.pending = job.gen.send(rewards)
        except StopIteration as stop:
            job.pending = None
            job.result = stop.value
            job.elapsed = time.perf_counter() - job.started  # repro: lint-ignore[RPR002] -- host measurement of trace-step latency

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _scheduler_instance(self) -> Scheduler:
        if self._scheduler is None:
            if self._builder is not None:
                self._scheduler = self._builder.build_scheduler(self.scheduler_name)
            else:
                self._scheduler = self._system.scheduler(self.scheduler_name)
            if self._injector is not None:
                estimator = getattr(self._scheduler, "estimator", None)
                if estimator is not None:
                    estimator.fault_hook = self._injector.on_forward
        self._bind_cache()
        return self._scheduler

    def _bind_cache(self) -> None:
        """Attach the estimator identity to the decision cache.

        Binding loads any persisted snapshot whose token still matches
        (restart warm-up), quarantines corrupt snapshots into
        ``ServiceStats.cache_corruptions``, and — should the estimator
        retrain or re-load mid-process (``Module.version`` bump) —
        drops every now-stale entry rather than serve one.
        """
        estimator = getattr(self._scheduler, "estimator", None)
        if estimator is not None:
            version = int(estimator.network.version)
            if self._cache_token is None or self._cache_token[0] != version:
                self._cache_token = (
                    version,
                    estimator_cache_token(estimator.network),
                )
            token = self._cache_token[1]
        else:
            # Estimator-free baselines: decisions depend only on the
            # (deterministic) cost model, named in the cache key.
            token = f"scheduler:{self.scheduler_name}"
        quarantined = self._cache.bind(token)
        if quarantined:
            self._stats.cache_corruptions += quarantined

    def _student_instance(self, estimator) -> DistilledEstimator:
        """The distilled student, (re)built lazily from the teacher.

        A stale student (the teacher's ``Module.version`` moved since
        distillation — retraining, ``load_state_dict``, an embedding
        swap) is re-distilled rather than consulted: its rankings
        describe a network that no longer exists.
        """
        if self._student is None or self._student.is_stale(estimator):
            self._student = distill_estimator(
                estimator,
                self._distill_groups(),
                self._static_cost_model(),
                self.fast_path,
            )
        return self._student

    def _distill_groups(self) -> List[Tuple[Workload, List[Mapping]]]:
        """Deterministic per-mix distillation groups, fresh generator.

        A dedicated :class:`~repro.workloads.generator.WorkloadGenerator`
        (seeded from the policy) keeps distillation from consuming the
        shared generator's stream — sampling through the system's own
        generator would shift every later seeded draw and change
        decisions elsewhere.  Each group is one mix with several random
        contiguous mappings: the student trains on *within-mix*
        contrast, the only signal pruning ever uses (mix sizes cycle
        1..5 so every workload width the front door serves is
        represented).
        """
        base = (
            self._builder.generator
            if self._builder is not None
            else self._system.generator
        )
        sampler = WorkloadGenerator(
            model_names=base.model_names,
            num_devices=base.num_devices,
            max_total_weight_bytes=base.max_total_weight_bytes,
            seed=self.fast_path.seed + 11,
        )
        rng = np.random.default_rng(self.fast_path.seed + 13)
        groups: List[Tuple[Workload, List[Mapping]]] = []
        for index in range(self.fast_path.mixes):
            mix = sampler.sample_mix(1 + index % 5)
            mappings = [
                random_contiguous_mapping(
                    mix.models, sampler.num_devices, rng
                )
                for _ in range(self.fast_path.mappings_per_mix)
            ]
            groups.append((mix, mappings))
        return groups

    def _fast_path_active(self) -> bool:
        """Prune only on the healthy (full-estimator) tiers.

        Degraded tiers are the exact-mode fallback: the interpreter
        tier is already answering a fault, and the static/greedy tiers
        never touch the estimator at all — a student trained against
        it would be ranking for the wrong oracle.
        """
        return self.fast_path is not None and self._active_tier in (
            "",
            TIERS[0],
        )

    @staticmethod
    def _normalize(
        request: Union[ScheduleRequest, Workload], **knobs
    ) -> ScheduleRequest:
        if isinstance(request, ScheduleRequest):
            if knobs:
                raise TypeError(
                    "knobs are only accepted with a bare Workload; "
                    "set them on the ScheduleRequest instead"
                )
            return request
        if isinstance(request, Workload):
            return ScheduleRequest(workload=request, **knobs)
        raise TypeError(
            f"expected ScheduleRequest or Workload, got {type(request).__name__}"
        )

    def _cache_key(self, request: ScheduleRequest) -> Optional[CacheKey]:
        if not self.cache_decisions or request.objective is not None:
            return None
        return (
            self.scheduler_name,
            canonical_signature(request.workload.model_names),
            request.budget,
        )

    def _hit_response(
        self,
        request: ScheduleRequest,
        cached: Tuple[Tuple[str, ...], ScheduleDecision],
        started: float,
    ) -> ScheduleResponse:
        names, decision = cached
        decision = self._align_decision(decision, names, request.workload)
        return ScheduleResponse(
            decision=decision,
            scheduler_name=self._scheduler_instance().name,
            cache_status="hit",
            measured_wall_time_s=time.perf_counter() - started,  # repro: lint-ignore[RPR002] -- host measurement of cache-hit latency
            request_id=request.request_id,
        )

    @staticmethod
    def _align_decision(
        decision: ScheduleDecision,
        cached_names: Tuple[str, ...],
        workload: Workload,
    ) -> ScheduleDecision:
        """Re-align a cached mapping's rows to a permuted duplicate mix.

        Workload order carries no semantics (networks run
        concurrently), but mapping rows align positionally — a cached
        decision for ``a+b`` answers ``b+a`` after swapping rows.
        """
        if tuple(workload.model_names) == cached_names:
            return decision
        row_of = {name: index for index, name in enumerate(cached_names)}
        rows = [
            decision.mapping.assignments[row_of[name]]
            for name in workload.model_names
        ]
        return replace(decision, mapping=Mapping(rows))

    def _respond_direct(
        self, scheduler: Scheduler, request: ScheduleRequest
    ) -> ScheduleResponse:
        """Non-pooling fallback: one synchronous scheduler call."""
        response = scheduler.respond(request)
        self._account(response.decision)
        key = self._cache_key(request)
        if key is not None:
            self._cache.put(
                key,
                tuple(request.workload.model_names),
                response.decision,
            )
        return replace(
            response,
            cache_status="miss" if key is not None else "bypass",
        )

    def _account(self, decision: ScheduleDecision) -> None:
        cost = decision.cost
        self._stats.estimator_queries += cost.get("estimator_queries", 0.0)
        self._stats.estimator_queries_actual += cost.get(
            "estimator_queries_actual", cost.get("estimator_queries", 0.0)
        )
