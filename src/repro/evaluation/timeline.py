"""Per-event reporting for online scheduling runs: the TimelineReport.

A static comparison table answers "which scheduler won?"; an online
run needs the *time axis*: what did each tenancy change cost to react
to, how long did urgent events wait, how much of the re-planning ran
warm.  :class:`TimelineRecord` captures one trace event's outcome and
:class:`TimelineReport` aggregates them — makespan, per-priority
re-schedule latency, warm/cold split, estimator-query totals — with a
JSON export (:func:`write_timeline_json`) for CI artifacts and offline
analysis.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .reporting import format_table

__all__ = [
    "TimelineRecord",
    "TimelineReport",
    "read_timeline_json",
    "write_timeline_json",
]


@dataclass(frozen=True)
class TimelineRecord:
    """One trace event and the re-scheduling it triggered.

    ``mode`` is ``"warm"``, ``"cold"`` or ``"idle"`` (the board
    emptied; nothing to schedule).  ``evaluations`` is the budget-view
    estimator query count of the re-search (0 when idle),
    ``estimator_queries_actual`` what was actually paid after cache
    savings, ``reschedule_time_s`` the host-measured cost of reacting
    to the event.  Within a coalesced same-timestamp group each event
    carries its own record (and its own concurrently-driven search).
    ``board`` attributes the event to a named board in a fleet replay
    (:meth:`repro.fleet.FleetService.run_trace`); single-board runs
    leave it empty.

    ``action`` is the SLO-enforcement annotation (empty when no
    enforcement ran): ``"rejected"`` / ``"queued"`` for arrivals the
    admission controller turned away, ``"dequeued"`` for a queued
    arrival admitted later, ``"preempted"`` for a resident evicted by
    a higher-priority arrival, ``"expired"`` for a queued tenant whose
    departure arrived before it was ever admitted, and ``"dropped"``
    for the no-op departure of a tenant that was never resident.
    ``slo_ratio`` / ``slo_attained`` annotate an arrival's outcome
    against its throughput floor (``expected_score / floor``; >= 1.0
    attains).  All three serialize only when set, so enforcement-off
    exports stay byte-identical to the pre-SLO format.

    Elastic replays add two more annotation families, serialized only
    when set for the same byte-identity reason: ``fleet_size`` marks a
    fleet-composition change (the size *after* it), and ``action``
    gains ``"board-failed"`` (a :class:`~repro.workloads.trace.ChaosPlan`
    fault, record ``kind="failure"``), ``"recovered"`` (an orphaned
    resident re-placed after a failure), ``"scale-out"`` /
    ``"scale-in"`` (autoscaler moves, record ``kind="scale"``),
    ``"drained"`` (a resident warm-migrated off a retiring board) and
    ``"retired"`` (a manual :meth:`repro.fleet.FleetService.drain_board`).

    ``tier`` is the resilience annotation (:mod:`repro.resilience`):
    the degradation-ladder tier that produced this decision when it was
    *below* the normal serving path — ``"interpreter"``, ``"static"``
    or ``"greedy"`` — and empty for healthy decisions.  Serialized only
    when set, so non-degraded exports stay byte-identical to the
    pre-resilience format.
    """

    index: int
    time_s: float
    kind: str
    tenant_id: str
    model: str
    priority: int
    active_models: Tuple[str, ...]
    mode: str
    expected_score: Optional[float] = None
    seed_reward: Optional[float] = None
    evaluations: float = 0.0
    estimator_queries_actual: float = 0.0
    iterations: int = 0
    stopped_early: bool = False
    reschedule_time_s: float = 0.0
    mapping_rows: Optional[Tuple[Tuple[int, ...], ...]] = None
    board: str = ""
    action: str = ""
    slo_ratio: Optional[float] = None
    slo_attained: Optional[bool] = None
    fleet_size: Optional[int] = None
    tier: str = ""

    def to_dict(self) -> Dict:
        payload = {
            "index": self.index,
            "time_s": self.time_s,
            "kind": self.kind,
            "tenant_id": self.tenant_id,
            "model": self.model,
            "priority": self.priority,
            "active_models": list(self.active_models),
            "mode": self.mode,
            "expected_score": self.expected_score,
            "seed_reward": self.seed_reward,
            "evaluations": self.evaluations,
            "estimator_queries_actual": self.estimator_queries_actual,
            "iterations": self.iterations,
            "stopped_early": self.stopped_early,
            "reschedule_time_s": self.reschedule_time_s,
        }
        if self.mapping_rows is not None:
            payload["mapping_rows"] = [list(row) for row in self.mapping_rows]
        if self.board:
            payload["board"] = self.board
        if self.action:
            payload["action"] = self.action
        if self.slo_ratio is not None:
            payload["slo_ratio"] = self.slo_ratio
            payload["slo_attained"] = self.slo_attained
        if self.fleet_size is not None:
            payload["fleet_size"] = self.fleet_size
        if self.tier:
            payload["tier"] = self.tier
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "TimelineRecord":
        """Inverse of :meth:`to_dict`: ``from_dict(r.to_dict()) == r``.

        This round-trip is the contract the crash-consistent trace
        checkpoint journal (:mod:`repro.resilience.checkpoint`) builds
        on — journaled records must re-serialize byte-identically.
        """
        mapping_rows = payload.get("mapping_rows")
        return cls(
            index=int(payload["index"]),
            time_s=payload["time_s"],
            kind=payload["kind"],
            tenant_id=payload["tenant_id"],
            model=payload["model"],
            priority=int(payload["priority"]),
            active_models=tuple(payload["active_models"]),
            mode=payload["mode"],
            expected_score=payload.get("expected_score"),
            seed_reward=payload.get("seed_reward"),
            evaluations=payload.get("evaluations", 0.0),
            estimator_queries_actual=payload.get(
                "estimator_queries_actual", 0.0
            ),
            iterations=int(payload.get("iterations", 0)),
            stopped_early=bool(payload.get("stopped_early", False)),
            reschedule_time_s=payload.get("reschedule_time_s", 0.0),
            mapping_rows=(
                tuple(tuple(int(d) for d in row) for row in mapping_rows)
                if mapping_rows is not None
                else None
            ),
            board=payload.get("board", ""),
            action=payload.get("action", ""),
            slo_ratio=payload.get("slo_ratio"),
            slo_attained=payload.get("slo_attained"),
            fleet_size=payload.get("fleet_size"),
            tier=payload.get("tier", ""),
        )


@dataclass(frozen=True)
class TimelineReport:
    """The outcome of replaying one trace through a scheduling service."""

    records: Tuple[TimelineRecord, ...]
    trace_name: str = ""
    scheduler_name: str = ""

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def makespan_s(self) -> float:
        """Trace-clock span from the first event to the last."""
        if not self.records:
            return 0.0
        return self.records[-1].time_s - self.records[0].time_s

    @property
    def total_reschedule_time_s(self) -> float:
        """Host seconds spent re-planning across the whole trace."""
        return sum(record.reschedule_time_s for record in self.records)

    @property
    def total_evaluations(self) -> float:
        return sum(record.evaluations for record in self.records)

    @property
    def total_estimator_queries_actual(self) -> float:
        return sum(record.estimator_queries_actual for record in self.records)

    @property
    def warm_fraction(self) -> float:
        """Share of non-idle re-schedules served by the warm path."""
        planned = [r for r in self.records if r.mode != "idle"]
        if not planned:
            return 0.0
        return sum(1 for r in planned if r.mode == "warm") / len(planned)

    @property
    def boards(self) -> Tuple[str, ...]:
        """Board names appearing in the records (fleet replays), sorted."""
        return tuple(sorted({r.board for r in self.records if r.board}))

    def for_board(self, board: str) -> "TimelineReport":
        """The sub-report of one board's events (fleet replays)."""
        return TimelineReport(
            records=tuple(r for r in self.records if r.board == board),
            trace_name=self.trace_name,
            scheduler_name=self.scheduler_name,
        )

    # ------------------------------------------------------------------
    # SLO attainment (records annotated by an SLOPolicy replay)
    # ------------------------------------------------------------------
    @property
    def slo_records(self) -> Tuple[TimelineRecord, ...]:
        """Records carrying an SLO attainment annotation."""
        return tuple(r for r in self.records if r.slo_ratio is not None)

    @property
    def rejected_events(self) -> int:
        return sum(1 for r in self.records if r.action == "rejected")

    @property
    def preempted_events(self) -> int:
        return sum(1 for r in self.records if r.action == "preempted")

    @property
    def queued_events(self) -> int:
        return sum(1 for r in self.records if r.action == "queued")

    # ------------------------------------------------------------------
    # Elastic-fleet annotations (chaos faults and autoscaler moves)
    # ------------------------------------------------------------------
    @property
    def failure_events(self) -> int:
        """Boards killed by a chaos plan during this replay."""
        return sum(1 for r in self.records if r.action == "board-failed")

    @property
    def recovered_events(self) -> int:
        """Orphaned residents re-placed after board failures."""
        return sum(1 for r in self.records if r.action == "recovered")

    @property
    def scale_out_events(self) -> int:
        return sum(1 for r in self.records if r.action == "scale-out")

    @property
    def scale_in_events(self) -> int:
        return sum(1 for r in self.records if r.action == "scale-in")

    @property
    def drained_events(self) -> int:
        """Residents warm-migrated off retiring boards (one per hop)."""
        return sum(
            1
            for r in self.records
            if r.action == "drained" and r.kind == "arrival"
        )

    @property
    def fleet_size_extent(self) -> Optional[Tuple[int, int]]:
        """(min, max) fleet size over the composition-change markers."""
        sizes = [r.fleet_size for r in self.records if r.fleet_size is not None]
        if not sizes:
            return None
        return (min(sizes), max(sizes))

    @property
    def final_fleet_size(self) -> Optional[int]:
        """Fleet size after the last composition change (None if none)."""
        sizes = [r.fleet_size for r in self.records if r.fleet_size is not None]
        return sizes[-1] if sizes else None

    # ------------------------------------------------------------------
    # Resilience annotations (degradation-ladder tiers)
    # ------------------------------------------------------------------
    @property
    def degraded_records(self) -> Tuple[TimelineRecord, ...]:
        """Records whose decision came from a degraded ladder tier."""
        return tuple(r for r in self.records if r.tier)

    @property
    def decisions_by_tier(self) -> Dict[str, int]:
        """Degraded decision counts keyed by ladder tier."""
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.tier:
                counts[record.tier] = counts.get(record.tier, 0) + 1
        return counts

    def slo_attainment_rate(self, priority: Optional[int] = None) -> float:
        """Fraction of SLO-annotated events that attained their target."""
        pool = [
            r
            for r in self.slo_records
            if priority is None or r.priority == priority
        ]
        if not pool:
            return 0.0
        return sum(1 for r in pool if r.slo_attained) / len(pool)

    def slo_attainment_percentiles(
        self,
        percentiles: Sequence[int] = (50, 95, 99),
        priority: Optional[int] = None,
    ) -> Dict[int, float]:
        """pP attainment: the worst ratio among the best P% of events.

        For each requested P, the returned value is the ratio attained
        by the P-th percentile event counted from the *best* — i.e.
        ``p95 >= 1.0`` means 95% of the annotated events met their
        floor.  Exact order statistics (no interpolation), so the
        values are deterministic for seeded replays.  Empty when no
        record carries an annotation (or none matches ``priority``).
        """
        ratios = sorted(
            (
                r.slo_ratio
                for r in self.slo_records
                if priority is None or r.priority == priority
            ),
            reverse=True,
        )
        if not ratios:
            return {}
        result: Dict[int, float] = {}
        for percentile in percentiles:
            if not 0 < percentile <= 100:
                raise ValueError(
                    f"percentiles must be in (0, 100], got {percentile}"
                )
            rank = min(
                len(ratios), max(1, math.ceil(percentile / 100 * len(ratios)))
            )
            result[percentile] = ratios[rank - 1]
        return result

    def per_priority_latency(self) -> Dict[int, float]:
        """Mean re-schedule latency (seconds) per event priority."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for record in self.records:
            if record.mode == "idle":
                continue
            sums[record.priority] = (
                sums.get(record.priority, 0.0) + record.reschedule_time_s
            )
            counts[record.priority] = counts.get(record.priority, 0) + 1
        return {
            priority: sums[priority] / counts[priority]
            for priority in sorted(sums)
        }

    # ------------------------------------------------------------------
    # Rendering / export
    # ------------------------------------------------------------------
    def event_table(self, max_rows: Optional[int] = None) -> str:
        """A human-readable per-event table."""
        rows: List[List[str]] = []
        records = self.records if max_rows is None else self.records[:max_rows]
        for record in records:
            rows.append(
                [
                    f"{record.time_s:.1f}",
                    record.kind,
                    record.model,
                    str(record.priority),
                    str(len(record.active_models)),
                    record.mode,
                    "-"
                    if record.expected_score is None
                    else f"{record.expected_score:.3f}",
                    f"{record.evaluations:.0f}",
                    f"{record.reschedule_time_s * 1000:.0f}",
                ]
            )
        return format_table(
            [
                "t (s)",
                "event",
                "model",
                "prio",
                "active",
                "mode",
                "score",
                "evals",
                "cost ms",
            ],
            rows,
        )

    def summary(self) -> str:
        """A one-paragraph run summary."""
        latencies = ", ".join(
            f"p{priority}: {latency * 1000:.0f}ms"
            for priority, latency in self.per_priority_latency().items()
        )
        text = (
            f"{len(self.records)} events over {self.makespan_s:.1f}s "
            f"({self.trace_name or 'trace'}): "
            f"{self.warm_fraction:.0%} warm re-schedules, "
            f"{self.total_evaluations:.0f} estimator queries budgeted / "
            f"{self.total_estimator_queries_actual:.0f} paid, "
            f"{self.total_reschedule_time_s:.2f}s total re-planning"
            + (f"; mean latency {latencies}" if latencies else "")
        )
        if self.slo_records:
            marks = ", ".join(
                f"p{p}: {ratio:.2f}"
                for p, ratio in self.slo_attainment_percentiles().items()
            )
            text += (
                f"; SLO attainment {self.slo_attainment_rate():.0%} "
                f"({marks}); {self.rejected_events} rejected, "
                f"{self.queued_events} queued, "
                f"{self.preempted_events} preempted"
            )
        if self.fleet_size_extent is not None:
            low, high = self.fleet_size_extent
            text += (
                f"; fleet {low}-{high} boards "
                f"({self.failure_events} failed, "
                f"{self.recovered_events} recovered, "
                f"{self.scale_out_events} scale-outs, "
                f"{self.scale_in_events} scale-ins)"
            )
        if self.degraded_records:
            tiers = ", ".join(
                f"{tier}: {count}"
                for tier, count in sorted(self.decisions_by_tier.items())
            )
            text += (
                f"; {len(self.degraded_records)} degraded decisions "
                f"({tiers})"
            )
        return text

    def to_dict(self) -> Dict:
        payload = {
            "trace_name": self.trace_name,
            "scheduler_name": self.scheduler_name,
            "makespan_s": self.makespan_s,
            "warm_fraction": self.warm_fraction,
            "total_reschedule_time_s": self.total_reschedule_time_s,
            "total_evaluations": self.total_evaluations,
            "total_estimator_queries_actual": (
                self.total_estimator_queries_actual
            ),
            "per_priority_latency_s": {
                str(priority): latency
                for priority, latency in self.per_priority_latency().items()
            },
            "events": [record.to_dict() for record in self.records],
        }
        if self.slo_records:
            payload["slo"] = {
                "attainment_rate": self.slo_attainment_rate(),
                "attainment_percentiles": {
                    f"p{p}": ratio
                    for p, ratio in (
                        self.slo_attainment_percentiles().items()
                    )
                },
                "rejected": self.rejected_events,
                "queued": self.queued_events,
                "preempted": self.preempted_events,
            }
        if self.fleet_size_extent is not None:
            low, high = self.fleet_size_extent
            payload["elastic"] = {
                "fleet_size_min": low,
                "fleet_size_max": high,
                "final_fleet_size": self.final_fleet_size,
                "failures": self.failure_events,
                "recovered": self.recovered_events,
                "scale_outs": self.scale_out_events,
                "scale_ins": self.scale_in_events,
                "drained": self.drained_events,
            }
        if self.degraded_records:
            payload["resilience"] = {
                "degraded_decisions": len(self.degraded_records),
                "decisions_by_tier": {
                    tier: count
                    for tier, count in sorted(
                        self.decisions_by_tier.items()
                    )
                },
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "TimelineReport":
        """Rebuild a report from its :meth:`to_dict` export.

        Only the ``events`` list and identity fields are read — every
        aggregate (and the ``slo``/``elastic``/``resilience`` blocks)
        is re-derived from the records, so a round-tripped report
        re-exports byte-identically.
        """
        return cls(
            records=tuple(
                TimelineRecord.from_dict(record)
                for record in payload["events"]
            ),
            trace_name=payload.get("trace_name", ""),
            scheduler_name=payload.get("scheduler_name", ""),
        )


def write_timeline_json(report: TimelineReport, path: str) -> None:
    """Serialize a report for CI artifacts / offline analysis."""
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2)
        handle.write("\n")


def read_timeline_json(path: str) -> TimelineReport:
    """Inverse of :func:`write_timeline_json` (round-trip contract)."""
    with open(path) as handle:
        return TimelineReport.from_dict(json.load(handle))
