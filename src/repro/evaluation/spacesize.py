"""Design-space size accounting (paper Section II).

The motivational example estimates the mapping space of four concurrent
DNNs with 84 total layers on 3 computing components as
``C(84, 3) ~= 95,000`` and notes the space reaches tens of millions
once the full dataset is considered.  This module provides both that
back-of-envelope count and the exact count of valid contiguous-stage
mappings the schedulers actually search.
"""

from __future__ import annotations

from math import comb
from typing import Sequence

from ..models.graph import ModelGraph

__all__ = [
    "paper_combination_estimate",
    "contiguous_mappings_per_model",
    "total_contiguous_mappings",
    "unrestricted_mappings",
]


def paper_combination_estimate(total_layers: int, num_devices: int) -> int:
    """The paper's ``C(L, D)`` estimate for a mix (Section II)."""
    if total_layers < 0 or num_devices < 0:
        raise ValueError("arguments must be non-negative")
    return comb(total_layers, num_devices)


def contiguous_mappings_per_model(
    num_layers: int, num_devices: int, max_stages: int
) -> int:
    """Exact count of contiguous mappings of one DNN.

    A mapping with ``s`` stages chooses ``s-1`` split points among
    ``num_layers - 1`` positions and an ordered sequence of ``s``
    devices with no two consecutive stages sharing a device:
    ``D * (D-1)^(s-1)`` sequences.
    """
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if max_stages < 1:
        raise ValueError(f"max_stages must be >= 1, got {max_stages}")
    total = 0
    for stages in range(1, min(max_stages, num_layers) + 1):
        split_choices = comb(num_layers - 1, stages - 1)
        device_sequences = num_devices * (num_devices - 1) ** (stages - 1)
        total += split_choices * device_sequences
    return total


def total_contiguous_mappings(
    models: Sequence[ModelGraph], num_devices: int, max_stages: int
) -> int:
    """Size of the joint search space of a mix (product over DNNs)."""
    total = 1
    for model in models:
        total *= contiguous_mappings_per_model(
            model.num_layers, num_devices, max_stages
        )
    return total


def unrestricted_mappings(models: Sequence[ModelGraph], num_devices: int) -> int:
    """All per-layer assignments with no stage cap: ``D^(total layers)``."""
    total_layers = sum(model.num_layers for model in models)
    return num_devices**total_layers
