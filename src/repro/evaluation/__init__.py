"""Evaluation: metrics, comparison harness, runtime accounting, reporting."""

from .charts import BarChart, LineChart, ScatterChart
from .export import (
    comparison_to_dict,
    comparison_to_rows,
    runtime_to_rows,
    write_comparison_csv,
    write_comparison_json,
    write_runtime_csv,
)
from .harness import (
    ComparisonTable,
    EvaluationHarness,
    MixEvaluation,
    SchedulerOutcome,
)
from .metrics import average_throughput, geometric_mean, normalized, speedup
from .pareto import dominates, pareto_front
from .reporting import format_comparison, format_runtime_report, format_table
from .runtime import RuntimeCostModel, RuntimeReport, RuntimeRow
from .timeline import (
    TimelineRecord,
    TimelineReport,
    read_timeline_json,
    write_timeline_json,
)
from .spacesize import (
    contiguous_mappings_per_model,
    paper_combination_estimate,
    total_contiguous_mappings,
    unrestricted_mappings,
)

__all__ = [
    "BarChart",
    "dominates",
    "pareto_front",
    "LineChart",
    "ScatterChart",
    "ComparisonTable",
    "EvaluationHarness",
    "MixEvaluation",
    "RuntimeCostModel",
    "RuntimeReport",
    "RuntimeRow",
    "SchedulerOutcome",
    "TimelineRecord",
    "TimelineReport",
    "average_throughput",
    "comparison_to_dict",
    "comparison_to_rows",
    "runtime_to_rows",
    "write_comparison_csv",
    "write_comparison_json",
    "write_runtime_csv",
    "contiguous_mappings_per_model",
    "format_comparison",
    "format_runtime_report",
    "format_table",
    "geometric_mean",
    "normalized",
    "paper_combination_estimate",
    "speedup",
    "total_contiguous_mappings",
    "unrestricted_mappings",
    "read_timeline_json",
    "write_timeline_json",
]
