"""Machine-readable exports of evaluation artifacts.

Reproduction runs should leave auditable traces: these helpers write
comparison tables and runtime reports as CSV or JSON so figures can be
re-plotted and results diffed across code versions.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from .harness import ComparisonTable
from .runtime import RuntimeReport

__all__ = [
    "comparison_to_rows",
    "write_comparison_csv",
    "comparison_to_dict",
    "write_comparison_json",
    "runtime_to_rows",
    "write_runtime_csv",
]


def comparison_to_rows(table: ComparisonTable) -> List[List[object]]:
    """Header + per-mix normalized rows + the Average row."""
    names = list(table.scheduler_names)
    rows: List[List[object]] = [["mix"] + names]
    for evaluation in table.evaluations:
        rows.append(
            [evaluation.mix_name]
            + [
                evaluation.outcome(name).normalized_throughput
                for name in names
            ]
        )
    rows.append(["Average"] + [table.average(name) for name in names])
    return rows


def write_comparison_csv(table: ComparisonTable, path: str) -> None:
    """Write a Fig.-5-style table as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerows(comparison_to_rows(table))


def comparison_to_dict(table: ComparisonTable) -> Dict:
    """A JSON-friendly dump including raw measured throughput."""
    return {
        "schedulers": list(table.scheduler_names),
        "mixes": [
            {
                "name": evaluation.mix_name,
                "models": list(evaluation.workload.model_names),
                "results": {
                    outcome.scheduler_name: {
                        "average_throughput": outcome.average_throughput,
                        "normalized": outcome.normalized_throughput,
                        "cost": dict(outcome.decision.cost),
                    }
                    for outcome in evaluation.outcomes
                },
            }
            for evaluation in table.evaluations
        ],
        "averages": table.averages(),
    }


def write_comparison_json(table: ComparisonTable, path: str) -> None:
    """Write the full comparison (raw + normalized) as JSON."""
    with open(path, "w") as handle:
        json.dump(comparison_to_dict(table), handle, indent=2, sort_keys=True)


def runtime_to_rows(report: RuntimeReport) -> List[List[object]]:
    """Header + one row per (mix, scheduler) runtime record."""
    rows: List[List[object]] = [
        ["scheduler", "host_wall_s", "board_decision_s", "one_time_cost_s"]
    ]
    for row in report.rows:
        rows.append(
            [
                row.scheduler_name,
                row.host_wall_time_s,
                row.board_decision_time_s,
                row.one_time_cost_s,
            ]
        )
    return rows


def write_runtime_csv(report: RuntimeReport, path: str) -> None:
    """Write the Section V-B runtime report as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerows(runtime_to_rows(report))
