"""Minimal SVG charts for regenerating the paper's figures.

matplotlib is not available in the reproduction environment, so this
module renders the three chart shapes the paper uses -- line charts
(Fig. 4 loss curves), grouped bar charts (Fig. 5 normalized
throughput) and scatter/series charts (Fig. 1 motivational sweep) --
as standalone SVG documents with pure Python.

The goal is faithful, legible figures, not a plotting library: fixed
layout, automatic "nice" axis ticks, a small color palette, and a
legend.  ``examples/make_figures.py`` uses these to write every paper
figure to ``figures/*.svg``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

__all__ = ["LineChart", "BarChart", "ScatterChart"]

#: Default figure geometry (pixels).
_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 56

#: Colorblind-friendly palette (Okabe-Ito).
_PALETTE = (
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#D55E00",
    "#CC79A7",
    "#56B4E9",
    "#F0E442",
    "#000000",
)


def _nice_ticks(low: float, high: float, target: int = 6) -> List[float]:
    """Round tick positions covering [low, high] (a classic nice-number axis)."""
    if math.isclose(low, high):
        high = low + 1.0
    span = high - low
    raw_step = span / max(target - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    value = first
    while value <= high + step * 1e-9:
        if value >= low - step * 1e-9:
            ticks.append(round(value, 10))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


@dataclass
class _Series:
    name: str
    xs: List[float]
    ys: List[float]


class _ChartBase:
    """Shared frame: title, axes, ticks, legend, SVG assembly."""

    def __init__(
        self,
        title: str,
        x_label: str = "",
        y_label: str = "",
        width: int = _WIDTH,
        height: int = _HEIGHT,
    ) -> None:
        if width <= _MARGIN_LEFT + _MARGIN_RIGHT:
            raise ValueError(f"width {width} too small")
        if height <= _MARGIN_TOP + _MARGIN_BOTTOM:
            raise ValueError(f"height {height} too small")
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height

    # -- plotting area ------------------------------------------------
    @property
    def _plot_left(self) -> float:
        return _MARGIN_LEFT

    @property
    def _plot_right(self) -> float:
        return self.width - _MARGIN_RIGHT

    @property
    def _plot_top(self) -> float:
        return _MARGIN_TOP

    @property
    def _plot_bottom(self) -> float:
        return self.height - _MARGIN_BOTTOM

    def _x_px(self, value: float, low: float, high: float) -> float:
        span = max(high - low, 1e-12)
        fraction = (value - low) / span
        return self._plot_left + fraction * (self._plot_right - self._plot_left)

    def _y_px(self, value: float, low: float, high: float) -> float:
        span = max(high - low, 1e-12)
        fraction = (value - low) / span
        return self._plot_bottom - fraction * (self._plot_bottom - self._plot_top)

    # -- SVG fragments -------------------------------------------------
    def _frame(self) -> List[str]:
        return [
            f'<rect x="0" y="0" width="{self.width}" height="{self.height}" '
            'fill="white"/>',
            f'<text x="{self.width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-size="15" font-family="sans-serif" font-weight="bold">'
            f"{escape(self.title)}</text>",
        ]

    def _axes(self, y_ticks: Sequence[float], y_low: float, y_high: float) -> List[str]:
        parts = [
            f'<line x1="{self._plot_left}" y1="{self._plot_bottom}" '
            f'x2="{self._plot_right}" y2="{self._plot_bottom}" stroke="black"/>',
            f'<line x1="{self._plot_left}" y1="{self._plot_top}" '
            f'x2="{self._plot_left}" y2="{self._plot_bottom}" stroke="black"/>',
        ]
        for tick in y_ticks:
            y = self._y_px(tick, y_low, y_high)
            parts.append(
                f'<line x1="{self._plot_left - 4}" y1="{y:.1f}" '
                f'x2="{self._plot_right}" y2="{y:.1f}" '
                'stroke="#dddddd" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{self._plot_left - 8}" y="{y + 4:.1f}" '
                'text-anchor="end" font-size="11" font-family="sans-serif">'
                f"{_format_tick(tick)}</text>"
            )
        if self.x_label:
            parts.append(
                f'<text x="{(self._plot_left + self._plot_right) / 2:.1f}" '
                f'y="{self.height - 12}" text-anchor="middle" font-size="12" '
                f'font-family="sans-serif">{escape(self.x_label)}</text>'
            )
        if self.y_label:
            x = 16
            y = (self._plot_top + self._plot_bottom) / 2
            parts.append(
                f'<text x="{x}" y="{y:.1f}" text-anchor="middle" '
                f'font-size="12" font-family="sans-serif" '
                f'transform="rotate(-90 {x} {y:.1f})">{escape(self.y_label)}</text>'
            )
        return parts

    def _legend(self, names: Sequence[str]) -> List[str]:
        parts = []
        x = self._plot_left + 10
        y = self._plot_top + 6
        for index, name in enumerate(names):
            color = _PALETTE[index % len(_PALETTE)]
            parts.append(
                f'<rect x="{x}" y="{y + index * 18}" width="12" height="12" '
                f'fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + 18}" y="{y + index * 18 + 10}" font-size="12" '
                f'font-family="sans-serif">{escape(name)}</text>'
            )
        return parts

    def _document(self, body: Sequence[str]) -> str:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">'
            + "".join(body)
            + "</svg>"
        )

    def save(self, path: str) -> None:
        """Write the rendered SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    def render(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class LineChart(_ChartBase):
    """Multi-series line chart (the Fig.-4 loss curves)."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "", **kwargs) -> None:
        super().__init__(title, x_label, y_label, **kwargs)
        self._series: List[_Series] = []

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> "LineChart":
        """Append one named polyline (chainable)."""
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        self._series.append(_Series(name, xs, ys))
        return self

    def render(self) -> str:
        """Render the chart as a standalone SVG document string."""
        if not self._series:
            raise ValueError("no series to render")
        x_low = min(min(s.xs) for s in self._series)
        x_high = max(max(s.xs) for s in self._series)
        y_low = min(min(s.ys) for s in self._series)
        y_high = max(max(s.ys) for s in self._series)
        y_ticks = _nice_ticks(min(y_low, 0.0 if y_low > 0 else y_low), y_high)
        y_low = min(y_ticks[0], y_low)
        y_high = max(y_ticks[-1], y_high)
        body = self._frame() + self._axes(y_ticks, y_low, y_high)
        for tick in _nice_ticks(x_low, x_high):
            x = self._x_px(tick, x_low, x_high)
            body.append(
                f'<text x="{x:.1f}" y="{self._plot_bottom + 16}" '
                'text-anchor="middle" font-size="11" font-family="sans-serif">'
                f"{_format_tick(tick)}</text>"
            )
        for index, series in enumerate(self._series):
            color = _PALETTE[index % len(_PALETTE)]
            points = " ".join(
                f"{self._x_px(x, x_low, x_high):.1f},"
                f"{self._y_px(y, y_low, y_high):.1f}"
                for x, y in zip(series.xs, series.ys)
            )
            body.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                'stroke-width="2"/>'
            )
        body += self._legend([series.name for series in self._series])
        return self._document(body)


class ScatterChart(_ChartBase):
    """Point series (the Fig.-1 motivational sweep), with optional
    horizontal reference lines (e.g. the baseline at 1.0)."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "", **kwargs) -> None:
        super().__init__(title, x_label, y_label, **kwargs)
        self._series: List[_Series] = []
        self._reference_lines: List[Tuple[str, float]] = []

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> "ScatterChart":
        """Append one named point cloud (chainable)."""
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        self._series.append(_Series(name, xs, ys))
        return self

    def add_reference_line(self, name: str, y: float) -> "ScatterChart":
        """Add a labeled dashed horizontal line (e.g. the baseline)."""
        self._reference_lines.append((name, float(y)))
        return self

    def render(self) -> str:
        """Render the chart as a standalone SVG document string."""
        if not self._series:
            raise ValueError("no series to render")
        x_low = min(min(s.xs) for s in self._series)
        x_high = max(max(s.xs) for s in self._series)
        y_values = [y for s in self._series for y in s.ys]
        y_values += [y for _, y in self._reference_lines]
        y_ticks = _nice_ticks(min(y_values), max(y_values))
        y_low = min(y_ticks[0], min(y_values))
        y_high = max(y_ticks[-1], max(y_values))
        body = self._frame() + self._axes(y_ticks, y_low, y_high)
        for tick in _nice_ticks(x_low, x_high):
            x = self._x_px(tick, x_low, x_high)
            body.append(
                f'<text x="{x:.1f}" y="{self._plot_bottom + 16}" '
                'text-anchor="middle" font-size="11" font-family="sans-serif">'
                f"{_format_tick(tick)}</text>"
            )
        for index, series in enumerate(self._series):
            color = _PALETTE[index % len(_PALETTE)]
            for x, y in zip(series.xs, series.ys):
                body.append(
                    f'<circle cx="{self._x_px(x, x_low, x_high):.1f}" '
                    f'cy="{self._y_px(y, y_low, y_high):.1f}" r="2.5" '
                    f'fill="{color}" fill-opacity="0.75"/>'
                )
        for name, y_value in self._reference_lines:
            y = self._y_px(y_value, y_low, y_high)
            body.append(
                f'<line x1="{self._plot_left}" y1="{y:.1f}" '
                f'x2="{self._plot_right}" y2="{y:.1f}" stroke="#D55E00" '
                'stroke-width="1.5" stroke-dasharray="6,4"/>'
            )
            body.append(
                f'<text x="{self._plot_right - 4}" y="{y - 5:.1f}" '
                'text-anchor="end" font-size="11" font-family="sans-serif" '
                f'fill="#D55E00">{escape(name)}</text>'
            )
        body += self._legend([series.name for series in self._series])
        return self._document(body)


class BarChart(_ChartBase):
    """Grouped bar chart (the Fig.-5 normalized-throughput panels).

    Categories go along the x axis (mix-1..mix-5, Average); each call
    to :meth:`add_group` adds one bar per category (Baseline, MOSAIC,
    GA, OmniBoost).
    """

    def __init__(
        self,
        title: str,
        categories: Sequence[str],
        y_label: str = "",
        **kwargs,
    ) -> None:
        super().__init__(title, "", y_label, **kwargs)
        if not categories:
            raise ValueError("need at least one category")
        self.categories = [str(c) for c in categories]
        self._groups: List[Tuple[str, List[float]]] = []

    def add_group(self, name: str, values: Sequence[float]) -> "BarChart":
        """Append one bar group (one value per category; chainable)."""
        values = [float(v) for v in values]
        if len(values) != len(self.categories):
            raise ValueError(
                f"group {name!r} has {len(values)} values for "
                f"{len(self.categories)} categories"
            )
        self._groups.append((name, values))
        return self

    def render(self) -> str:
        """Render the chart as a standalone SVG document string."""
        if not self._groups:
            raise ValueError("no groups to render")
        y_high = max(max(values) for _, values in self._groups)
        y_ticks = _nice_ticks(0.0, y_high)
        y_low = 0.0
        y_high = max(y_ticks[-1], y_high)
        body = self._frame() + self._axes(y_ticks, y_low, y_high)
        num_categories = len(self.categories)
        num_groups = len(self._groups)
        slot_width = (self._plot_right - self._plot_left) / num_categories
        bar_width = slot_width * 0.8 / num_groups
        for category_index, category in enumerate(self.categories):
            slot_left = self._plot_left + category_index * slot_width
            body.append(
                f'<text x="{slot_left + slot_width / 2:.1f}" '
                f'y="{self._plot_bottom + 16}" text-anchor="middle" '
                f'font-size="11" font-family="sans-serif">{escape(category)}</text>'
            )
            for group_index, (_, values) in enumerate(self._groups):
                color = _PALETTE[group_index % len(_PALETTE)]
                value = values[category_index]
                top = self._y_px(value, y_low, y_high)
                x = slot_left + slot_width * 0.1 + group_index * bar_width
                body.append(
                    f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_width:.1f}" '
                    f'height="{max(self._plot_bottom - top, 0):.1f}" '
                    f'fill="{color}"/>'
                )
        body += self._legend([name for name, _ in self._groups])
        return self._document(body)
