"""Decision-latency accounting (paper Section V-B).

The paper compares run-time behaviour qualitatively: the baseline
decides instantly; MOSAIC answers one regression query (~1 s) but paid
a >14,000-point data-collection campaign up front; the GA re-evolves
per workload with board-measured fitness (~5 minutes per mix);
OmniBoost issues a constant 500 estimator queries (~30 s on-device)
and never retrains.

Because this reproduction runs on a host machine instead of the board,
each scheduler reports *cost counters* (estimator queries, board
measurements, regression queries, training points) and this module
converts them into modeled on-board decision time using per-operation
costs calibrated from the paper's own numbers:

* ``ga_evaluation_s = 0.5`` -- the GA's ~5 min / (24 x 25) fitness
  evaluations (static-model pipeline simulation plus the stage-merge
  optimization layer, on the board's CPU);
* ``estimator_query_s = 0.06`` -- OmniBoost's ~30 s / 500 queries;
* ``regression_query_s = 1.0`` -- MOSAIC's "really low (~1 sec)"
  inference;
* ``training_point_s = 0.01`` -- MOSAIC's data collection, "a notable
  time interval" (~2.4 min at 14k points), reported as one-time cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .harness import MixEvaluation

__all__ = ["RuntimeCostModel", "RuntimeReport", "RuntimeRow"]


@dataclass(frozen=True)
class RuntimeRow:
    """Modeled run-time profile of one scheduler on one mix."""

    scheduler_name: str
    host_wall_time_s: float
    board_decision_time_s: float
    one_time_cost_s: float
    counters: Dict[str, float]


@dataclass
class RuntimeReport:
    """Rows for every (mix, scheduler) pair plus per-scheduler means."""

    rows: List[RuntimeRow]

    def mean_decision_time(self, scheduler_name: str) -> float:
        times = [
            row.board_decision_time_s
            for row in self.rows
            if row.scheduler_name == scheduler_name
        ]
        if not times:
            raise KeyError(f"no rows for scheduler {scheduler_name!r}")
        return sum(times) / len(times)

    def scheduler_names(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.scheduler_name not in seen:
                seen.append(row.scheduler_name)
        return seen


class RuntimeCostModel:
    """Maps decision-cost counters to modeled on-board seconds."""

    def __init__(
        self,
        ga_evaluation_s: float = 0.5,
        estimator_query_s: float = 0.06,
        regression_query_s: float = 1.0,
        training_point_s: float = 0.01,
    ) -> None:
        for label, value in (
            ("ga_evaluation_s", ga_evaluation_s),
            ("estimator_query_s", estimator_query_s),
            ("regression_query_s", regression_query_s),
            ("training_point_s", training_point_s),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        self.ga_evaluation_s = ga_evaluation_s
        self.estimator_query_s = estimator_query_s
        self.regression_query_s = regression_query_s
        self.training_point_s = training_point_s

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def decision_time(self, cost: Dict[str, float]) -> float:
        """Per-query on-board decision seconds implied by the counters.

        MOSAIC's regression queries are priced as one batched query (a
        single forward pass through the linear model answers the whole
        workload, which is how the real system behaves).
        """
        seconds = 0.0
        seconds += cost.get("fitness_evaluations", 0.0) * self.ga_evaluation_s
        seconds += cost.get("estimator_queries", 0.0) * self.estimator_query_s
        if cost.get("regression_queries", 0.0) > 0:
            seconds += self.regression_query_s
        return seconds

    def one_time_cost(self, cost: Dict[str, float]) -> float:
        """Up-front (design-time) seconds implied by the counters."""
        return cost.get("training_points", 0.0) * self.training_point_s

    def report(self, evaluations: Sequence[MixEvaluation]) -> RuntimeReport:
        """Build the Section V-B table from harness evaluations."""
        rows: List[RuntimeRow] = []
        for evaluation in evaluations:
            for outcome in evaluation.outcomes:
                cost = outcome.decision.cost
                rows.append(
                    RuntimeRow(
                        scheduler_name=outcome.scheduler_name,
                        host_wall_time_s=outcome.decision.wall_time_s,
                        board_decision_time_s=self.decision_time(cost),
                        one_time_cost_s=self.one_time_cost(cost),
                        counters=dict(cost),
                    )
                )
        return RuntimeReport(rows=rows)
