"""Plain-text rendering of tables and figure series.

Benches print the same rows/series the paper's figures plot; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence

from .harness import ComparisonTable
from .runtime import RuntimeReport

__all__ = ["format_table", "format_comparison", "format_runtime_report"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    columns = [list(map(_render, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_cells = [h.ljust(w) for h, w in zip(map(_render, headers), widths)]
    lines.append("  ".join(header_cells).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        cells = [
            _render(value).ljust(width) for value, width in zip(row, widths)
        ]
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def format_comparison(table: ComparisonTable, title: str = "") -> str:
    """Render a Fig.-5-style subplot: per-mix normalized throughput."""
    names = table.scheduler_names
    headers = ["mix"] + list(names)
    rows: List[List[object]] = []
    for evaluation in table.evaluations:
        rows.append(
            [evaluation.mix_name]
            + [
                f"{evaluation.outcome(name).normalized_throughput:.2f}"
                for name in names
            ]
        )
    rows.append(
        ["Average"] + [f"{table.average(name):.2f}" for name in names]
    )
    body = format_table(headers, rows)
    return f"{title}\n{body}" if title else body


def format_runtime_report(report: RuntimeReport) -> str:
    """Render the Section V-B run-time comparison."""
    headers = [
        "scheduler",
        "host wall (s)",
        "board decision (s)",
        "one-time cost (s)",
    ]
    rows: List[List[object]] = []
    for name in report.scheduler_names():
        scheduler_rows = [
            row for row in report.rows if row.scheduler_name == name
        ]
        host = sum(row.host_wall_time_s for row in scheduler_rows) / len(
            scheduler_rows
        )
        board = report.mean_decision_time(name)
        one_time = max(row.one_time_cost_s for row in scheduler_rows)
        rows.append([name, f"{host:.2f}", f"{board:.1f}", f"{one_time:.0f}"])
    return format_table(headers, rows)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
