"""Mix-comparison harness: the machinery behind Fig. 5a/5b/5c.

For each mix, every scheduler produces a mapping, the mapping is
*deployed* (measured on the board simulator), and throughputs are
normalized to the GPU-only baseline of the same mix -- the exact
protocol of the paper's Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import ScheduleDecision, Scheduler
from ..sim.simulator import BoardSimulator, SimulationResult
from ..workloads.mix import Workload
from .metrics import normalized

__all__ = ["SchedulerOutcome", "MixEvaluation", "ComparisonTable", "EvaluationHarness"]


@dataclass(frozen=True)
class SchedulerOutcome:
    """One scheduler's result on one mix."""

    scheduler_name: str
    decision: ScheduleDecision
    measurement: SimulationResult
    normalized_throughput: float

    @property
    def average_throughput(self) -> float:
        return self.measurement.average_throughput


@dataclass(frozen=True)
class MixEvaluation:
    """All schedulers' outcomes on one mix."""

    mix_name: str
    workload: Workload
    outcomes: Tuple[SchedulerOutcome, ...]

    def outcome(self, scheduler_name: str) -> SchedulerOutcome:
        for outcome in self.outcomes:
            if outcome.scheduler_name == scheduler_name:
                return outcome
        raise KeyError(f"no outcome for scheduler {scheduler_name!r}")

    @property
    def scheduler_names(self) -> Tuple[str, ...]:
        return tuple(outcome.scheduler_name for outcome in self.outcomes)


@dataclass
class ComparisonTable:
    """The data behind one Fig.-5 subplot: mixes x schedulers."""

    evaluations: List[MixEvaluation] = field(default_factory=list)

    @property
    def scheduler_names(self) -> Tuple[str, ...]:
        if not self.evaluations:
            return ()
        return self.evaluations[0].scheduler_names

    def normalized_series(self, scheduler_name: str) -> List[float]:
        """Per-mix normalized throughput of one scheduler."""
        return [
            evaluation.outcome(scheduler_name).normalized_throughput
            for evaluation in self.evaluations
        ]

    def average(self, scheduler_name: str) -> float:
        """The figure's "Average" bar for one scheduler."""
        series = self.normalized_series(scheduler_name)
        return float(np.mean(series))

    def averages(self) -> Dict[str, float]:
        return {name: self.average(name) for name in self.scheduler_names}

    def relative_gain(self, scheduler_a: str, scheduler_b: str) -> float:
        """Average of per-mix ratios ``a / b`` (how the paper quotes gains)."""
        series_a = self.normalized_series(scheduler_a)
        series_b = self.normalized_series(scheduler_b)
        return float(
            np.mean([a / b for a, b in zip(series_a, series_b)])
        )


class EvaluationHarness:
    """Runs schedulers over mixes and measures their mappings."""

    def __init__(
        self,
        simulator: BoardSimulator,
        schedulers: Sequence[Scheduler],
        baseline_name: str = "Baseline",
        measurement_seed: Optional[int] = 500,
    ) -> None:
        if not schedulers:
            raise ValueError("need at least one scheduler")
        names = [scheduler.name for scheduler in schedulers]
        if len(set(names)) != len(names):
            raise ValueError(f"scheduler names must be unique, got {names}")
        if baseline_name not in names:
            raise ValueError(
                f"baseline {baseline_name!r} missing from schedulers {names}"
            )
        self.simulator = simulator
        self.schedulers = list(schedulers)
        self.baseline_name = baseline_name
        self.measurement_seed = measurement_seed

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_mix(self, workload: Workload, mix_name: str = "") -> MixEvaluation:
        """Schedule + deploy every scheduler on one mix."""
        decisions = [
            (scheduler.name, scheduler.schedule(workload))
            for scheduler in self.schedulers
        ]
        measurements = {}
        for name, decision in decisions:
            rng = (
                np.random.default_rng(self.measurement_seed)
                if self.measurement_seed is not None
                else None
            )
            measurements[name] = self.simulator.measure(
                workload.models, decision.mapping, rng=rng
            )
        baseline_throughput = measurements[self.baseline_name].average_throughput
        outcomes = tuple(
            SchedulerOutcome(
                scheduler_name=name,
                decision=decision,
                measurement=measurements[name],
                normalized_throughput=normalized(
                    measurements[name].average_throughput, baseline_throughput
                ),
            )
            for name, decision in decisions
        )
        return MixEvaluation(
            mix_name=mix_name or workload.name, workload=workload, outcomes=outcomes
        )

    def evaluate_mixes(
        self, workloads: Sequence[Workload], mix_prefix: str = "mix"
    ) -> ComparisonTable:
        """Evaluate a family of mixes (one Fig.-5 subplot)."""
        table = ComparisonTable()
        for index, workload in enumerate(workloads, start=1):
            table.evaluations.append(
                self.evaluate_mix(workload, mix_name=f"{mix_prefix}-{index}")
            )
        return table
