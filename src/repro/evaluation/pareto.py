"""Pareto-front utilities for multi-objective scheduling comparisons.

The energy extension turns scheduling into a two-objective problem
(throughput up, board power down); examples and benches use
:func:`pareto_front` to mark the non-dominated operating points of an
objective sweep.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["dominates", "pareto_front"]


def _oriented(
    point: Sequence[float], maximize: Sequence[bool]
) -> Tuple[float, ...]:
    """Flip minimized coordinates so domination is uniformly >=."""
    return tuple(
        value if keep_max else -value
        for value, keep_max in zip(point, maximize)
    )


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    maximize: Sequence[bool],
) -> bool:
    """True if ``a`` Pareto-dominates ``b``.

    ``maximize[k]`` selects the direction of objective ``k`` (True =
    larger is better).  Domination is the usual weak-inequality form:
    at least as good everywhere and strictly better somewhere.
    """
    if len(a) != len(b) or len(a) != len(maximize):
        raise ValueError(
            f"dimension mismatch: |a|={len(a)}, |b|={len(b)}, "
            f"|maximize|={len(maximize)}"
        )
    if len(a) == 0:
        raise ValueError("points must have at least one objective")
    oriented_a = _oriented(a, maximize)
    oriented_b = _oriented(b, maximize)
    at_least_as_good = all(x >= y for x, y in zip(oriented_a, oriented_b))
    strictly_better = any(x > y for x, y in zip(oriented_a, oriented_b))
    return at_least_as_good and strictly_better


def pareto_front(
    points: Sequence[Sequence[float]],
    maximize: Sequence[bool],
) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Duplicate points are all kept (none strictly dominates another).
    """
    if not points:
        raise ValueError("need at least one point")
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {array.shape}")
    if array.shape[1] != len(maximize):
        raise ValueError(
            f"{array.shape[1]}-objective points with {len(maximize)} directions"
        )
    front = []
    for index, candidate in enumerate(array):
        if not any(
            dominates(other, candidate, maximize)
            for other_index, other in enumerate(array)
            if other_index != index
        ):
            front.append(index)
    return front
