"""Throughput metrics and normalization (paper Section V-A).

The paper's headline metric is the mix-average throughput
``T = (1/M) * sum_i INF_i/sec`` and everything in Fig. 5 is reported
*normalized* to the GPU-only baseline of the same mix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "average_throughput",
    "normalized",
    "speedup",
    "geometric_mean",
]


def average_throughput(rates: Sequence[float]) -> float:
    """The paper's ``T``: mean per-DNN inferences/second of a mix."""
    rates = np.asarray(list(rates), dtype=float)
    if rates.size == 0:
        raise ValueError("cannot average an empty rate vector")
    if (rates < 0).any():
        raise ValueError("rates must be non-negative")
    return float(rates.mean())


def normalized(value: float, baseline: float) -> float:
    """``value / baseline`` with a defensive check on the denominator."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return value / baseline


def speedup(value: float, reference: float) -> float:
    """Alias of :func:`normalized` with speedup naming."""
    return normalized(value, reference)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (for cross-mix speedup summaries)."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("cannot take the geometric mean of nothing")
    if (values <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(values).mean()))
