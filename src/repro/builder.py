"""Lazy, composable system assembly: the :class:`SystemBuilder`.

``build_system()`` (the original entry point, now a thin shim in
:mod:`repro.pipeline`) profiles the zoo and trains the estimator the
moment it is called — minutes of work even when the caller only wanted
the GPU-only baseline.  The builder splits assembly into explicit,
individually *lazy* stages::

    from repro import SystemBuilder

    builder = (
        SystemBuilder(seed=0)
        .with_models(["alexnet", "vgg19", "mobilenet"])
        .with_estimator(num_training_samples=300, epochs=20)
    )
    scheduler = builder.build_scheduler("omniboost")   # trains here
    system = builder.build()                           # reuses artifacts

Nothing is profiled, embedded or trained until an artifact is first
touched; every artifact is computed once and cached, so interleaving
``build_scheduler`` calls, direct artifact access and a final
``build()`` never repeats design-time work.  Stage configuration
(``with_*``) is only legal before the stage it feeds has
materialized — reconfiguring a built stage raises instead of silently
returning stale artifacts.

Seeds mirror ``build_system()`` exactly (profiling ``seed``, estimator
init ``seed+1``, workloads ``seed+2``, measurement ``seed+3``,
training ``seed+4``, MCTS ``seed+5``, MOSAIC fit ``seed+6``, GA
``seed+7``), so the shim and the builder produce identical systems.

Schedulers come from the name-based registry
(:mod:`repro.core.registry`): by default a built system carries every
registered scheduler in registration order, so user-registered
schedulers join the paper's comparison set automatically;
:meth:`SystemBuilder.with_scheduler` narrows the selection (and can
register an inline factory in one call).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from .baselines.ga import GAConfig, GeneticScheduler, StaticCostModel
from .baselines.gpu_only import GpuOnlyScheduler
from .baselines.mosaic import LayerLatencyRegression, MosaicScheduler
from .core.base import Scheduler
from .core.mcts import MCTSConfig
from .core.registry import SchedulerFactory, available_schedulers, get_scheduler, register_scheduler
from .core.scheduler import OmniBoostScheduler
from .estimator.embedding import EmbeddingSpace
from .estimator.model import ThroughputEstimator
from .estimator.training import (
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    TrainingHistory,
)
from .hw.platform_ import Platform
from .hw.presets import hikey970
from .models.registry import MODEL_NAMES, build_all_models
from .sim.profiler import KernelProfiler, LatencyTable
from .sim.simulator import BoardSimulator, SimConfig
from .workloads.generator import WorkloadGenerator

__all__ = ["OmniBoostSystem", "SystemBuilder"]


@dataclass
class OmniBoostSystem:
    """Everything assembled: board, estimator, schedulers, generator."""

    platform: Platform
    simulator: BoardSimulator
    profiler: KernelProfiler
    latency_table: LatencyTable
    embedding: EmbeddingSpace
    estimator: ThroughputEstimator
    training_history: Optional[TrainingHistory]
    generator: WorkloadGenerator
    omniboost: Optional[OmniBoostScheduler]
    baseline: Optional[GpuOnlyScheduler]
    mosaic: Optional[MosaicScheduler]
    ga: Optional[GeneticScheduler]
    #: Registry-ordered name -> instance map.  ``None`` only for
    #: systems assembled by hand from the four named fields.
    scheduler_map: Optional[Dict[str, Scheduler]] = field(default=None)

    @property
    def schedulers(self) -> Tuple[Scheduler, ...]:
        """All comparison schedulers, registry order (paper order first).

        Backed by :attr:`scheduler_map`, so any scheduler registered
        via :func:`repro.core.registry.register_scheduler` before the
        system was built is included automatically.
        """
        if self.scheduler_map is not None:
            return tuple(self.scheduler_map.values())
        return tuple(
            scheduler
            for scheduler in (self.baseline, self.mosaic, self.ga, self.omniboost)
            if scheduler is not None
        )

    def scheduler(self, name: str) -> Scheduler:
        """Look up one of this system's schedulers by registry name."""
        canonical = name.strip().lower()
        if self.scheduler_map is not None and canonical in self.scheduler_map:
            return self.scheduler_map[canonical]
        for scheduler in self.schedulers:
            if scheduler.name.lower() == canonical:
                return scheduler
        known = sorted(
            self.scheduler_map if self.scheduler_map is not None
            else [s.name.lower() for s in self.schedulers]
        )
        raise KeyError(f"system has no scheduler {name!r}; known: {known}")


class SystemBuilder:
    """Composable, lazily-evaluated replacement for ``build_system()``.

    See the module docstring for the stage model.  All ``with_*``
    methods return ``self`` for chaining.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._platform: Optional[Platform] = None
        self._model_names: Tuple[str, ...] = tuple(MODEL_NAMES)
        self._sim_config: Optional[SimConfig] = None
        self._mcts_config: Optional[MCTSConfig] = None
        self._ga_config: Optional[GAConfig] = None
        self._train = True
        self._num_training_samples = 500
        self._epochs = 100
        self._measurement_repetitions = 3
        self._reserve_layers = 0
        self._reserve_models = 0
        self._use_compiled = True
        self._checkpoint: Optional[str] = None
        self._selected: Optional[list] = None  # None = every registered name
        self._artifacts: Dict[str, Any] = {}
        self._schedulers: Dict[str, Scheduler] = {}

    # ------------------------------------------------------------------
    # Stage configuration (fluent; legal before the stage materializes)
    # ------------------------------------------------------------------
    def _require_unbuilt(self, *stages: str) -> None:
        built = [stage for stage in stages if stage in self._artifacts]
        if built:
            raise RuntimeError(
                f"stage(s) {built} already built; configure the builder "
                "before touching its artifacts"
            )

    def with_seed(self, seed: int) -> "SystemBuilder":
        if self._artifacts:
            raise RuntimeError("seed must be set before any artifact is built")
        self.seed = seed
        return self

    def with_platform(self, platform: Platform) -> "SystemBuilder":
        self._require_unbuilt("platform")
        self._platform = platform
        return self

    def with_models(self, model_names: Sequence[str]) -> "SystemBuilder":
        self._require_unbuilt(
            "models",
            "latency_table",
            "embedding",
            "estimator",
            "generator",
            "mosaic_regression",
            "trained",
        )
        self._model_names = tuple(model_names)
        return self

    def with_sim_config(self, config: SimConfig) -> "SystemBuilder":
        self._require_unbuilt("simulator")
        self._sim_config = config
        return self

    def with_mcts_config(self, config: MCTSConfig) -> "SystemBuilder":
        self._require_unbuilt("mcts_config")
        self._mcts_config = config
        return self

    def with_ga_config(self, config: GAConfig) -> "SystemBuilder":
        self._require_unbuilt("ga_config")
        self._ga_config = config
        return self

    def with_estimator(
        self,
        num_training_samples: int = 500,
        epochs: int = 100,
        measurement_repetitions: int = 3,
        train: bool = True,
        reserve_layers: int = 0,
        reserve_models: int = 0,
        use_compiled: bool = True,
    ) -> "SystemBuilder":
        """Configure the estimator stage (training still deferred).

        ``use_compiled=False`` opts the estimator out of the compiled
        inference plan and back onto the autograd interpreter (the CLI
        exposes this as ``--no-compiled-inference``).
        """
        self._require_unbuilt("embedding", "estimator", "trained")
        self._num_training_samples = num_training_samples
        self._epochs = epochs
        self._measurement_repetitions = measurement_repetitions
        self._train = train
        self._reserve_layers = reserve_layers
        self._reserve_models = reserve_models
        self._use_compiled = use_compiled
        return self

    def from_checkpoint(self, path: str) -> "SystemBuilder":
        """Use saved estimator weights instead of training."""
        self._require_unbuilt("trained")
        self._checkpoint = path
        self._train = False
        return self

    def with_scheduler(
        self, name: str, factory: Optional[SchedulerFactory] = None
    ) -> "SystemBuilder":
        """Select ``name`` for the built system (registering ``factory`` if given).

        The first call switches the builder from "every registered
        scheduler" to an explicit selection; later calls append.  The
        factory, when provided, lands in the global registry so other
        builders see it too.
        """
        if factory is not None:
            register_scheduler(name, factory)
        else:
            get_scheduler(name)  # fail fast on unknown names
        canonical = name.strip().lower()
        if self._selected is None:
            self._selected = []
        if canonical not in self._selected:
            self._selected.append(canonical)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def built(self, stage: str) -> bool:
        """Has ``stage`` materialized?  (``"trained"`` = design-time
        training/checkpoint load has happened.)"""
        return stage in self._artifacts

    @property
    def built_stages(self) -> Tuple[str, ...]:
        """Materialized stages, in build order."""
        return tuple(self._artifacts)

    def _memo(self, stage: str, make) -> Any:
        if stage not in self._artifacts:
            self._artifacts[stage] = make()
        return self._artifacts[stage]

    # ------------------------------------------------------------------
    # Lazy artifacts
    # ------------------------------------------------------------------
    @property
    def platform(self) -> Platform:
        return self._memo("platform", lambda: self._platform or hikey970())

    @property
    def simulator(self) -> BoardSimulator:
        return self._memo(
            "simulator",
            lambda: BoardSimulator(self.platform, config=self._sim_config),
        )

    @property
    def profiler(self) -> KernelProfiler:
        return self._memo("profiler", lambda: KernelProfiler(self.platform))

    @property
    def model_names(self) -> Tuple[str, ...]:
        return self._model_names

    @property
    def models(self) -> Tuple:
        return self._memo("models", lambda: tuple(build_all_models(self._model_names)))

    @property
    def latency_table(self) -> LatencyTable:
        return self._memo(
            "latency_table",
            lambda: self.profiler.profile(list(self.models), seed=self.seed),
        )

    @property
    def embedding(self) -> EmbeddingSpace:
        return self._memo(
            "embedding",
            lambda: EmbeddingSpace(
                self.latency_table,
                self._model_names,
                reserve_layers=self._reserve_layers,
                reserve_models=self._reserve_models,
            ),
        )

    @property
    def generator(self) -> WorkloadGenerator:
        return self._memo(
            "generator",
            lambda: WorkloadGenerator(
                model_names=self._model_names,
                num_devices=self.platform.num_devices,
                seed=self.seed + 2,
            ),
        )

    @property
    def mcts_config(self) -> MCTSConfig:
        return self._memo(
            "mcts_config", lambda: self._mcts_config or MCTSConfig(seed=self.seed + 5)
        )

    @property
    def ga_config(self) -> GAConfig:
        return self._memo(
            "ga_config", lambda: self._ga_config or GAConfig(seed=self.seed + 7)
        )

    @property
    def estimator(self) -> ThroughputEstimator:
        """The ready-to-schedule estimator (trains / loads on first touch)."""
        estimator = self._memo(
            "estimator",
            lambda: ThroughputEstimator(
                self.embedding,
                rng=np.random.default_rng(self.seed + 1),
                use_compiled=self._use_compiled,
            ),
        )
        self._ensure_trained(estimator)
        return estimator

    @property
    def training_history(self) -> Optional[TrainingHistory]:
        """Training history (forces the training stage when enabled)."""
        self.estimator
        return self._artifacts.get("trained")

    @property
    def mosaic_regression(self) -> LayerLatencyRegression:
        return self._memo(
            "mosaic_regression",
            lambda: LayerLatencyRegression(self.platform.num_devices).fit(
                list(self.models), self.profiler, seed=self.seed + 6
            ),
        )

    @property
    def ga_cost_model(self) -> StaticCostModel:
        return self._memo(
            "ga_cost_model",
            lambda: StaticCostModel(
                self.platform,
                self.latency_table,
                offered_rate=self.simulator.config.offered_rate,
            ),
        )

    def _ensure_trained(self, estimator: ThroughputEstimator) -> None:
        """Run deferred design-time training (or checkpoint load) once."""
        if "trained" in self._artifacts:
            return
        history: Optional[TrainingHistory] = None
        if self._checkpoint is not None:
            estimator.load(self._checkpoint)
        elif self._train:
            dataset = EstimatorDatasetBuilder(
                self.simulator, self.generator, estimator
            ).build(
                num_samples=self._num_training_samples,
                measurement_seed=self.seed + 3,
                repetitions=self._measurement_repetitions,
            )
            train_size = max(1, int(round(0.8 * self._num_training_samples)))
            history = EstimatorTrainer(estimator).train(
                dataset,
                epochs=self._epochs,
                train_size=train_size,
                seed=self.seed + 4,
            )
            estimator.reset_query_count()
        self._artifacts["trained"] = history

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def scheduler_names(self) -> Tuple[str, ...]:
        """Names the built system will carry, in comparison order."""
        if self._selected is not None:
            return tuple(self._selected)
        return available_schedulers()

    def build_scheduler(self, name: str) -> Scheduler:
        """Materialize one scheduler by registry name (cached)."""
        canonical = name.strip().lower()
        if canonical not in self._schedulers:
            self._schedulers[canonical] = get_scheduler(canonical)(self)
        return self._schedulers[canonical]

    def build(self) -> OmniBoostSystem:
        """Force every stage and return the assembled system.

        Equivalent to the original ``build_system()`` call with this
        builder's configuration — same artifacts, same seeds.
        """
        scheduler_map = {
            name: self.build_scheduler(name) for name in self.scheduler_names()
        }

        def _named(name: str):
            return scheduler_map.get(name)

        return OmniBoostSystem(
            platform=self.platform,
            simulator=self.simulator,
            profiler=self.profiler,
            latency_table=self.latency_table,
            embedding=self.embedding,
            estimator=self.estimator,
            training_history=self.training_history,
            generator=self.generator,
            omniboost=_named("omniboost"),
            baseline=_named("baseline"),
            mosaic=_named("mosaic"),
            ga=_named("ga"),
            scheduler_map=scheduler_map,
        )
