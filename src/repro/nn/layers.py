"""Module system and standard layers for the estimator network.

A tiny nn.Module analogue: modules hold parameters (Tensors with
``requires_grad=True``) and submodules, recurse for ``parameters()``
and ``state_dict()``, and distinguish train/eval mode (BatchNorm needs
it).  Initialization takes an explicit ``numpy.random.Generator`` so
every training run in this code base is reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "Module",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "GELU",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
]


class Module:
    """Base class: parameter registration, mode switching, state dicts."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True
        self._version = 0

    # ------------------------------------------------------------------
    # Registration (attribute assignment keeps user code natural)
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-learned state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        """Direct submodules, in registration order."""
        return iter(self._modules.values())

    def parameters(self) -> List[Tensor]:
        """All trainable tensors, depth-first."""
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total trainable parameter count (the paper reports 20,044)."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone weight-state counter for compiled-plan invalidation.

        Bumped by every *training-mode forward* (the moment running
        statistics drift and gradients for the next optimizer step are
        produced) and by :meth:`load_state_dict` — the two paths
        through which this code base updates weights.  Consumers
        caching derived state (e.g. the estimator's
        :class:`~repro.nn.inference.InferencePlan`) compare it to
        decide whether their snapshot is stale.  Mode switches alone do
        not bump, so eval-mode inference interleaved with training
        re-snapshots at most once per training forward.  Two gaps need
        an explicit :meth:`mark_updated`: code mutating ``Tensor.data``
        in place without ever running a training forward, and a
        snapshot taken *between* ``backward()`` and the optimizer step
        (the step mutates weights without bumping; the next training
        forward heals it).
        """
        return self._version

    def mark_updated(self) -> None:
        """Record an out-of-band weight update (invalidates cached plans)."""
        self._version += 1

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flat name -> array mapping of parameters and buffers."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buffer in self._buffers.items():
            state[f"{prefix}{name}"] = np.asarray(buffer).copy()
        for child_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{child_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Load arrays saved by :meth:`state_dict` (strict on names/shapes)."""
        self._version += 1
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: saved {value.shape}, "
                    f"expected {param.data.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing buffer {key!r} in state dict")
            self._buffers[name][...] = state[key]
        for child_name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{child_name}.")

    def save(self, path: str) -> None:
        """Save the state dict as an ``.npz`` archive."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load an ``.npz`` archive produced by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({key: archive[key] for key in archive.files})

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        if self.training:
            # A training forward is the staleness moment for cached
            # weight snapshots: running stats update now, and the next
            # optimizer step follows from this pass's gradients.
            self._version += 1
        return self.forward(x)


def _kaiming_normal(
    rng: np.random.Generator, shape: Sequence[int], fan_in: int
) -> np.ndarray:
    """He-normal initialization, appropriate before (GE)LU-family units."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


class Conv2d(Module):
    """2-D convolution layer (NCHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            _kaiming_normal(
                rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in
            ),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class Linear(Module):
    """Affine layer ``y = x W^T + b`` for 2-D inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _kaiming_normal(rng, (out_features, in_features), in_features),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            return F.linear(x, self.weight, self.bias)
        # Eval mode prices each sample independently so batched
        # inference is bitwise invariant to batch composition — the
        # guarantee cross-request evaluation pooling is built on
        # (train-mode numerics are untouched).
        return F.linear_rowwise(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Batch normalization over NCHW channels with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(np.ones(num_features), requires_grad=True)
        self.bias = Tensor(np.zeros(num_features), requires_grad=True)
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            out, batch_mean, batch_var = F.batch_norm2d(
                x, self.weight, self.bias, eps=self.eps
            )
            self.running_mean[...] = (
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            )
            self.running_var[...] = (
                (1 - self.momentum) * self.running_var + self.momentum * batch_var
            )
            return out
        mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
        var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalized = (x - mean) / (var + self.eps) ** 0.5
        scale = self.weight.reshape(1, self.num_features, 1, 1)
        shift = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * scale + shift


class GELU(Module):
    """Gaussian Error Linear Unit activation (paper Section IV-B)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling to 1x1 spatial size."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class Sequential(Module):
    """Run submodules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._sequence: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._sequence.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._sequence:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._sequence)

    def __len__(self) -> int:
        return len(self._sequence)
